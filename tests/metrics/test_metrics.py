"""Tests for distribution summaries and comparison tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics import ComparisonTable, DistributionSummary, summarize


class TestSummarize:
    def test_known_distribution(self):
        values = list(range(101))
        summary = summarize(values)
        assert summary.mean == pytest.approx(50.0)
        assert summary.p5 == pytest.approx(5.0)
        assert summary.p95 == pytest.approx(95.0)
        assert summary.n == 101
        assert summary.spread == pytest.approx(90.0)

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == summary.p5 == summary.p95 == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])


class TestComparisonTable:
    def test_rows_and_ratio(self):
        table = ComparisonTable(title="demo", rows=[])
        table.add("metric_a", measured=2.0, paper=1.0)
        table.add("metric_b", measured=5.0)
        rows = table.as_dict()
        assert rows["metric_a"] == (1.0, 2.0)
        assert rows["metric_b"] == (None, 5.0)
        assert table.rows[0].ratio == pytest.approx(2.0)
        assert table.rows[1].ratio is None

    def test_zero_paper_ratio_none(self):
        table = ComparisonTable(title="demo", rows=[])
        table.add("metric", measured=1.0, paper=0.0)
        assert table.rows[0].ratio is None

    def test_format_contains_rows(self):
        table = ComparisonTable(title="demo", rows=[])
        table.add("alpha", measured=1.5, paper=1.4, note="units")
        rendered = table.format()
        assert "demo" in rendered
        assert "alpha" in rendered
        assert "units" in rendered

    def test_format_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ComparisonTable(title="empty", rows=[]).format()
