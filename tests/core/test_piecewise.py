"""Unit and property tests for piecewise-linear functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PiecewiseLinear
from repro.core.piecewise import batch_locate
from repro.errors import ContractError


@pytest.fixture()
def pl() -> PiecewiseLinear:
    return PiecewiseLinear(knots=(0.0, 1.0, 3.0, 6.0), values=(0.0, 2.0, 3.0, 3.0))


class TestConstruction:
    def test_requires_two_knots(self):
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(0.0,), values=(1.0,))

    def test_requires_matching_lengths(self):
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(0.0, 1.0), values=(0.0, 1.0, 2.0))

    def test_requires_strictly_increasing_knots(self):
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(0.0, 0.0), values=(0.0, 1.0))
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(1.0, 0.5), values=(0.0, 1.0))

    def test_requires_finite_entries(self):
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(0.0, float("inf")), values=(0.0, 1.0))
        with pytest.raises(ContractError):
            PiecewiseLinear(knots=(0.0, 1.0), values=(0.0, float("nan")))

    def test_from_slopes_matches_direct(self):
        direct = PiecewiseLinear(knots=(0.0, 1.0, 2.0), values=(1.0, 3.0, 3.5))
        built = PiecewiseLinear.from_slopes(
            knots=(0.0, 1.0, 2.0), start_value=1.0, slopes=(2.0, 0.5)
        )
        assert built.values == pytest.approx(direct.values)

    def test_from_slopes_rejects_wrong_count(self):
        with pytest.raises(ContractError):
            PiecewiseLinear.from_slopes(knots=(0.0, 1.0), start_value=0.0, slopes=(1.0, 2.0))


class TestEvaluation:
    def test_interpolates_inside(self, pl):
        assert pl(0.5) == pytest.approx(1.0)
        assert pl(2.0) == pytest.approx(2.5)

    def test_hits_knots_exactly(self, pl):
        for knot, value in zip(pl.knots, pl.values):
            assert pl(knot) == pytest.approx(value)

    def test_flat_extrapolation(self, pl):
        assert pl(-5.0) == pytest.approx(pl.values[0])
        assert pl(100.0) == pytest.approx(pl.values[-1])

    def test_slopes(self, pl):
        assert pl.slopes() == pytest.approx((2.0, 0.5, 0.0))

    def test_increments(self, pl):
        assert pl.increments() == pytest.approx((2.0, 1.0, 0.0))

    def test_slope_rejects_out_of_range(self, pl):
        with pytest.raises(ContractError):
            pl.slope(0)
        with pytest.raises(ContractError):
            pl.slope(4)

    def test_piece_containing(self, pl):
        assert pl.piece_containing(-1.0) == 1
        assert pl.piece_containing(0.5) == 1
        assert pl.piece_containing(1.0) == 2
        assert pl.piece_containing(5.9) == 3
        assert pl.piece_containing(6.0) == 3
        assert pl.piece_containing(60.0) == 3


class TestBatchEvaluation:
    """The vectorized fast path must match the scalar __call__ exactly."""

    def test_batch_matches_scalar_exactly(self, pl):
        points = np.array([-5.0, 0.0, 0.5, 1.0, 2.0, 3.0, 5.9, 6.0, 100.0])
        batched = pl.batch(points)
        for point, value in zip(points, batched):
            assert value == pl(float(point))

    def test_batch_flat_extrapolation_is_exact(self, pl):
        # No interpolation residue at or beyond the outer knots.
        batched = pl.batch(np.array([-1e9, pl.knots[0], pl.knots[-1], 1e9]))
        assert batched[0] == pl.values[0]
        assert batched[1] == pl.values[0]
        assert batched[2] == pl.values[-1]
        assert batched[3] == pl.values[-1]

    def test_batch_locate_indices_and_fractions(self, pl):
        knots = np.asarray(pl.knots)
        indices, fractions = batch_locate(knots, np.array([0.5, 1.0, 4.5]))
        assert indices.tolist() == [0, 1, 2]
        assert fractions == pytest.approx([0.5, 0.0, 0.5])

    def test_batch_locate_clamps_out_of_range(self, pl):
        knots = np.asarray(pl.knots)
        indices, fractions = batch_locate(knots, np.array([-10.0, 99.0]))
        assert indices.tolist() == [0, len(knots) - 2]
        assert fractions.tolist() == [0.0, 1.0]

    def test_batch_locate_rejects_scalar_knots(self):
        with pytest.raises(ContractError):
            batch_locate(np.array([1.0]), np.array([0.0]))


class TestTransforms:
    def test_shifted(self, pl):
        shifted = pl.shifted(2.5)
        assert shifted(2.0) == pytest.approx(pl(2.0) + 2.5)

    def test_scaled(self, pl):
        scaled = pl.scaled(3.0)
        assert scaled(2.0) == pytest.approx(pl(2.0) * 3.0)

    def test_scaled_rejects_negative(self, pl):
        with pytest.raises(ContractError):
            pl.scaled(-1.0)

    def test_monotone_detection(self, pl):
        assert pl.is_monotone_nondecreasing()
        wiggly = PiecewiseLinear(knots=(0.0, 1.0, 2.0), values=(0.0, 1.0, 0.5))
        assert not wiggly.is_monotone_nondecreasing()
        with pytest.raises(ContractError):
            wiggly.require_monotone()

    def test_pieces_iteration(self, pl):
        pieces = list(pl.pieces())
        assert len(pieces) == pl.n_pieces
        assert pieces[0] == (0.0, 1.0, 0.0, 2.0)


#: Sorted unique knot lists with matching value lists.
_points = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        st.lists(
            st.floats(min_value=-100.0, max_value=100.0), min_size=n, max_size=n
        ),
    )
)


@given(points=_points, query=st.floats(min_value=-150.0, max_value=150.0))
@settings(max_examples=150, deadline=None)
def test_property_evaluation_within_value_range(points, query):
    """Linear interpolation never leaves the convex hull of the values."""
    knots, values = points
    function = PiecewiseLinear(knots=tuple(sorted(knots)), values=tuple(values))
    result = function(query)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(points=_points)
@settings(max_examples=150, deadline=None)
def test_property_knot_evaluation_roundtrip(points):
    """Evaluating at every knot returns its stored value."""
    knots, values = points
    function = PiecewiseLinear(knots=tuple(sorted(knots)), values=tuple(values))
    for knot, value in zip(function.knots, function.values):
        assert function(knot) == pytest.approx(value, abs=1e-9)
