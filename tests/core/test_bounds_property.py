"""Property-style tests for the Lemma 4.2 / 4.3 bounds.

The bound formulas in ``core/bounds.py`` are certificates: Lemma 4.2
must *dominate* the actual pay of every constructed candidate contract,
and Lemma 4.3 must *under*-cut the pay at the designed effort for every
contract that actually steers the worker there.  Closed-form unit tests
can only probe a few points of that claim, so here we sweep seeded
random effort functions, grids and worker parameters and assert the
inequalities hold on every draw (``derandomize=True`` keeps the sweep
reproducible in CI).
"""

from __future__ import annotations

from typing import Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QuadraticEffort,
    build_candidate,
    compensation_lower_bound,
    compensation_upper_bound,
    requester_utility_lower_bound,
    requester_utility_upper_bound,
    solve_best_response,
)
from repro.core.bounds import compensation_upper_bound_paper
from repro.types import DiscretizationGrid, WorkerParameters, WorkerType

_SLACK = 1e-7  # per-piece float rounding accumulates across the window sum


@st.composite
def design_problems(
    draw: st.DrawFn,
) -> Tuple[QuadraticEffort, DiscretizationGrid, WorkerParameters, int]:
    """A random (psi, grid, params, target piece) design instance.

    The grid stays strictly inside the increasing range of ``psi``
    (the construction's precondition), everything else is free.
    """
    r2 = draw(st.floats(min_value=-2.0, max_value=-0.05))
    r1 = draw(st.floats(min_value=0.5, max_value=5.0))
    r0 = draw(st.floats(min_value=0.0, max_value=1.0))
    psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
    n_intervals = draw(st.integers(min_value=2, max_value=8))
    coverage = draw(st.floats(min_value=0.3, max_value=0.95))
    grid = DiscretizationGrid.for_max_effort(
        coverage * psi.max_increasing_effort, n_intervals
    )
    beta = draw(st.floats(min_value=0.1, max_value=3.0))
    omega = draw(st.floats(min_value=0.0, max_value=0.5))
    worker_type = (
        WorkerType.HONEST if omega == 0.0 else WorkerType.NONCOLLUSIVE_MALICIOUS
    )
    params = WorkerParameters(beta=beta, omega=omega, worker_type=worker_type)
    target_piece = draw(st.integers(min_value=1, max_value=n_intervals))
    return psi, grid, params, target_piece


class TestLemma42Ceiling:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_ceiling_dominates_constructed_pay(self, problem) -> None:
        """Lemma 4.2: the certified window sum bounds the actual max pay."""
        psi, grid, params, k = problem
        candidate = build_candidate(psi, grid, params, target_piece=k)
        ceiling = compensation_upper_bound(
            psi, grid, params.beta, k, omega=params.omega
        )
        max_pay = max(candidate.contract.compensations)
        assert max_pay <= ceiling * (1.0 + _SLACK) + _SLACK

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_certified_ceiling_vs_paper_formula(self, problem) -> None:
        """At omega=0 and fine grids the two Lemma 4.2 forms agree closely.

        The printed closed form drops O(delta^2) terms per piece; the
        certified sum must never fall below the actual pay even where the
        printed formula does (DESIGN.md §2), so we only assert the two
        stay within the documented per-piece discretization error.
        """
        psi, grid, params, k = problem
        certified = compensation_upper_bound(psi, grid, params.beta, k)
        printed = compensation_upper_bound_paper(psi, grid, params.beta, k)
        per_piece_error = (
            2.0 * params.beta * abs(psi.r2) * grid.delta**2 / psi.derivative(
                grid.max_effort
            )
        )
        assert abs(certified - printed) <= k * per_piece_error * 4.0 + _SLACK

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_ceiling_monotone_in_target_piece(self, problem) -> None:
        """Steering further right can only cost more (window sum grows)."""
        psi, grid, params, _ = problem
        ceilings = [
            compensation_upper_bound(psi, grid, params.beta, k, omega=params.omega)
            for k in range(1, grid.n_intervals + 1)
        ]
        for earlier, later in zip(ceilings, ceilings[1:]):
            assert later >= earlier - _SLACK


class TestLemma43Floor:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_floor_undercuts_pay_at_designed_effort(self, problem) -> None:
        """Lemma 4.3: any contract steering into piece k pays >= the floor."""
        psi, grid, params, k = problem
        candidate = build_candidate(psi, grid, params, target_piece=k)
        if candidate.clamped_pieces:
            # A clamped slope means the Case III window was infeasible;
            # the lemma's participation argument does not cover it.
            return
        floor = compensation_lower_bound(
            grid, params.beta, k, effort_function=psi, omega=params.omega
        )
        pay = candidate.contract.pay_for_effort(candidate.designed_effort)
        assert pay >= floor - _SLACK * max(1.0, abs(floor))

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_floor_below_ceiling(self, problem) -> None:
        """The two bounds are mutually consistent on every instance."""
        psi, grid, params, k = problem
        floor = compensation_lower_bound(
            grid, params.beta, k, effort_function=psi, omega=params.omega
        )
        ceiling = compensation_upper_bound(
            psi, grid, params.beta, k, omega=params.omega
        )
        assert floor <= ceiling + _SLACK

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(problem=design_problems())
    def test_omega_correction_never_exceeds_honest_floor(self, problem) -> None:
        """Influence reward only ever lowers the participation floor."""
        psi, grid, params, k = problem
        honest = compensation_lower_bound(grid, params.beta, k)
        corrected = compensation_lower_bound(
            grid, params.beta, k, effort_function=psi, omega=params.omega
        )
        assert 0.0 <= corrected <= honest + _SLACK


class TestTheorem41Sandwich:
    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(
        problem=design_problems(),
        mu=st.floats(min_value=0.2, max_value=2.0),
    )
    def test_lower_bound_below_upper_bound(self, problem, mu: float) -> None:
        psi, grid, params, k = problem
        upper = requester_utility_upper_bound(
            psi, grid, params.beta, mu, omega=params.omega
        )
        lower = requester_utility_lower_bound(psi, grid, params.beta, mu, k)
        assert lower <= upper + _SLACK * max(1.0, abs(upper))

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(
        problem=design_problems(),
        mu=st.floats(min_value=0.2, max_value=2.0),
    )
    def test_best_response_respects_the_sandwich(self, problem, mu: float) -> None:
        """The utility the designed contract actually achieves stays <= UB."""
        psi, grid, params, k = problem
        candidate = build_candidate(psi, grid, params, target_piece=k)
        response = solve_best_response(candidate.contract, params)
        achieved = response.feedback - mu * response.compensation
        upper = requester_utility_upper_bound(
            psi, grid, params.beta, mu, omega=params.omega
        )
        assert achieved <= upper + _SLACK * max(1.0, abs(upper))
