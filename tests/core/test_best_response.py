"""Tests for the exact best-response solver.

The load-bearing property: the solver's optimum always matches (or
beats, within tolerance) a dense brute-force scan of the worker utility
— for random contracts, random worker parameters, and a true effort
function that may differ from the contract's fitted one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Contract, QuadraticEffort, solve_best_response
from repro.core.best_response import worker_utility
from repro.errors import DesignError
from repro.types import DiscretizationGrid, WorkerParameters


def _contract_from_values(psi, grid, values) -> Contract:
    return Contract(grid=grid, effort_function=psi, compensations=tuple(values))


class TestWorkerUtility:
    def test_utility_formula(self, psi, grid, malicious_params):
        values = np.linspace(0.0, 5.0, grid.n_intervals + 1)
        contract = _contract_from_values(psi, grid, values)
        effort = 3.3
        expected = (
            contract.pay_for_effort(effort)
            + malicious_params.omega * psi(effort)
            - malicious_params.beta * effort
        )
        assert worker_utility(contract, malicious_params, effort) == pytest.approx(
            expected
        )

    def test_rejects_negative_effort(self, psi, grid, honest_params):
        contract = Contract.flat(grid, psi, pay=1.0)
        with pytest.raises(DesignError):
            worker_utility(contract, honest_params, -0.1)

    def test_true_psi_override(self, psi, grid, honest_params):
        contract = _contract_from_values(
            psi, grid, np.linspace(0.0, 5.0, grid.n_intervals + 1)
        )
        true_psi = QuadraticEffort(r2=-0.4, r1=8.0, r0=0.5)
        effort = 2.0
        expected = (
            contract.pay_for_feedback(float(true_psi(effort)))
            - honest_params.beta * effort
        )
        assert worker_utility(
            contract, honest_params, effort, effort_function=true_psi
        ) == pytest.approx(expected)


class TestTieBreaking:
    def test_exact_tie_picks_lowest_effort(self, psi, grid, honest_params):
        """A flat contract ties every candidate at zero net slope when
        beta == 0-cost is impossible, so make pay growth exactly cancel
        the effort cost on the first piece: the solver must keep 0."""
        contract = Contract.flat(grid, psi, pay=1.0)
        response = solve_best_response(contract, honest_params)
        assert response.effort == 0.0
        assert response.utility == pytest.approx(1.0)

    def test_near_tie_within_numerics_tolerance_prefers_lower(self, psi, grid):
        """Utilities within repro.numerics tolerance are ties: the solver
        keeps the earlier (lower-effort) candidate rather than chasing a
        sub-tolerance improvement (Eq. 30 tie-breaking discipline)."""
        from repro.numerics import close

        params = WorkerParameters.malicious(beta=1.0, omega=0.3)
        values = np.linspace(0.0, 5.0, grid.n_intervals + 1)
        contract = _contract_from_values(psi, grid, values)
        response = solve_best_response(contract, params)
        # Any strictly-lower effort the solver passed over must be worse
        # by more than tolerance OR the solver's pick is the lowest such.
        for fraction in (0.25, 0.5, 0.75):
            effort = response.effort * fraction
            utility = worker_utility(contract, params, effort)
            assert utility < response.utility or close(utility, response.utility)


class TestFlatContract:
    def test_honest_worker_stays_home(self, psi, grid, honest_params):
        contract = Contract.flat(grid, psi, pay=2.0)
        response = solve_best_response(contract, honest_params)
        assert response.effort == pytest.approx(0.0)
        assert response.compensation == pytest.approx(2.0)
        assert response.utility == pytest.approx(2.0)

    def test_malicious_worker_works_for_influence(self, psi, grid):
        params = WorkerParameters.malicious(beta=1.0, omega=1.0)
        contract = Contract.flat(grid, psi, pay=0.0)
        response = solve_best_response(contract, params)
        # Stationary point of omega*psi(y) - beta*y.
        expected = psi.derivative_inverse(params.beta / params.omega)
        assert response.effort == pytest.approx(expected)
        assert response.compensation == pytest.approx(0.0)


class TestSteppedContract:
    def test_strong_slope_pulls_effort_up(self, psi, grid, honest_params):
        lazy = Contract.flat(grid, psi, pay=0.0)
        generous = _contract_from_values(
            psi, grid, np.linspace(0.0, 40.0, grid.n_intervals + 1)
        )
        lazy_response = solve_best_response(lazy, honest_params)
        generous_response = solve_best_response(generous, honest_params)
        assert generous_response.effort > lazy_response.effort

    def test_reported_feedback_matches_psi(self, psi, grid, honest_params):
        contract = _contract_from_values(
            psi, grid, np.linspace(0.0, 10.0, grid.n_intervals + 1)
        )
        response = solve_best_response(contract, honest_params)
        assert response.feedback == pytest.approx(float(psi(response.effort)))

    def test_reported_compensation_matches_contract(self, psi, grid, honest_params):
        contract = _contract_from_values(
            psi, grid, np.linspace(0.0, 10.0, grid.n_intervals + 1)
        )
        response = solve_best_response(contract, honest_params)
        assert response.compensation == pytest.approx(
            contract.pay_for_feedback(response.feedback)
        )

    def test_piece_reports_grid_interval(self, psi, grid, honest_params):
        contract = _contract_from_values(
            psi, grid, np.linspace(0.0, 10.0, grid.n_intervals + 1)
        )
        response = solve_best_response(contract, honest_params)
        left, right = grid.interval(response.piece)
        assert left <= response.effort <= right


@st.composite
def _contract_setup(draw):
    r2 = draw(st.floats(min_value=-2.0, max_value=-0.05))
    r1 = draw(st.floats(min_value=1.0, max_value=30.0))
    r0 = draw(st.floats(min_value=0.0, max_value=5.0))
    psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
    m = draw(st.integers(min_value=2, max_value=8))
    grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, m)
    increments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=m + 1, max_size=m + 1
        )
    )
    values = np.cumsum(increments)
    values -= values[0]
    beta = draw(st.floats(min_value=0.2, max_value=3.0))
    omega = draw(st.floats(min_value=0.0, max_value=1.5))
    params = (
        WorkerParameters.honest(beta=beta)
        if omega == 0.0
        else WorkerParameters.malicious(beta=beta, omega=omega)
    )
    return psi, grid, tuple(float(v) for v in values), params


@given(setup=_contract_setup())
@settings(max_examples=150, deadline=None)
def test_property_solver_beats_dense_scan(setup):
    """The analytic optimum is never worse than a dense effort scan."""
    psi, grid, values, params = setup
    contract = Contract(grid=grid, effort_function=psi, compensations=values)
    response = solve_best_response(contract, params)
    scan_max = psi.max_increasing_effort * 1.05
    efforts = np.linspace(0.0, scan_max, 2001)
    utilities = [worker_utility(contract, params, float(y)) for y in efforts]
    assert response.utility >= max(utilities) - 1e-6


@given(setup=_contract_setup())
@settings(max_examples=100, deadline=None)
def test_property_solver_with_true_psi_override(setup):
    """Same optimality property when the worker's true psi differs."""
    psi, grid, values, params = setup
    contract = Contract(grid=grid, effort_function=psi, compensations=values)
    true_psi = QuadraticEffort(r2=psi.r2 * 1.2, r1=psi.r1 * 0.9, r0=psi.r0)
    response = solve_best_response(contract, params, effort_function=true_psi)
    efforts = np.linspace(0.0, true_psi.max_increasing_effort * 1.05, 2001)
    utilities = [
        worker_utility(contract, params, float(y), effort_function=true_psi)
        for y in efforts
    ]
    assert response.utility >= max(utilities) - 1e-6
