"""Unit tests for posted contracts (feedback/effort duality)."""

from __future__ import annotations

import pytest

from repro.core import Contract, QuadraticEffort
from repro.errors import ContractError
from repro.types import DiscretizationGrid


@pytest.fixture()
def contract(psi, grid) -> Contract:
    compensations = tuple(0.5 * index for index in range(grid.n_intervals + 1))
    return Contract(grid=grid, effort_function=psi, compensations=compensations)


class TestValidation:
    def test_rejects_wrong_length(self, psi, grid):
        with pytest.raises(ContractError):
            Contract(grid=grid, effort_function=psi, compensations=(0.0, 1.0))

    def test_rejects_negative_pay(self, psi, grid):
        pay = [0.0] * (grid.n_intervals + 1)
        pay[3] = -0.1
        with pytest.raises(ContractError):
            Contract(grid=grid, effort_function=psi, compensations=tuple(pay))

    def test_rejects_non_monotone(self, psi, grid):
        pay = list(range(grid.n_intervals + 1))
        pay[4] = 1.0
        with pytest.raises(ContractError):
            Contract(grid=grid, effort_function=psi, compensations=tuple(map(float, pay)))

    def test_rejects_grid_beyond_increasing_range(self, psi):
        wide = DiscretizationGrid.for_max_effort(psi.max_increasing_effort * 1.1, 5)
        with pytest.raises(Exception):
            Contract(
                grid=wide,
                effort_function=psi,
                compensations=tuple(float(i) for i in range(6)),
            )


class TestEvaluation:
    def test_pay_at_breakpoints(self, contract):
        breakpoints = contract.feedback_breakpoints
        for breakpoint, pay in zip(breakpoints, contract.compensations):
            assert contract.pay_for_feedback(breakpoint) == pytest.approx(pay)

    def test_pay_for_effort_is_composition(self, contract):
        psi = contract.effort_function
        for effort in (0.3, 1.7, 4.4, 8.0):
            assert contract.pay_for_effort(effort) == pytest.approx(
                contract.pay_for_feedback(float(psi(effort)))
            )

    def test_pay_for_effort_concave_within_piece(self, contract):
        """The composition dominates the effort-knot chord inside pieces."""
        knots = contract.effort_knot_values()
        grid = contract.grid
        for piece in range(1, grid.n_intervals + 1):
            left, right = grid.interval(piece)
            midpoint = 0.5 * (left + right)
            assert contract.pay_for_effort(midpoint) >= knots(midpoint) - 1e-9

    def test_flat_beyond_last_breakpoint(self, contract):
        top_feedback = contract.feedback_breakpoints[-1]
        assert contract.pay_for_feedback(top_feedback * 2) == pytest.approx(
            contract.max_compensation
        )

    def test_rejects_negative_inputs(self, contract):
        with pytest.raises(ContractError):
            contract.pay_for_feedback(-1.0)
        with pytest.raises(ContractError):
            contract.pay_for_effort(-1.0)

    def test_contract_slopes_match_increments(self, contract):
        slopes = contract.contract_slopes()
        increments = contract.contract_increments()
        breakpoints = contract.feedback_breakpoints
        for index, (slope, increment) in enumerate(zip(slopes, increments)):
            width = breakpoints[index + 1] - breakpoints[index]
            assert slope == pytest.approx(increment / width)


class TestFactories:
    def test_flat_contract(self, psi, grid):
        flat = Contract.flat(grid, psi, pay=2.5)
        assert flat.pay_for_feedback(0.0) == pytest.approx(2.5)
        assert flat.pay_for_effort(grid.max_effort) == pytest.approx(2.5)
        assert all(slope == pytest.approx(0.0) for slope in flat.contract_slopes())

    def test_flat_rejects_negative(self, psi, grid):
        with pytest.raises(ContractError):
            Contract.flat(grid, psi, pay=-1.0)

    def test_from_feedback_slopes_roundtrip(self, psi, grid):
        slopes = tuple(0.1 * (i + 1) for i in range(grid.n_intervals))
        contract = Contract.from_feedback_slopes(grid, psi, slopes, base_pay=1.0)
        assert contract.compensations[0] == pytest.approx(1.0)
        assert contract.contract_slopes() == pytest.approx(slopes)

    def test_from_feedback_slopes_rejects_wrong_count(self, psi, grid):
        with pytest.raises(ContractError):
            Contract.from_feedback_slopes(grid, psi, (0.1,), base_pay=0.0)
