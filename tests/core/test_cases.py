"""Tests for the Lemma 4.1 case classification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PieceCase, QuadraticEffort, case_thresholds, classify_piece
from repro.types import DiscretizationGrid
from repro.core.cases import CaseThresholds
from repro.errors import DesignError


class TestThresholds:
    def test_formulas_match_lemma(self, psi, grid):
        beta, omega = 1.0, 0.2
        piece = 3
        thresholds = case_thresholds(psi, grid, piece, beta, omega)
        left, right = grid.interval(piece)
        assert thresholds.lower == pytest.approx(beta / psi.derivative(left) - omega)
        assert thresholds.upper == pytest.approx(beta / psi.derivative(right) - omega)

    def test_lower_below_upper(self, psi, grid):
        for piece in range(1, grid.n_intervals + 1):
            thresholds = case_thresholds(psi, grid, piece, beta=1.0, omega=0.0)
            assert thresholds.lower < thresholds.upper

    def test_windows_are_adjacent(self, psi, grid):
        """Piece l's upper threshold is piece l+1's lower threshold."""
        for piece in range(1, grid.n_intervals):
            this = case_thresholds(psi, grid, piece, beta=1.0, omega=0.1)
            following = case_thresholds(psi, grid, piece + 1, beta=1.0, omega=0.1)
            assert this.upper == pytest.approx(following.lower)

    def test_rejects_bad_piece(self, psi, grid):
        with pytest.raises(DesignError):
            case_thresholds(psi, grid, 0, beta=1.0, omega=0.0)
        with pytest.raises(DesignError):
            case_thresholds(psi, grid, grid.n_intervals + 1, beta=1.0, omega=0.0)

    def test_rejects_bad_params(self, psi, grid):
        with pytest.raises(DesignError):
            case_thresholds(psi, grid, 1, beta=0.0, omega=0.0)
        with pytest.raises(DesignError):
            case_thresholds(psi, grid, 1, beta=1.0, omega=-0.1)

    def test_threshold_record_rejects_inverted(self):
        with pytest.raises(DesignError):
            CaseThresholds(lower=1.0, upper=0.5)


class TestClassification:
    def test_low_slope_is_case_i(self, psi, grid):
        thresholds = case_thresholds(psi, grid, 2, beta=1.0, omega=0.0)
        assert (
            classify_piece(psi, grid, 2, thresholds.lower - 0.01, 1.0, 0.0)
            is PieceCase.LEFT_ENDPOINT
        )

    def test_high_slope_is_case_ii(self, psi, grid):
        thresholds = case_thresholds(psi, grid, 2, beta=1.0, omega=0.0)
        assert (
            classify_piece(psi, grid, 2, thresholds.upper + 0.01, 1.0, 0.0)
            is PieceCase.RIGHT_ENDPOINT
        )

    def test_mid_slope_is_case_iii(self, psi, grid):
        thresholds = case_thresholds(psi, grid, 2, beta=1.0, omega=0.0)
        midpoint = 0.5 * (thresholds.lower + thresholds.upper)
        assert (
            classify_piece(psi, grid, 2, midpoint, 1.0, 0.0) is PieceCase.INTERIOR
        )

    def test_boundaries_are_endpoint_cases(self, psi, grid):
        thresholds = case_thresholds(psi, grid, 2, beta=1.0, omega=0.0)
        assert thresholds.classify(thresholds.lower) is PieceCase.LEFT_ENDPOINT
        assert thresholds.classify(thresholds.upper) is PieceCase.RIGHT_ENDPOINT


@given(
    r2=st.floats(min_value=-2.0, max_value=-0.05),
    r1=st.floats(min_value=1.0, max_value=30.0),
    beta=st.floats(min_value=0.1, max_value=5.0),
    omega=st.floats(min_value=0.0, max_value=2.0),
    piece=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=150, deadline=None)
def test_property_case_iii_slope_yields_interior_stationary(
    r2, r1, beta, omega, piece
):
    """A slope inside the window places the Eq. (31) stationary point
    strictly inside the piece's effort interval, for any valid psi."""
    psi = QuadraticEffort(r2=r2, r1=r1, r0=0.5)
    grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 10)
    thresholds = case_thresholds(psi, grid, piece, beta, omega)
    slope = 0.5 * (thresholds.lower + thresholds.upper)
    gain = slope + omega
    stationary = psi.derivative_inverse(beta / gain)
    left, right = grid.interval(piece)
    assert left < stationary < right
