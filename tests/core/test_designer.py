"""Tests for the contract designer (candidate sweep + Eq. 43 selection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import continuum_optimal_utility, grid_search_contract
from repro.core import ContractDesigner, DesignerConfig, QuadraticEffort
from repro.errors import DesignError
from repro.types import DiscretizationGrid, WorkerParameters


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(DesignError):
            DesignerConfig(n_intervals=0)
        with pytest.raises(DesignError):
            DesignerConfig(coverage=1.0)
        with pytest.raises(DesignError):
            DesignerConfig(delta=-1.0)
        with pytest.raises(DesignError):
            DesignerConfig(base_pay=-0.5)
        with pytest.raises(DesignError):
            DesignerConfig(max_effort=0.0)

    def test_auto_grid_covers_fraction_of_vertex(self, psi):
        config = DesignerConfig(n_intervals=10, coverage=0.8)
        grid = config.grid_for(psi)
        assert grid.max_effort == pytest.approx(0.8 * psi.max_increasing_effort)

    def test_explicit_delta(self, psi):
        config = DesignerConfig(n_intervals=5, delta=0.5)
        grid = config.grid_for(psi)
        assert grid.delta == pytest.approx(0.5)

    def test_max_effort_caps_span(self, psi):
        config = DesignerConfig(n_intervals=10, max_effort=3.0)
        grid = config.grid_for(psi)
        assert grid.max_effort == pytest.approx(3.0)

    def test_per_call_cap_tightens(self, psi):
        config = DesignerConfig(n_intervals=10, max_effort=5.0)
        grid = config.grid_for(psi, max_effort=2.0)
        assert grid.max_effort == pytest.approx(2.0)

    def test_delta_beyond_increasing_range_rejected(self, psi):
        config = DesignerConfig(n_intervals=100, delta=1.0)
        with pytest.raises(Exception):
            config.grid_for(psi)


class TestDesign:
    def test_honest_design_is_certified(self, psi, honest_params):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=12))
        result = designer.design(psi, honest_params, feedback_weight=1.0)
        assert result.hired
        assert result.bounds is not None
        assert result.bounds.certified
        assert result.bounds.is_consistent
        assert all(evaluation.on_target for evaluation in result.evaluations)

    def test_selection_maximizes_requester_utility(self, psi, honest_params):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=12))
        result = designer.design(psi, honest_params, feedback_weight=1.0)
        best = max(e.requester_utility for e in result.evaluations)
        assert result.requester_utility == pytest.approx(best)

    def test_nonpositive_weight_yields_null_contract(self, psi, honest_params):
        designer = ContractDesigner(mu=1.0)
        result = designer.design(psi, honest_params, feedback_weight=0.0)
        assert not result.hired
        assert result.k_opt is None
        assert result.compensation == pytest.approx(0.0)
        assert result.effort == pytest.approx(0.0)

    def test_negative_weight_null_contract_can_cost_utility(self, psi):
        """An unhired malicious worker still pollutes (works for
        influence), and with a negative weight the requester's utility
        from it is negative — the paper's 'weight close to 0' story."""
        params = WorkerParameters.malicious(beta=1.0, omega=0.8)
        designer = ContractDesigner(mu=1.0)
        result = designer.design(psi, params, feedback_weight=-0.5)
        assert not result.hired
        assert result.effort > 0.0
        assert result.requester_utility < 0.0

    def test_higher_weight_never_lowers_utility(self, psi, honest_params):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=10))
        utilities = [
            designer.design(psi, honest_params, feedback_weight=w).requester_utility
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(utilities, utilities[1:]))

    def test_higher_mu_never_raises_pay(self, psi, honest_params):
        pays = []
        for mu in (0.5, 1.0, 2.0):
            designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=10))
            pays.append(
                designer.design(psi, honest_params, feedback_weight=1.0).compensation
            )
        assert all(b <= a + 1e-9 for a, b in zip(pays, pays[1:]))

    def test_candidate_cache_reuse(self, psi, honest_params):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=8))
        designer.design(psi, honest_params, feedback_weight=1.0)
        assert len(designer._candidate_cache) == 1
        designer.design(psi, honest_params, feedback_weight=2.0)
        assert len(designer._candidate_cache) == 1
        other = QuadraticEffort(r2=-0.4, r1=9.0, r0=1.0)
        designer.design(other, honest_params, feedback_weight=1.0)
        assert len(designer._candidate_cache) == 2

    def test_candidate_cache_is_bounded(self, psi, honest_params):
        """A long-lived designer facing many betas cannot grow unboundedly."""
        designer = ContractDesigner(
            mu=1.0,
            config=DesignerConfig(n_intervals=4),
            candidate_cache_size=3,
        )
        for beta in (0.5, 1.0, 1.5, 2.0, 2.5):
            designer.design(
                psi,
                WorkerParameters.honest(beta=beta),
                feedback_weight=1.0,
            )
        assert len(designer._candidate_cache) == 3
        assert designer._candidate_cache.stats.evictions == 2

    def test_rejects_bad_mu(self):
        with pytest.raises(DesignError):
            ContractDesigner(mu=0.0)


class TestNearOptimality:
    def test_designer_approaches_continuum_optimum(self, psi, honest_params):
        """Achieved utility converges to the continuous-relaxation
        optimum as the grid refines (the Fig. 6 convergence claim,
        checked against an independent oracle)."""
        mu, w = 1.0, 1.0
        cap = 0.95 * psi.max_increasing_effort
        optimal, _ = continuum_optimal_utility(
            psi, honest_params, mu, w, max_effort=cap
        )
        gaps = []
        for m in (5, 20, 80):
            designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=m))
            result = designer.design(psi, honest_params, feedback_weight=w)
            gaps.append(optimal - result.requester_utility)
        assert gaps[0] > gaps[-1]
        assert gaps[-1] <= 0.05 * max(abs(optimal), 1.0)
        # The designer can never beat the relaxation.
        assert all(gap >= -1e-6 for gap in gaps)

    def test_designer_matches_exhaustive_search_on_tiny_instance(
        self, psi, honest_params
    ):
        """On a tiny instance the designer is close to the best contract
        an exhaustive lattice search can find."""
        grid = DiscretizationGrid.for_max_effort(
            0.9 * psi.max_increasing_effort, 4
        )
        oracle = grid_search_contract(
            psi, grid, honest_params, mu=1.0, feedback_weight=1.0, pay_levels=12
        )
        designer = ContractDesigner(
            mu=1.0,
            config=DesignerConfig(n_intervals=4, delta=grid.delta),
        )
        result = designer.design(psi, honest_params, feedback_weight=1.0)
        assert result.requester_utility >= oracle.requester_utility - 0.3 * abs(
            oracle.requester_utility
        )
