"""Tests for the one-shot Stackelberg round."""

from __future__ import annotations

import pytest

from repro.core import Subproblem, play_round
from repro.errors import DesignError
from repro.types import WorkerParameters


def _problems(psi):
    return [
        Subproblem(
            subject_id="honest",
            effort_function=psi,
            params=WorkerParameters.honest(beta=1.0),
            feedback_weight=1.2,
        ),
        Subproblem(
            subject_id="sneaky",
            effort_function=psi,
            params=WorkerParameters.malicious(beta=1.0, omega=0.3),
            feedback_weight=0.4,
        ),
        Subproblem(
            subject_id="polluter",
            effort_function=psi,
            params=WorkerParameters.malicious(beta=1.0, omega=0.6),
            feedback_weight=-0.2,
        ),
    ]


class TestPlayRound:
    def test_totals_aggregate_subjects(self, psi):
        outcome, solutions = play_round(_problems(psi), mu=1.0)
        assert set(outcome.subjects) == {"honest", "sneaky", "polluter"}
        benefit = sum(
            solutions[s].result.feedback_weight * o.feedback
            for s, o in outcome.subjects.items()
        )
        pay = sum(o.compensation for o in outcome.subjects.values())
        assert outcome.total_benefit == pytest.approx(benefit)
        assert outcome.total_compensation == pytest.approx(pay)
        assert outcome.total_utility == pytest.approx(benefit - pay)

    def test_negative_weight_subject_not_hired(self, psi):
        outcome, _ = play_round(_problems(psi), mu=1.0)
        assert not outcome.subjects["polluter"].hired
        assert outcome.subjects["polluter"].compensation == pytest.approx(0.0)
        assert outcome.n_hired == 2

    def test_outcomes_match_design_results(self, psi):
        outcome, solutions = play_round(_problems(psi), mu=1.0)
        for subject_id, subject_outcome in outcome.subjects.items():
            result = solutions[subject_id].result
            assert subject_outcome.effort == pytest.approx(result.response.effort)
            assert subject_outcome.requester_utility == pytest.approx(
                result.requester_utility
            )

    def test_rejects_bad_mu(self, psi):
        with pytest.raises(DesignError):
            play_round(_problems(psi), mu=0.0)

    def test_parallel_matches_serial(self, psi):
        serial, _ = play_round(_problems(psi), mu=1.0, max_workers=1)
        parallel, _ = play_round(_problems(psi), mu=1.0, max_workers=3)
        assert serial.total_utility == pytest.approx(parallel.total_utility)
        for subject_id in serial.subjects:
            assert serial.subjects[subject_id].effort == pytest.approx(
                parallel.subjects[subject_id].effort
            )
