"""Tests for requester utility accounting (Eqs. 4, 5, 7)."""

from __future__ import annotations

import pytest

from repro.core.utility import (
    RequesterObjective,
    per_worker_utility,
    round_benefit,
    round_utility,
)
from repro.errors import ModelError
from repro.types import FeedbackWeightParameters, RequesterParameters


class TestFunctions:
    def test_per_worker_utility(self):
        assert per_worker_utility(2.0, 3.0, 1.0, mu=2.0) == pytest.approx(4.0)

    def test_per_worker_rejects_bad_mu(self):
        with pytest.raises(ModelError):
            per_worker_utility(1.0, 1.0, 1.0, mu=0.0)

    def test_round_benefit(self):
        assert round_benefit([1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)

    def test_round_benefit_length_mismatch(self):
        with pytest.raises(ModelError):
            round_benefit([1.0], [1.0, 2.0])

    def test_round_utility(self):
        assert round_utility([1.0], [5.0], [2.0], mu=1.5) == pytest.approx(2.0)


class TestObjective:
    def test_defaults(self):
        objective = RequesterObjective()
        assert objective.mu == pytest.approx(1.0)

    def test_feedback_weight_eq5(self):
        params = RequesterParameters(
            mu=1.0,
            weight_params=FeedbackWeightParameters(
                rho=2.0, kappa=0.1, gamma=0.05, min_deviation=0.1
            ),
        )
        objective = RequesterObjective(params)
        weight = objective.feedback_weight(
            review_score=4.0,
            expert_score=3.0,
            malice_probability=0.5,
            n_partners=4,
        )
        assert weight == pytest.approx(2.0 / 1.0 - 0.1 * 0.5 - 0.05 * 4)

    def test_round_value(self):
        objective = RequesterObjective(RequesterParameters(mu=2.0))
        value = objective.round_value([(1.0, 3.0, 0.5), (2.0, 1.0, 0.25)])
        assert value == pytest.approx(3.0 + 2.0 - 2.0 * 0.75)

    def test_value_of(self):
        objective = RequesterObjective(RequesterParameters(mu=3.0))
        assert objective.value_of(1.0, 6.0, 1.0) == pytest.approx(3.0)
