"""Unit and property tests for quadratic effort functions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuadraticEffort
from repro.errors import EffortFunctionError

#: Strategy over valid concave effort functions with sane magnitudes.
valid_psi = st.builds(
    QuadraticEffort,
    r2=st.floats(min_value=-5.0, max_value=-0.01),
    r1=st.floats(min_value=0.1, max_value=50.0),
    r0=st.floats(min_value=0.0, max_value=10.0),
)


class TestValidation:
    def test_rejects_convex(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=0.5, r1=1.0, r0=0.0)

    def test_rejects_zero_curvature(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=0.0, r1=1.0, r0=0.0)

    def test_rejects_nonpositive_initial_slope(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=-1.0, r1=0.0, r0=0.0)
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=-1.0, r1=-2.0, r0=0.0)

    def test_rejects_negative_baseline(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=-1.0, r1=1.0, r0=-0.5)

    def test_rejects_nonfinite(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=-1.0, r1=math.inf, r0=0.0)
        with pytest.raises(EffortFunctionError):
            QuadraticEffort(r2=math.nan, r1=1.0, r0=0.0)


class TestEvaluation:
    def test_value_at_zero_is_baseline(self, psi):
        assert psi(0.0) == pytest.approx(psi.r0)

    def test_matches_polynomial_formula(self, psi):
        y = 3.7
        assert psi(y) == pytest.approx(psi.r2 * y * y + psi.r1 * y + psi.r0)

    def test_vectorized_evaluation(self, psi):
        ys = np.array([0.0, 1.0, 2.0])
        values = psi(ys)
        assert values.shape == (3,)
        assert values[1] == pytest.approx(psi(1.0))

    def test_derivative(self, psi):
        y = 2.0
        assert psi.derivative(y) == pytest.approx(2 * psi.r2 * y + psi.r1)

    def test_second_derivative_constant_negative(self, psi):
        assert psi.second_derivative() == pytest.approx(2 * psi.r2)
        assert psi.second_derivative() < 0


class TestDerivedQuantities:
    def test_max_increasing_effort_is_vertex(self, psi):
        vertex = psi.max_increasing_effort
        assert psi.derivative(vertex) == pytest.approx(0.0, abs=1e-12)

    def test_max_feedback_at_vertex(self, psi):
        assert psi.max_feedback == pytest.approx(psi(psi.max_increasing_effort))

    def test_is_increasing_on(self, psi):
        assert psi.is_increasing_on(0.5 * psi.max_increasing_effort)
        assert not psi.is_increasing_on(psi.max_increasing_effort)

    def test_require_increasing_raises_beyond_vertex(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.require_increasing_on(psi.max_increasing_effort * 1.01)

    def test_derivative_inverse_roundtrip(self, psi):
        y = 4.2
        slope = psi.derivative(y)
        assert psi.derivative_inverse(slope) == pytest.approx(y)

    def test_inverse_roundtrip_on_increasing_branch(self, psi):
        y = 3.0
        assert psi.inverse(psi(y)) == pytest.approx(y)

    def test_inverse_rejects_out_of_range(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.inverse(psi.r0 - 1.0)
        with pytest.raises(EffortFunctionError):
            psi.inverse(psi.max_feedback + 1.0)

    def test_feedback_breakpoints_strictly_increasing(self, psi):
        edges = [0.0, 1.0, 2.0, 3.0]
        breakpoints = psi.feedback_breakpoints(edges)
        assert all(a < b for a, b in zip(breakpoints, breakpoints[1:]))

    def test_feedback_breakpoints_reject_decreasing_edges(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.feedback_breakpoints([1.0, 0.5])

    def test_feedback_breakpoints_reject_empty(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.feedback_breakpoints([])


class TestCommunityScaling:
    def test_scaled_function_matches_definition(self, psi):
        meta = psi.community_scaled(4)
        total = 6.0
        assert meta(total) == pytest.approx(4 * psi(total / 4))

    def test_scaled_derivative_matches_per_member(self, psi):
        meta = psi.community_scaled(5)
        assert meta.derivative(5 * 1.3) == pytest.approx(psi.derivative(1.3))

    def test_singleton_community_is_identity(self, psi):
        meta = psi.community_scaled(1)
        assert meta.coefficients() == pytest.approx(psi.coefficients())

    def test_rejects_nonpositive_members(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.community_scaled(0)


class TestFactoryAndScaling:
    def test_from_coefficients_roundtrip(self, psi):
        rebuilt = QuadraticEffort.from_coefficients(psi.coefficients())
        assert rebuilt == psi

    def test_from_coefficients_rejects_wrong_length(self):
        with pytest.raises(EffortFunctionError):
            QuadraticEffort.from_coefficients([1.0, 2.0])

    def test_scaled_feedback(self, psi):
        doubled = psi.scaled(2.0)
        assert doubled(3.0) == pytest.approx(2.0 * psi(3.0))

    def test_scaled_rejects_nonpositive(self, psi):
        with pytest.raises(EffortFunctionError):
            psi.scaled(0.0)


@given(psi=valid_psi, fraction=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=100, deadline=None)
def test_property_strictly_increasing_before_vertex(psi, fraction):
    """psi is strictly increasing anywhere strictly inside the vertex."""
    y = fraction * psi.max_increasing_effort
    assert psi.derivative(y) > 0.0


@given(psi=valid_psi, y=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_property_concavity_midpoint(psi, y):
    """psi(midpoint) >= average of endpoints (concavity)."""
    left, right = y, y + 1.0
    midpoint = 0.5 * (left + right)
    assert psi(midpoint) >= 0.5 * (psi(left) + psi(right)) - 1e-9


@given(psi=valid_psi, fraction=st.floats(min_value=0.0, max_value=0.999))
@settings(max_examples=100, deadline=None)
def test_property_inverse_consistency(psi, fraction):
    """inverse(psi(y)) == y on the increasing branch."""
    y = fraction * psi.max_increasing_effort
    recovered = psi.inverse(float(psi(y)))
    assert recovered == pytest.approx(y, abs=1e-6 * max(1.0, y))
