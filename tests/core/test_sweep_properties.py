"""Property tests for the shared-prefix structure and sweep equivalence.

Two claims carry the whole fast path:

1. **Prefix sharing** — the Eq. (39)-(40) recursion is target-
   independent, so ``build_candidate(k)`` and ``build_candidate(k + 1)``
   agree on their first ``k`` slopes.  If this ever broke, batching the
   recursion would be unsound.
2. **Fast/legacy equivalence** — the vectorized engine reaches the same
   ``k_opt``, utilities and compensations as the per-candidate
   reference on *random* design instances, including the clamped-piece
   (large ``omega``) branch.

Closed-form unit tests probe a few points; here we sweep seeded random
``(psi, beta, omega, K)`` draws (``derandomize=True`` keeps CI
reproducible).
"""

from __future__ import annotations

from typing import Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QuadraticEffort,
    build_candidate,
    legacy_sweep,
    prefix_tables,
    vectorized_sweep,
)
from repro.core.sweep import require_sweeps_agree
from repro.numerics import close
from repro.types import DiscretizationGrid, WorkerParameters, WorkerType


@st.composite
def sweep_problems(
    draw: st.DrawFn,
) -> Tuple[QuadraticEffort, DiscretizationGrid, WorkerParameters]:
    """A random (psi, grid, params) design instance.

    The grid stays strictly inside the increasing range of ``psi`` (the
    construction's precondition); ``omega`` spans zero through the
    clamping regime where the Eq. (39) recursion goes negative.
    """
    r2 = draw(st.floats(min_value=-2.0, max_value=-0.05))
    r1 = draw(st.floats(min_value=0.5, max_value=5.0))
    r0 = draw(st.floats(min_value=0.0, max_value=1.0))
    psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
    n_intervals = draw(st.integers(min_value=1, max_value=12))
    coverage = draw(st.floats(min_value=0.3, max_value=0.95))
    grid = DiscretizationGrid.for_max_effort(
        coverage * psi.max_increasing_effort, n_intervals
    )
    beta = draw(st.floats(min_value=0.1, max_value=3.0))
    # Either a tame omega or one large enough (relative to beta) to
    # force slope clamping — the branch most likely to desynchronize.
    omega = draw(
        st.one_of(
            st.floats(min_value=0.0, max_value=0.5),
            st.floats(min_value=5.0, max_value=60.0),
        )
    )
    worker_type = (
        WorkerType.HONEST if omega == 0.0 else WorkerType.NONCOLLUSIVE_MALICIOUS
    )
    params = WorkerParameters(beta=beta, omega=omega, worker_type=worker_type)
    return psi, grid, params


@given(problem=sweep_problems())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_property_prefix_sharing(problem):
    """build_candidate(k).slopes[:k] == build_candidate(k+1).slopes[:k]."""
    psi, grid, params = problem
    candidates = [
        build_candidate(
            effort_function=psi, grid=grid, params=params, target_piece=k
        )
        for k in range(1, grid.n_intervals + 1)
    ]
    for smaller, larger in zip(candidates, candidates[1:]):
        k = smaller.target_piece
        assert larger.slopes[:k] == smaller.slopes[:k]
        assert larger.epsilons[:k] == smaller.epsilons[:k]
    tables = prefix_tables(psi, grid, params)
    for candidate in candidates:
        k = candidate.target_piece
        assert candidate.slopes[:k] == tuple(tables.slopes[:k])


@given(problem=sweep_problems())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_property_fast_legacy_agreement(problem):
    """Fast and legacy sweeps agree on k_opt, utilities, compensations."""
    psi, grid, params = problem
    fast, stats = vectorized_sweep(psi, grid, params)
    reference, _ = legacy_sweep(psi, grid, params)
    require_sweeps_agree(fast, reference)
    assert stats.fastpath

    # The selection argmax must coincide: the best target piece under
    # the fast path is the best target piece under the reference.
    def argmax(pairs):
        best = max(range(len(pairs)), key=lambda i: pairs[i][1].utility)
        return pairs[best][0].target_piece

    fast_best = argmax(fast)
    ref_best = argmax(reference)
    if fast_best != ref_best:
        # Only acceptable when the two pieces tie to tolerance.
        assert close(
            fast[fast_best - 1][1].utility, reference[ref_best - 1][1].utility
        )


@given(problem=sweep_problems(), base_pay=st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_property_fast_legacy_agreement_with_base_pay(problem, base_pay):
    """Equivalence holds with a nonzero compensation floor (x_0 > 0)."""
    psi, grid, params = problem
    fast, _ = vectorized_sweep(psi, grid, params, base_pay=base_pay)
    reference, _ = legacy_sweep(psi, grid, params, base_pay=base_pay)
    require_sweeps_agree(fast, reference)
