"""Tests for the BiP decomposition and batch subproblem solver."""

from __future__ import annotations

import pytest

from repro.core import (
    DesignerConfig,
    QuadraticEffort,
    Subproblem,
    decomposition_report,
    solve_subproblems,
)
from repro.errors import DesignError
from repro.types import WorkerParameters, WorkerType


def _subproblems(psi, n=5):
    problems = []
    for index in range(n):
        problems.append(
            Subproblem(
                subject_id=f"worker{index}",
                effort_function=psi,
                params=WorkerParameters.honest(beta=1.0),
                feedback_weight=1.0 + 0.2 * index,
            )
        )
    problems.append(
        Subproblem(
            subject_id="ring",
            effort_function=psi.community_scaled(3),
            params=WorkerParameters.malicious(beta=1.0, omega=0.3, collusive=True),
            feedback_weight=0.6,
            member_ids=("a", "b", "c"),
        )
    )
    return problems


class TestSubproblem:
    def test_defaults_member_to_self(self, psi):
        subproblem = Subproblem(
            subject_id="w1",
            effort_function=psi,
            params=WorkerParameters.honest(),
        )
        assert subproblem.member_ids == ("w1",)
        assert not subproblem.is_community
        assert subproblem.size == 1

    def test_community_requires_collusive_type(self, psi):
        with pytest.raises(DesignError):
            Subproblem(
                subject_id="ring",
                effort_function=psi,
                params=WorkerParameters.honest(),
                member_ids=("a", "b"),
            )

    def test_rejects_empty_id(self, psi):
        with pytest.raises(DesignError):
            Subproblem(
                subject_id="",
                effort_function=psi,
                params=WorkerParameters.honest(),
            )


class TestSolve:
    def test_solves_every_subject(self, psi):
        problems = _subproblems(psi)
        solutions = solve_subproblems(problems, mu=1.0)
        assert set(solutions) == {p.subject_id for p in problems}

    def test_duplicate_ids_rejected(self, psi):
        problem = _subproblems(psi)[0]
        with pytest.raises(DesignError):
            solve_subproblems([problem, problem], mu=1.0)

    def test_parallel_matches_serial(self, psi):
        problems = _subproblems(psi, n=8)
        serial = solve_subproblems(problems, mu=1.0, max_workers=1)
        parallel = solve_subproblems(problems, mu=1.0, max_workers=4)
        for subject_id in serial:
            assert serial[subject_id].result.requester_utility == pytest.approx(
                parallel[subject_id].result.requester_utility
            )
            assert serial[subject_id].result.k_opt == parallel[subject_id].result.k_opt

    def test_per_member_compensation_split(self, psi):
        problems = _subproblems(psi)
        solutions = solve_subproblems(problems, mu=1.0)
        ring = solutions["ring"]
        assert ring.per_member_compensation == pytest.approx(
            ring.result.compensation / 3
        )

    def test_config_and_cap_respected(self, psi):
        problem = Subproblem(
            subject_id="w",
            effort_function=psi,
            params=WorkerParameters.honest(),
            max_effort=2.0,
        )
        solutions = solve_subproblems(
            [problem], mu=1.0, config=DesignerConfig(n_intervals=6)
        )
        contract = solutions["w"].result.contract
        assert contract.grid.max_effort == pytest.approx(2.0)
        assert contract.grid.n_intervals == 6

    def test_rejects_bad_max_workers(self, psi):
        with pytest.raises(DesignError):
            solve_subproblems(_subproblems(psi), mu=1.0, max_workers=0)


class TestReport:
    def test_report_totals_consistent(self, psi):
        problems = _subproblems(psi)
        solutions = solve_subproblems(problems, mu=1.0)
        report = decomposition_report(solutions, mu=1.0)
        assert report["n_subjects"] == len(problems)
        assert report["total_utility"] == pytest.approx(
            report["total_benefit"] - report["total_compensation"]
        )
        assert 0 <= report["n_hired"] <= report["n_subjects"]

    def test_report_rejects_bad_mu(self, psi):
        solutions = solve_subproblems(_subproblems(psi), mu=1.0)
        with pytest.raises(DesignError):
            decomposition_report(solutions, mu=-1.0)

    def test_decomposition_independence(self, psi):
        """Solving a subset yields identical per-subject results — the
        Section IV-B separability claim."""
        problems = _subproblems(psi)
        full = solve_subproblems(problems, mu=1.0)
        subset = solve_subproblems(problems[:2], mu=1.0)
        for subject_id in subset:
            assert subset[subject_id].result.requester_utility == pytest.approx(
                full[subject_id].result.requester_utility
            )
