"""Tests for budget-feasible contract selection (MCKP)."""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.core import (
    QuadraticEffort,
    Subproblem,
    budget_options,
    budgeted_selection,
    solve_subproblems,
)
from repro.core.budget import _prune_dominated, BudgetOption
from repro.errors import DesignError
from repro.types import WorkerParameters


@pytest.fixture(scope="module")
def solutions(request):
    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    problems = [
        Subproblem(
            subject_id=f"w{i}",
            effort_function=psi,
            params=WorkerParameters.honest(),
            feedback_weight=0.4 + 0.3 * i,
        )
        for i in range(5)
    ]
    return solve_subproblems(problems, mu=1.0)


class TestOptions:
    def test_null_option_always_present(self, solutions):
        per_subject = budget_options(solutions)
        for options in per_subject.values():
            assert any(
                option.target_piece is None and option.cost == 0.0
                for option in options
            )

    def test_frontier_is_monotone(self, solutions):
        per_subject = budget_options(solutions)
        for options in per_subject.values():
            costs = [option.cost for option in options]
            utilities = [option.utility for option in options]
            assert costs == sorted(costs)
            assert utilities == sorted(utilities)

    def test_prune_dominated(self):
        options = [
            BudgetOption("w", None, 0.0, 0.0),
            BudgetOption("w", 1, 5.0, 2.0),
            BudgetOption("w", 2, 4.0, 3.0),  # dominated by piece 1
            BudgetOption("w", 3, 6.0, 3.5),
        ]
        frontier = _prune_dominated(options)
        pieces = [option.target_piece for option in frontier]
        assert pieces == [None, 1, 3]

    def test_negative_cost_rejected(self):
        with pytest.raises(DesignError):
            BudgetOption("w", 1, 1.0, -0.1)


class TestSelection:
    def test_zero_budget_hires_nobody(self, solutions):
        design = budgeted_selection(solutions, budget=0.0)
        assert design.n_hired == 0
        assert design.total_cost == 0.0
        assert design.total_utility == 0.0

    def test_budget_respected(self, solutions):
        for budget in (1.0, 5.0, 12.0, 40.0):
            design = budgeted_selection(solutions, budget=budget)
            assert design.total_cost <= budget + 1e-9
            realized = sum(option.cost for option in design.chosen.values())
            assert design.total_cost == pytest.approx(realized)

    def test_utility_monotone_in_budget(self, solutions):
        utilities = [
            budgeted_selection(solutions, budget=b).total_utility
            for b in (0.0, 2.0, 8.0, 20.0, 50.0, 500.0)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(utilities, utilities[1:]))

    def test_large_budget_matches_unconstrained(self, solutions):
        design = budgeted_selection(solutions, budget=10_000.0, resolution=2_000)
        unconstrained = sum(
            max(s.result.requester_utility, 0.0) for s in solutions.values()
        )
        assert design.total_utility == pytest.approx(unconstrained, rel=1e-6)

    def test_every_subject_gets_exactly_one_option(self, solutions):
        design = budgeted_selection(solutions, budget=10.0)
        assert set(design.chosen) == set(solutions)

    def test_matches_bruteforce_on_tiny_instance(self, solutions):
        """Exact check: DP equals exhaustive enumeration (2 subjects)."""
        pair = dict(list(solutions.items())[:2])
        per_subject = budget_options(pair)
        budget = 6.0
        best = -np.inf
        subjects = sorted(per_subject)
        for combo in product(*(per_subject[s] for s in subjects)):
            cost = sum(option.cost for option in combo)
            if cost <= budget:
                best = max(best, sum(option.utility for option in combo))
        design = budgeted_selection(pair, budget=budget, resolution=4_000)
        assert design.total_utility == pytest.approx(best, rel=1e-3)

    def test_validation(self, solutions):
        with pytest.raises(DesignError):
            budgeted_selection(solutions, budget=-1.0)
        with pytest.raises(DesignError):
            budgeted_selection(solutions, budget=1.0, resolution=0)

    def test_empty_solutions(self):
        design = budgeted_selection({}, budget=10.0)
        assert design.total_utility == 0.0
        assert design.chosen == {}
