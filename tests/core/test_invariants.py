"""Cross-cutting property tests: designer invariants under fuzzing.

These tie the core pieces together: for random effort functions, worker
parameters, requester preferences and weights, the full design pipeline
must uphold its structural guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ContractDesigner,
    DesignerConfig,
    QuadraticEffort,
    solve_best_response,
)
from repro.core.utility import per_worker_utility
from repro.types import WorkerParameters


@st.composite
def _design_instance(draw):
    psi = QuadraticEffort(
        r2=draw(st.floats(min_value=-2.0, max_value=-0.05)),
        r1=draw(st.floats(min_value=1.0, max_value=30.0)),
        r0=draw(st.floats(min_value=0.0, max_value=5.0)),
    )
    omega = draw(st.sampled_from([0.0, 0.1, 0.3, 0.7]))
    params = (
        WorkerParameters.honest(beta=draw(st.floats(min_value=0.3, max_value=3.0)))
        if omega == 0.0
        else WorkerParameters.malicious(
            beta=draw(st.floats(min_value=0.3, max_value=3.0)), omega=omega
        )
    )
    mu = draw(st.floats(min_value=0.3, max_value=3.0))
    weight = draw(st.floats(min_value=-1.0, max_value=5.0))
    m = draw(st.integers(min_value=2, max_value=12))
    return psi, params, mu, weight, m


@given(instance=_design_instance())
@settings(max_examples=150, deadline=None)
def test_property_design_structural_invariants(instance):
    """Every design result is internally consistent."""
    psi, params, mu, weight, m = instance
    designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=m))
    result = designer.design(psi, params, feedback_weight=weight)

    # 1. The posted contract is monotone and non-negative.
    pay = result.contract.compensations
    assert all(later >= earlier - 1e-9 for earlier, later in zip(pay, pay[1:]))
    assert all(value >= 0.0 for value in pay)

    # 2. The reported utility recomputes from the reported response.
    recomputed = per_worker_utility(
        weight, result.response.feedback, result.response.compensation, mu
    )
    assert result.requester_utility == pytest.approx(recomputed, abs=1e-9)

    # 3. Non-positive weights are never hired.
    if weight <= 0.0:
        assert not result.hired
        assert result.compensation == pytest.approx(0.0)

    # 4. Hired results carry a bounds certificate with LB <= UB.
    if result.hired:
        assert result.bounds is not None
        assert result.bounds.lower <= result.bounds.upper + 1e-9

    # 5. The reported response really is the worker's best response.
    replay = solve_best_response(result.contract, params)
    assert replay.utility == pytest.approx(result.response.utility, abs=1e-9)


@given(instance=_design_instance())
@settings(max_examples=100, deadline=None)
def test_property_selected_candidate_is_argmax(instance):
    """The designer's pick maximizes requester utility over candidates."""
    psi, params, mu, weight, m = instance
    designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=m))
    result = designer.design(psi, params, feedback_weight=weight)
    if not result.evaluations:
        return
    best = max(e.requester_utility for e in result.evaluations)
    if result.hired:
        assert result.requester_utility == pytest.approx(best)
    else:
        # Not hired means even the best candidate fell below min_utility.
        assert best < designer.config.min_utility


@given(
    instance=_design_instance(),
    scale=st.floats(min_value=0.5, max_value=2.0),
)
@settings(max_examples=80, deadline=None)
def test_property_feedback_scale_invariance_of_participation(instance, scale):
    """Scaling feedback units (and the weight inversely) preserves the
    worker's induced effort up to grid effects.

    The contract lives in feedback space; measuring feedback in
    different units while adjusting the weight inversely describes the
    same economy.
    """
    psi, params, mu, weight, m = instance
    if weight <= 0.0:
        return
    designer = ContractDesigner(mu=mu, config=DesignerConfig(n_intervals=m))
    base = designer.design(psi, params, feedback_weight=weight)

    # Honest workers only: for omega > 0 the influence term breaks the
    # scale symmetry (omega multiplies raw feedback units).
    if params.omega != 0.0:
        return
    scaled_psi = psi.scaled(scale)
    scaled_designer = ContractDesigner(
        mu=mu, config=DesignerConfig(n_intervals=m)
    )
    scaled = scaled_designer.design(
        scaled_psi, params, feedback_weight=weight / scale
    )
    assert scaled.effort == pytest.approx(base.effort, rel=1e-6, abs=1e-9)
    assert scaled.requester_utility == pytest.approx(
        base.requester_utility, rel=1e-6, abs=1e-6
    )
