"""Tests for misfit sensitivity analysis and robust design."""

from __future__ import annotations

import pytest

from repro.core import (
    QuadraticEffort,
    misfit_sweep,
    perturbed_effort_function,
    robust_design,
)
from repro.errors import DesignError
from repro.types import WorkerParameters


class TestPerturbation:
    def test_identity(self, psi):
        same = perturbed_effort_function(psi, 1.0, 1.0)
        assert same == psi

    def test_factors_applied(self, psi):
        perturbed = perturbed_effort_function(psi, 1.2, 0.9)
        assert perturbed.r2 == pytest.approx(psi.r2 * 1.2)
        assert perturbed.r1 == pytest.approx(psi.r1 * 0.9)
        assert perturbed.r0 == pytest.approx(psi.r0)

    def test_invalid_factors(self, psi):
        with pytest.raises(DesignError):
            perturbed_effort_function(psi, 0.0, 1.0)
        with pytest.raises(DesignError):
            perturbed_effort_function(psi, 1.0, -1.0)


class TestMisfitSweep:
    def test_no_misfit_point_matches_nominal(self, psi, honest_params):
        report = misfit_sweep(
            psi, honest_params, curvature_factors=(1.0,), slope_factors=(1.0,)
        )
        assert len(report.points) == 1
        assert report.points[0].requester_utility == pytest.approx(
            report.nominal_utility
        )
        assert report.max_degradation() == pytest.approx(0.0, abs=1e-9)

    def test_grid_size(self, psi, honest_params):
        report = misfit_sweep(
            psi,
            honest_params,
            curvature_factors=(0.9, 1.0, 1.1),
            slope_factors=(0.95, 1.05),
        )
        assert len(report.points) == 6

    def test_minimal_slope_design_is_knife_edge(self, psi, honest_params):
        """The headline finding: a slightly pessimistic true curve
        destroys participation under the nominal minimal-slope design."""
        report = misfit_sweep(
            psi,
            honest_params,
            curvature_factors=(1.0, 1.1),
            slope_factors=(0.9, 1.0),
        )
        assert report.max_degradation() > 0.5
        worst = report.worst_case()
        assert worst.effort < report.design.response.effort

    def test_optimistic_misfit_is_benign(self, psi, honest_params):
        """A true curve with stronger marginals only helps."""
        report = misfit_sweep(
            psi,
            honest_params,
            curvature_factors=(0.9, 1.0),
            slope_factors=(1.0, 1.1),
        )
        assert report.max_degradation() < 0.3

    def test_degradation_at(self, psi, honest_params):
        report = misfit_sweep(
            psi, honest_params, curvature_factors=(1.0,), slope_factors=(0.9, 1.0)
        )
        assert report.degradation_at(1.0, 1.0) == pytest.approx(0.0, abs=1e-9)
        assert report.degradation_at(1.0, 0.9) >= 0.0
        with pytest.raises(DesignError):
            report.degradation_at(7.0, 7.0)

    def test_empty_grid_rejected(self, psi, honest_params):
        with pytest.raises(DesignError):
            misfit_sweep(psi, honest_params, curvature_factors=())


class TestRobustDesign:
    def test_dominates_nominal_worst_case(self, psi, honest_params):
        report = misfit_sweep(psi, honest_params)
        _, robust_worst = robust_design(psi, honest_params)
        assert robust_worst > report.worst_case().requester_utility

    def test_pays_a_nominal_premium(self, psi, honest_params):
        """Robustness costs nominal utility when the fit was exact."""
        report = misfit_sweep(psi, honest_params)
        result, _ = robust_design(psi, honest_params)
        from repro.core import solve_best_response
        from repro.core.utility import per_worker_utility

        response = solve_best_response(
            result.contract, honest_params, effort_function=psi
        )
        nominal_under_truth = per_worker_utility(
            1.0, response.feedback, response.compensation, 1.0
        )
        assert nominal_under_truth <= report.nominal_utility + 1e-9

    def test_worst_case_certified_over_grid(self, psi, honest_params):
        """The returned worst case really is the min over the grid."""
        from repro.core import solve_best_response
        from repro.core.utility import per_worker_utility

        factors_c = (0.9, 1.0, 1.2)
        factors_s = (0.9, 1.0)
        result, worst = robust_design(
            psi,
            honest_params,
            curvature_factors=factors_c,
            slope_factors=factors_s,
        )
        replayed = []
        for cf in factors_c:
            for sf in factors_s:
                true_psi = perturbed_effort_function(psi, cf, sf)
                response = solve_best_response(
                    result.contract, honest_params, effort_function=true_psi
                )
                replayed.append(
                    per_worker_utility(
                        1.0, response.feedback, response.compensation, 1.0
                    )
                )
        assert worst == pytest.approx(min(replayed))

    def test_empty_grid_rejected(self, psi, honest_params):
        with pytest.raises(DesignError):
            robust_design(psi, honest_params, slope_factors=())
