"""Unit tests for the vectorized shared-prefix candidate sweep.

The fast path of ``repro.core.sweep`` must be *indistinguishable* from
the legacy per-candidate construction: same compensations, same Lemma
4.1 cases, same Eq. (30) best responses — the whole point of the
equivalence contract behind the Theorem 4.1 certificate.  These tests
pin that down on the reference effort function, including the
clamped-slope (large ``omega``) branch, the ``base_pay`` offset, the
``REPRO_FASTPATH`` routing, and the cross-check machinery itself.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.invariants import InvariantViolation
from repro.core import (
    QuadraticEffort,
    build_candidate,
    fastpath_enabled,
    legacy_sweep,
    prefix_tables,
    solve_best_response,
    sweep_candidates,
    sweep_candidates_with_stats,
    vectorized_sweep,
)
from repro.core.sweep import ENV_FASTPATH, SweepStats, require_sweeps_agree
from repro.errors import DesignError, EffortFunctionError
from repro.types import DiscretizationGrid, WorkerParameters

#: Parameter draws covering honest, malicious, and heavily-clamped regimes.
PARAM_CASES = [
    WorkerParameters.honest(beta=1.0),
    WorkerParameters.honest(beta=0.25),
    WorkerParameters.malicious(beta=1.0, omega=0.3),
    WorkerParameters.malicious(beta=2.5, omega=0.7),
    WorkerParameters.malicious(beta=0.3, omega=5.0),
    WorkerParameters.malicious(beta=4.0, omega=40.0, collusive=True),
]


def _grid(psi: QuadraticEffort, n_intervals: int) -> DiscretizationGrid:
    return DiscretizationGrid.for_max_effort(
        0.9 * psi.max_increasing_effort, n_intervals
    )


class TestFastpathToggle:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(ENV_FASTPATH, raising=False)
        assert fastpath_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "NO", " off "])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FASTPATH, value)
        assert not fastpath_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
    def test_other_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FASTPATH, value)
        assert fastpath_enabled()


class TestPrefixTables:
    def test_prefix_matches_every_candidate(self, psi):
        """Candidate k's slopes are exactly the first k recursion slopes."""
        grid = _grid(psi, 8)
        for params in PARAM_CASES:
            tables = prefix_tables(psi, grid, params)
            for k in range(1, grid.n_intervals + 1):
                candidate = build_candidate(
                    effort_function=psi,
                    grid=grid,
                    params=params,
                    target_piece=k,
                )
                assert candidate.slopes[:k] == tuple(tables.slopes[:k])
                assert candidate.slopes[k:] == (0.0,) * (grid.n_intervals - k)
                assert candidate.epsilons == tuple(tables.epsilons[:k])

    def test_values_are_cumulative_pay(self, psi, honest_params):
        grid = _grid(psi, 6)
        tables = prefix_tables(psi, grid, honest_params, base_pay=2.0)
        assert tables.values[0] == 2.0
        widths = tables.breakpoints[1:] - tables.breakpoints[:-1]
        expected = 2.0 + np.cumsum(tables.slopes * widths)
        assert tables.values[1:] == pytest.approx(expected)

    def test_large_omega_clamps_tail(self, psi):
        """Large omega drives the recursion negative: slopes clamp to 0."""
        params = WorkerParameters.malicious(beta=4.0, omega=40.0)
        tables = prefix_tables(psi, _grid(psi, 10), params)
        assert tables.clamped, "expected clamped pieces for omega >> beta"
        for piece in tables.clamped:
            assert tables.slopes[piece - 1] == 0.0

    def test_rejects_grid_beyond_increasing_range(self, psi):
        grid = DiscretizationGrid.for_max_effort(
            2.0 * psi.max_increasing_effort, 4
        )
        with pytest.raises(EffortFunctionError):
            prefix_tables(psi, grid, WorkerParameters.honest())


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("n_intervals", [1, 2, 5, 10, 20])
    @pytest.mark.parametrize(
        "params", PARAM_CASES, ids=lambda p: f"b{p.beta}w{p.omega}"
    )
    def test_matches_legacy_exactly(self, psi, n_intervals, params):
        """Fast and legacy sweeps agree bit-for-bit on the reference psi."""
        grid = _grid(psi, n_intervals)
        fast, stats = vectorized_sweep(psi, grid, params)
        reference, _ = legacy_sweep(psi, grid, params)
        require_sweeps_agree(fast, reference)
        assert stats.fastpath
        assert stats.n_candidates == n_intervals
        for (fc, fr), (rc, rr) in zip(fast, reference):
            assert fc.contract.compensations == rc.contract.compensations
            assert fc.slopes == rc.slopes
            assert fc.cases == rc.cases
            assert fc.clamped_pieces == rc.clamped_pieces
            assert fr.effort == rr.effort
            assert fr.utility == rr.utility
            assert fr.compensation == rr.compensation
            assert fr.piece == rr.piece

    def test_matches_legacy_with_base_pay(self, psi):
        grid = _grid(psi, 7)
        params = WorkerParameters.malicious(beta=1.5, omega=0.4)
        fast, _ = vectorized_sweep(psi, grid, params, base_pay=3.0)
        reference, _ = legacy_sweep(psi, grid, params, base_pay=3.0)
        require_sweeps_agree(fast, reference)
        assert fast[0][0].contract.compensations[0] == 3.0

    def test_matches_legacy_on_steep_psi(self, steep_psi):
        grid = _grid(steep_psi, 12)
        for params in PARAM_CASES:
            fast, _ = vectorized_sweep(steep_psi, grid, params)
            reference, _ = legacy_sweep(steep_psi, grid, params)
            require_sweeps_agree(fast, reference)

    def test_candidates_reuse_best_response_solver(self, psi, honest_params):
        """The vectorized responses equal fresh exact per-contract solves."""
        grid = _grid(psi, 9)
        fast, _ = vectorized_sweep(psi, grid, honest_params)
        for candidate, response in fast:
            exact = solve_best_response(candidate.contract, honest_params)
            assert response.effort == exact.effort
            assert response.utility == exact.utility


class TestRouting:
    def test_fastpath_stats(self, psi, honest_params, monkeypatch):
        monkeypatch.delenv(ENV_FASTPATH, raising=False)
        _, stats = sweep_candidates_with_stats(psi, _grid(psi, 5), honest_params)
        assert stats.fastpath
        assert stats.n_efforts > 0
        assert stats.n_vectorized == stats.n_candidates * stats.n_efforts

    def test_legacy_escape_hatch(self, psi, honest_params, monkeypatch):
        monkeypatch.setenv(ENV_FASTPATH, "0")
        pairs, stats = sweep_candidates_with_stats(
            psi, _grid(psi, 5), honest_params
        )
        assert not stats.fastpath
        assert stats.n_vectorized == 0
        assert len(pairs) == 5

    def test_both_routes_agree(self, psi, monkeypatch):
        grid = _grid(psi, 8)
        params = WorkerParameters.malicious(beta=1.0, omega=0.6)
        monkeypatch.setenv(ENV_FASTPATH, "0")
        slow = sweep_candidates(psi, grid, params)
        monkeypatch.setenv(ENV_FASTPATH, "1")
        fast = sweep_candidates(psi, grid, params)
        require_sweeps_agree(fast, slow)

    def test_cross_check_runs_under_invariants(self, psi, honest_params, monkeypatch):
        monkeypatch.setenv(ENV_FASTPATH, "1")
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        pairs, stats = sweep_candidates_with_stats(
            psi, _grid(psi, 6), honest_params
        )
        assert stats.fastpath
        assert len(pairs) == 6


class TestRequireSweepsAgree:
    def test_detects_length_mismatch(self, psi, honest_params):
        pairs, _ = legacy_sweep(psi, _grid(psi, 4), honest_params)
        with pytest.raises(InvariantViolation):
            require_sweeps_agree(pairs[:-1], pairs)

    def test_detects_utility_mismatch(self, psi, honest_params):
        pairs, _ = legacy_sweep(psi, _grid(psi, 4), honest_params)
        candidate, response = pairs[0]
        tampered = dataclasses.replace(response, utility=response.utility + 1.0)
        with pytest.raises(InvariantViolation):
            require_sweeps_agree([(candidate, tampered)] + pairs[1:], pairs)

    def test_accepts_identical_sweeps(self, psi, honest_params):
        pairs, _ = legacy_sweep(psi, _grid(psi, 4), honest_params)
        require_sweeps_agree(pairs, pairs)


class TestSweepStats:
    def test_rejects_negative_counts(self):
        with pytest.raises(DesignError):
            SweepStats(fastpath=True, n_candidates=-1, n_efforts=0, n_vectorized=0)
