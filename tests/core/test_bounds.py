"""Tests for Lemma 4.2 / Lemma 4.3 / Theorem 4.1 bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QuadraticEffort,
    UtilityBounds,
    build_candidate,
    compensation_lower_bound,
    compensation_upper_bound,
    requester_utility_lower_bound,
    requester_utility_upper_bound,
    solve_best_response,
)
from repro.errors import DesignError
from repro.types import DiscretizationGrid, WorkerParameters


class TestCompensationBounds:
    def test_lemma_4_3_floor_formula(self, psi, grid):
        for k in (1, 3, grid.n_intervals):
            assert compensation_lower_bound(grid, beta=2.0, target_piece=k) == (
                pytest.approx(2.0 * (k - 1) * grid.delta)
            )

    def test_lemma_4_3_omega_correction_lowers_floor(self, psi, grid):
        plain = compensation_lower_bound(grid, 1.0, 5)
        corrected = compensation_lower_bound(
            grid, 1.0, 5, effort_function=psi, omega=0.3
        )
        assert corrected <= plain
        assert corrected >= 0.0

    def test_lemma_4_3_omega_requires_psi(self, grid):
        with pytest.raises(DesignError):
            compensation_lower_bound(grid, 1.0, 2, omega=0.5)

    def test_lemma_4_2_ceiling_positive_and_above_floor(self, psi, grid):
        for k in range(1, grid.n_intervals + 1):
            ceiling = compensation_upper_bound(psi, grid, beta=1.0, target_piece=k)
            floor = compensation_lower_bound(grid, beta=1.0, target_piece=k)
            assert ceiling > floor

    def test_lemma_4_2_paper_formula(self, psi, grid):
        from repro.core.bounds import compensation_upper_bound_paper

        k, beta = 4, 1.5
        slope_left = psi.derivative((k - 1) * grid.delta)
        expected = beta * k * grid.delta - (
            2.0 * beta * psi.r2 * k * grid.delta**2 / slope_left
        )
        assert compensation_upper_bound_paper(psi, grid, beta, k) == pytest.approx(
            expected
        )

    def test_certified_ceiling_is_window_sum(self, psi, grid):
        k, beta, omega = 5, 1.0, 0.1
        breakpoints = psi.feedback_breakpoints(grid.edges())
        expected = sum(
            max(beta / psi.derivative(piece * grid.delta) - omega, 0.0)
            * (breakpoints[piece] - breakpoints[piece - 1])
            for piece in range(1, k + 1)
        )
        assert compensation_upper_bound(
            psi, grid, beta, k, omega=omega
        ) == pytest.approx(expected)

    def test_certified_close_to_paper_formula_on_fine_grids(self, psi):
        """The two ceilings agree as the grid refines (O(delta) gap)."""
        from repro.core.bounds import compensation_upper_bound_paper
        from repro.types import DiscretizationGrid

        fine = DiscretizationGrid.for_max_effort(
            0.9 * psi.max_increasing_effort, 200
        )
        k = 150
        certified = compensation_upper_bound(psi, fine, 1.0, k)
        printed = compensation_upper_bound_paper(psi, fine, 1.0, k)
        assert certified == pytest.approx(printed, rel=0.1)

    def test_bad_inputs_rejected(self, psi, grid):
        with pytest.raises(DesignError):
            compensation_lower_bound(grid, beta=-1.0, target_piece=1)
        with pytest.raises(DesignError):
            compensation_upper_bound(psi, grid, beta=1.0, target_piece=0)


class TestCandidateRespectsBounds:
    def test_honest_candidate_pay_within_bounds(self, psi, grid, honest_params):
        """For every target piece, the realized pay under the candidate
        contract sits between the Lemma 4.3 floor and Lemma 4.2 ceiling."""
        for k in range(1, grid.n_intervals + 1):
            candidate = build_candidate(psi, grid, honest_params, target_piece=k)
            response = solve_best_response(candidate.contract, honest_params)
            floor = compensation_lower_bound(grid, honest_params.beta, k)
            ceiling = compensation_upper_bound(psi, grid, honest_params.beta, k)
            assert floor - 1e-9 <= response.compensation <= ceiling + 1e-9

    def test_malicious_candidate_pay_below_honest_ceiling(self, psi, grid):
        """With omega > 0 the worker accepts less; the honest ceiling
        still upper-bounds the realized pay."""
        params = WorkerParameters.malicious(beta=1.0, omega=0.3)
        for k in (2, 5, 8):
            candidate = build_candidate(psi, grid, params, target_piece=k)
            response = solve_best_response(candidate.contract, params)
            ceiling = compensation_upper_bound(psi, grid, params.beta, k)
            assert response.compensation <= ceiling + 1e-9


class TestUtilityBounds:
    def test_upper_bound_formula_honest(self, psi, grid):
        mu, beta, w = 2.0, 1.0, 1.5
        expected = max(
            w * psi(l * grid.delta) - mu * beta * (l - 1) * grid.delta
            for l in range(1, grid.n_intervals + 1)
        )
        assert requester_utility_upper_bound(
            psi, grid, beta, mu, feedback_weight=w
        ) == pytest.approx(expected)

    def test_omega_raises_upper_bound(self, psi, grid):
        plain = requester_utility_upper_bound(psi, grid, 1.0, 1.0)
        generous = requester_utility_upper_bound(psi, grid, 1.0, 1.0, omega=0.5)
        assert generous >= plain

    def test_lower_bound_below_upper(self, psi, grid):
        for k in range(1, grid.n_intervals + 1):
            lower = requester_utility_lower_bound(psi, grid, 1.0, 1.0, k)
            upper = requester_utility_upper_bound(psi, grid, 1.0, 1.0)
            assert lower <= upper + 1e-9

    def test_bounds_record(self):
        bounds = UtilityBounds(lower=1.0, achieved=2.0, upper=3.0)
        assert bounds.gap == pytest.approx(1.0)
        assert bounds.is_consistent
        broken = UtilityBounds(lower=1.0, achieved=5.0, upper=3.0)
        assert not broken.is_consistent


@given(
    r2=st.floats(min_value=-2.0, max_value=-0.05),
    r1=st.floats(min_value=1.0, max_value=30.0),
    beta=st.floats(min_value=0.2, max_value=3.0),
    mu=st.floats(min_value=0.2, max_value=5.0),
    m=st.integers(min_value=2, max_value=10),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_property_honest_utility_within_theorem_bounds(r2, r1, beta, mu, m, data):
    """Theorem 4.1: for every target piece, the utility the requester
    gets from an honest worker under the candidate contract lies in
    [LB(k), UB]."""
    psi = QuadraticEffort(r2=r2, r1=r1, r0=1.0)
    grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, m)
    k = data.draw(st.integers(min_value=1, max_value=m))
    params = WorkerParameters.honest(beta=beta)
    candidate = build_candidate(psi, grid, params, target_piece=k)
    response = solve_best_response(candidate.contract, params)
    achieved = float(psi(response.effort)) - mu * response.compensation
    lower = requester_utility_lower_bound(psi, grid, beta, mu, k)
    upper = requester_utility_upper_bound(psi, grid, beta, mu)
    slack = 1e-7 * max(1.0, abs(upper), abs(lower))
    assert lower - slack <= achieved <= upper + slack
