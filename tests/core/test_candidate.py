"""Tests for candidate-contract construction (Section IV-C, Part 2).

These verify the paper's analytical guarantees directly:

* Eq. (41)/(42): every constructed slope sits strictly inside its
  Lemma 4.1 Case III window;
* Eq. (37): per-piece optimal utilities strictly increase up to the
  target piece;
* the flat tail makes pieces beyond the target Case I for honest
  workers;
* for honest workers the exact best response always lands in the target
  piece (the construction's purpose).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PieceCase,
    QuadraticEffort,
    build_candidate,
    case_thresholds,
    slope_epsilon,
    solve_best_response,
)
from repro.core.best_response import worker_utility
from repro.errors import DesignError
from repro.types import DiscretizationGrid, WorkerParameters


def _grid_for(psi: QuadraticEffort, m: int = 10) -> DiscretizationGrid:
    return DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, m)


class TestSlopeEpsilon:
    def test_epsilon_positive(self, psi, grid):
        for piece in range(1, grid.n_intervals + 1):
            assert slope_epsilon(psi, grid, piece, beta=1.0) > 0.0

    def test_epsilon_formula(self, psi, grid):
        piece, beta = 3, 1.0
        left, right = grid.interval(piece)
        expected = (
            4.0
            * beta
            * psi.r2**2
            * grid.delta**2
            / (psi.derivative(left) ** 2 * psi.derivative(right))
        )
        assert slope_epsilon(psi, grid, piece, beta) == pytest.approx(expected)


class TestConstruction:
    def test_rejects_bad_target(self, psi, grid, honest_params):
        with pytest.raises(DesignError):
            build_candidate(psi, grid, honest_params, target_piece=0)
        with pytest.raises(DesignError):
            build_candidate(psi, grid, honest_params, target_piece=grid.n_intervals + 1)

    def test_slopes_inside_case_iii_windows(self, psi, grid, honest_params):
        """Eqs. (41)-(42): pieces up to the target are strictly Case III."""
        for target in (1, 4, grid.n_intervals):
            candidate = build_candidate(psi, grid, honest_params, target_piece=target)
            assert not candidate.clamped_pieces
            for piece in range(1, target + 1):
                thresholds = case_thresholds(
                    psi, grid, piece, honest_params.beta, honest_params.omega
                )
                slope = candidate.slopes[piece - 1]
                assert thresholds.lower < slope < thresholds.upper
                assert candidate.cases[piece - 1] is PieceCase.INTERIOR

    def test_tail_is_flat_and_case_i_for_honest(self, psi, grid, honest_params):
        candidate = build_candidate(psi, grid, honest_params, target_piece=4)
        for piece in range(5, grid.n_intervals + 1):
            assert candidate.slopes[piece - 1] == pytest.approx(0.0)
            assert candidate.cases[piece - 1] is PieceCase.LEFT_ENDPOINT

    def test_slopes_strictly_increase_to_target(self, psi, grid, honest_params):
        candidate = build_candidate(psi, grid, honest_params, target_piece=7)
        climbing = candidate.slopes[:7]
        assert all(b > a for a, b in zip(climbing, climbing[1:]))

    def test_contract_monotone(self, psi, grid, malicious_params):
        candidate = build_candidate(psi, grid, malicious_params, target_piece=6)
        pay = candidate.contract.compensations
        assert all(b >= a for a, b in zip(pay, pay[1:]))

    def test_designed_effort_inside_target(self, psi, grid, honest_params):
        for target in (2, 5, 9):
            candidate = build_candidate(psi, grid, honest_params, target_piece=target)
            left, right = grid.interval(target)
            assert left <= candidate.designed_effort <= right

    def test_large_omega_clamps_to_flat(self, psi, grid):
        """When the whole Case III window is below zero the piece falls
        back to a flat (slope-0) segment rather than a decreasing one."""
        params = WorkerParameters.malicious(beta=0.1, omega=5.0)
        candidate = build_candidate(psi, grid, params, target_piece=5)
        assert candidate.clamped_pieces
        assert all(slope >= 0.0 for slope in candidate.slopes)


class TestUtilityIncrease:
    def test_per_piece_optimal_utilities_increase(self, psi, grid, honest_params):
        """Eq. (37): the worker's best utility per piece climbs to k."""
        target = 8
        candidate = build_candidate(psi, grid, honest_params, target_piece=target)
        contract = candidate.contract
        best_per_piece = []
        for piece in range(1, target + 1):
            slope = candidate.slopes[piece - 1]
            gain = slope + honest_params.omega
            stationary = psi.derivative_inverse(honest_params.beta / gain)
            best_per_piece.append(
                worker_utility(contract, honest_params, stationary)
            )
        assert all(b > a for a, b in zip(best_per_piece, best_per_piece[1:]))

    def test_honest_best_response_on_target(self, psi, grid, honest_params):
        for target in range(1, grid.n_intervals + 1):
            candidate = build_candidate(psi, grid, honest_params, target_piece=target)
            response = solve_best_response(candidate.contract, honest_params)
            assert response.piece == target, f"target={target}"


@given(
    r2=st.floats(min_value=-2.0, max_value=-0.02),
    r1=st.floats(min_value=0.5, max_value=40.0),
    r0=st.floats(min_value=0.0, max_value=5.0),
    beta=st.floats(min_value=0.2, max_value=4.0),
    m=st.integers(min_value=2, max_value=12),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_property_honest_on_target_for_random_psi(r2, r1, r0, beta, m, data):
    """The construction steers an honest worker into ANY requested piece,
    for any valid quadratic effort function and grid resolution."""
    psi = QuadraticEffort(r2=r2, r1=r1, r0=r0)
    grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, m)
    target = data.draw(st.integers(min_value=1, max_value=m))
    params = WorkerParameters.honest(beta=beta)
    candidate = build_candidate(psi, grid, params, target_piece=target)
    response = solve_best_response(candidate.contract, params)
    assert response.piece == target


@given(
    r2=st.floats(min_value=-2.0, max_value=-0.05),
    r1=st.floats(min_value=1.0, max_value=30.0),
    beta=st.floats(min_value=0.2, max_value=3.0),
    omega=st.floats(min_value=0.01, max_value=1.0),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_property_malicious_slopes_stay_in_window_unless_clamped(
    r2, r1, beta, omega, data
):
    """Eqs. (41)-(42) hold for malicious workers too, except where the
    window sits below zero and the slope is clamped (recorded)."""
    psi = QuadraticEffort(r2=r2, r1=r1, r0=0.5)
    grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 8)
    target = data.draw(st.integers(min_value=1, max_value=8))
    params = WorkerParameters.malicious(beta=beta, omega=omega)
    candidate = build_candidate(psi, grid, params, target_piece=target)
    for piece in range(1, target + 1):
        if piece in candidate.clamped_pieces:
            assert candidate.slopes[piece - 1] == 0.0
            continue
        thresholds = case_thresholds(psi, grid, piece, beta, omega)
        assert thresholds.lower < candidate.slopes[piece - 1] < thresholds.upper
