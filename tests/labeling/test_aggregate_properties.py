"""Property tests for label aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling import LabelSheet, majority_vote, weighted_vote


def _sheets(label_matrix):
    return [
        LabelSheet(
            worker_id=f"w{i}",
            labels=np.asarray(row, dtype=bool),
            effort=1.0,
        )
        for i, row in enumerate(label_matrix)
    ]


_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda n_tasks: st.lists(
        st.lists(st.booleans(), min_size=n_tasks, max_size=n_tasks),
        min_size=1,
        max_size=7,
    )
)


@given(matrix=_matrices)
@settings(max_examples=150, deadline=None)
def test_property_unanimity_preserved(matrix):
    """If every worker agrees on a task, every vote scheme keeps it."""
    sheets = _sheets(matrix)
    labels = np.array(matrix, dtype=bool)
    consensus = majority_vote(sheets)
    weights = {sheet.worker_id: 1.0 for sheet in sheets}
    weighted = weighted_vote(sheets, weights)
    for task in range(labels.shape[1]):
        column = labels[:, task]
        if column.all():
            assert consensus[task]
            assert weighted[task]
        if not column.any():
            assert not consensus[task]
            assert not weighted[task]


@given(matrix=_matrices)
@settings(max_examples=150, deadline=None)
def test_property_equal_weights_match_majority(matrix):
    """Uniform positive weights reduce the weighted vote to majority."""
    sheets = _sheets(matrix)
    weights = {sheet.worker_id: 2.5 for sheet in sheets}
    assert weighted_vote(sheets, weights).tolist() == majority_vote(sheets).tolist()


@given(matrix=_matrices, boost=st.floats(min_value=10.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_property_dominant_weight_dictates_consensus(matrix, boost):
    """A worker whose weight exceeds everyone else's combined always
    gets its labels adopted."""
    sheets = _sheets(matrix)
    weights = {sheet.worker_id: 1.0 for sheet in sheets}
    dictator = sheets[0]
    weights[dictator.worker_id] = boost * len(sheets)
    consensus = weighted_vote(sheets, weights)
    assert consensus.tolist() == dictator.labels.tolist()


@given(matrix=_matrices)
@settings(max_examples=100, deadline=None)
def test_property_negative_weights_ignored(matrix):
    """Negative weights are clamped to zero, never inverted."""
    sheets = _sheets(matrix)
    if len(sheets) < 2:
        return
    weights = {sheet.worker_id: 1.0 for sheet in sheets}
    weights[sheets[0].worker_id] = -100.0
    consensus = weighted_vote(sheets, weights)
    without = weighted_vote(
        sheets[1:], {s.worker_id: 1.0 for s in sheets[1:]}
    )
    assert consensus.tolist() == without.tolist()
