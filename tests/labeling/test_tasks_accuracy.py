"""Tests for labeling tasks and the effort-to-accuracy model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError, ModelError
from repro.labeling import (
    AccuracyModel,
    BinaryTask,
    TaskBatch,
    TaskGenerator,
    quadratic_feedback_approximation,
)


class TestTasks:
    def test_valid_task(self):
        task = BinaryTask(task_id="t1", truth=True, difficulty=0.3)
        assert task.truth

    def test_validation(self):
        with pytest.raises(DataError):
            BinaryTask(task_id="", truth=True)
        with pytest.raises(DataError):
            BinaryTask(task_id="t", truth=True, difficulty=1.0)
        with pytest.raises(DataError):
            BinaryTask(task_id="t", truth=True, difficulty=-0.1)

    def test_batch_arrays(self):
        batch = TaskBatch(
            tasks=[
                BinaryTask("a", True, 0.1),
                BinaryTask("b", False, 0.5),
            ]
        )
        assert batch.truths().tolist() == [True, False]
        assert batch.difficulties().tolist() == [0.1, 0.5]
        assert len(batch) == 2

    def test_batch_validation(self):
        with pytest.raises(DataError):
            TaskBatch(tasks=[])
        with pytest.raises(DataError):
            TaskBatch(tasks=[BinaryTask("a", True), BinaryTask("a", False)])


class TestGenerator:
    def test_batch_shape_and_ids_unique(self):
        generator = TaskGenerator(seed=0)
        first = generator.batch(30)
        second = generator.batch(30)
        ids = {t.task_id for t in first.tasks} | {t.task_id for t in second.tasks}
        assert len(ids) == 60

    def test_difficulty_mean_tracks_config(self):
        generator = TaskGenerator(mean_difficulty=0.6, seed=1)
        batch = generator.batch(3000)
        assert batch.difficulties().mean() == pytest.approx(0.6, abs=0.05)

    def test_positive_rate(self):
        generator = TaskGenerator(positive_rate=0.8, seed=1)
        batch = generator.batch(3000)
        assert batch.truths().mean() == pytest.approx(0.8, abs=0.05)

    def test_validation(self):
        with pytest.raises(DataError):
            TaskGenerator(mean_difficulty=0.0)
        with pytest.raises(DataError):
            TaskGenerator(concentration=0.0)
        with pytest.raises(DataError):
            TaskGenerator(positive_rate=1.5)
        with pytest.raises(DataError):
            TaskGenerator().batch(0)


class TestAccuracyModel:
    def test_zero_effort_is_coin_flip(self):
        model = AccuracyModel()
        assert model.accuracy(0.0) == pytest.approx(0.5)

    def test_saturates_at_p_max(self):
        model = AccuracyModel(p_max=0.9, effort_scale=1.0)
        assert model.accuracy(100.0) == pytest.approx(0.9, abs=1e-6)

    def test_difficulty_attenuates(self):
        model = AccuracyModel()
        assert model.accuracy(3.0, difficulty=0.5) < model.accuracy(3.0, 0.0)

    def test_monotone_in_effort(self):
        model = AccuracyModel()
        efforts = np.linspace(0, 10, 50)
        values = [model.accuracy(float(y)) for y in efforts]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_expected_feedback(self):
        model = AccuracyModel()
        batch = TaskBatch(
            tasks=[BinaryTask("a", True, 0.0), BinaryTask("b", True, 0.5)]
        )
        expected = model.accuracy(2.0, 0.0) + model.accuracy(2.0, 0.5)
        assert model.expected_feedback(2.0, batch) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ModelError):
            AccuracyModel(p_max=0.5)
        with pytest.raises(ModelError):
            AccuracyModel(effort_scale=0.0)
        model = AccuracyModel()
        with pytest.raises(ModelError):
            model.accuracy(-1.0)
        with pytest.raises(ModelError):
            model.accuracy(1.0, difficulty=1.0)


class TestQuadraticApproximation:
    def test_returns_valid_effort_function(self):
        approx = quadratic_feedback_approximation(
            AccuracyModel(), batch_size=40, mean_difficulty=0.3, max_effort=8.0
        )
        assert approx.r2 < 0.0
        assert approx.r1 > 0.0

    def test_close_to_true_curve(self):
        model = AccuracyModel()
        approx = quadratic_feedback_approximation(
            model, batch_size=40, mean_difficulty=0.3, max_effort=8.0
        )
        efforts = np.linspace(0, 8, 40)
        truth = np.array([40 * model.accuracy(float(y), 0.3) for y in efforts])
        fitted = np.array([float(approx(float(y))) for y in efforts])
        assert np.max(np.abs(fitted - truth)) < 0.06 * np.max(truth)

    def test_validation(self):
        with pytest.raises(ModelError):
            quadratic_feedback_approximation(AccuracyModel(), 0, 0.3, 8.0)
        with pytest.raises(ModelError):
            quadratic_feedback_approximation(AccuracyModel(), 10, 1.0, 8.0)
        with pytest.raises(ModelError):
            quadratic_feedback_approximation(AccuracyModel(), 10, 0.3, 0.0)
        with pytest.raises(ModelError):
            quadratic_feedback_approximation(AccuracyModel(), 10, 0.3, 8.0, n_points=2)


@given(
    p_max=st.floats(min_value=0.55, max_value=1.0),
    scale=st.floats(min_value=0.2, max_value=10.0),
    effort=st.floats(min_value=0.0, max_value=50.0),
    difficulty=st.floats(min_value=0.0, max_value=0.99),
)
@settings(max_examples=150, deadline=None)
def test_property_accuracy_bounded(p_max, scale, effort, difficulty):
    """Accuracy always lies in [0.5, p_max]."""
    model = AccuracyModel(p_max=p_max, effort_scale=scale)
    accuracy = model.accuracy(effort, difficulty)
    assert 0.5 - 1e-12 <= accuracy <= p_max + 1e-12
