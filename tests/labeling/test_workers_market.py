"""Tests for labeling workers, aggregation and the labeling market."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.designer import DesignerConfig
from repro.errors import ModelError, SimulationError
from repro.labeling import (
    AccuracyModel,
    LabelSheet,
    LabelingMarket,
    LabelingWorker,
    TaskGenerator,
    labeling_accuracy,
    majority_vote,
    quadratic_feedback_approximation,
    weighted_vote,
)


@pytest.fixture(scope="module")
def model():
    return AccuracyModel(p_max=0.95, effort_scale=2.0)


@pytest.fixture(scope="module")
def feedback_function(model):
    return quadratic_feedback_approximation(model, 30, 0.3, 8.0)


def _worker(model, feedback_function, worker_id="w", omega=0.0, flip_rate=0.0):
    return LabelingWorker(
        worker_id,
        model,
        feedback_function,
        beta=1.0,
        omega=omega,
        flip_rate=flip_rate,
    )


class TestLabelingWorker:
    def test_validation(self, model, feedback_function):
        with pytest.raises(ModelError):
            LabelingWorker("", model, feedback_function)
        with pytest.raises(ModelError):
            _worker(model, feedback_function, omega=0.3, flip_rate=0.0)
        with pytest.raises(ModelError):
            _worker(model, feedback_function, omega=0.0, flip_rate=0.5)

    def test_high_effort_labels_more_accurately(self, model, feedback_function, rng):
        worker = _worker(model, feedback_function)
        batch = TaskGenerator(seed=2).batch(400)
        lazy = worker.label(batch, effort=0.0, rng=rng)
        diligent = worker.label(batch, effort=8.0, rng=rng)
        truths = batch.truths()
        assert diligent.agreement_with(truths) > lazy.agreement_with(truths)

    def test_malicious_flips_toward_target(self, model, feedback_function, rng):
        shill = _worker(
            model, feedback_function, worker_id="s", omega=0.3, flip_rate=1.0
        )
        batch = TaskGenerator(seed=3, positive_rate=0.5).batch(200)
        sheet = shill.label(batch, effort=8.0, rng=rng)
        assert sheet.labels.all()  # every label forced to True

    def test_agreement_shape_mismatch(self, model, feedback_function, rng):
        worker = _worker(model, feedback_function)
        batch = TaskGenerator(seed=4).batch(10)
        sheet = worker.label(batch, effort=1.0, rng=rng)
        with pytest.raises(ModelError):
            sheet.agreement_with(np.zeros(5, dtype=bool))


class TestAggregation:
    def _sheet(self, worker_id, labels):
        return LabelSheet(
            worker_id=worker_id,
            labels=np.asarray(labels, dtype=bool),
            effort=1.0,
        )

    def test_majority_vote(self):
        sheets = [
            self._sheet("a", [True, False, True]),
            self._sheet("b", [True, False, False]),
            self._sheet("c", [False, False, True]),
        ]
        assert majority_vote(sheets).tolist() == [True, False, True]

    def test_majority_tie_breaks_true(self):
        sheets = [self._sheet("a", [True]), self._sheet("b", [False])]
        assert majority_vote(sheets).tolist() == [True]

    def test_weighted_vote_downweights_shills(self):
        sheets = [
            self._sheet("honest1", [False]),
            self._sheet("shill1", [True]),
            self._sheet("shill2", [True]),
        ]
        weights = {"honest1": 5.0, "shill1": 0.5, "shill2": 0.5}
        assert weighted_vote(sheets, weights).tolist() == [False]
        # Unweighted majority would say True.
        assert majority_vote(sheets).tolist() == [True]

    def test_weighted_vote_zero_mass_falls_back(self):
        sheets = [self._sheet("a", [True]), self._sheet("b", [True])]
        assert weighted_vote(sheets, {}).tolist() == [True]

    def test_mismatched_sheets_rejected(self):
        sheets = [self._sheet("a", [True]), self._sheet("b", [True, False])]
        with pytest.raises(ModelError):
            majority_vote(sheets)
        with pytest.raises(ModelError):
            majority_vote([])

    def test_labeling_accuracy(self):
        batch = TaskGenerator(seed=5).batch(10)
        perfect = labeling_accuracy(batch.truths(), batch)
        assert perfect == 1.0
        inverted = labeling_accuracy(~batch.truths(), batch)
        assert inverted == 0.0


class TestMarket:
    def _market(self, model, feedback_function, seed=0):
        workers = [
            _worker(model, feedback_function, worker_id=f"h{i}") for i in range(5)
        ] + [
            _worker(
                model,
                feedback_function,
                worker_id=f"s{i}",
                omega=0.3,
                flip_rate=0.5,
            )
            for i in range(2)
        ]
        weights = {w.worker_id: (1.0 if w.worker_id.startswith("h") else 0.2)
                   for w in workers}
        return LabelingMarket(
            workers=workers,
            weights=weights,
            mu=1.0,
            value_per_correct=2.0,
            designer_config=DesignerConfig(n_intervals=10),
            max_effort=8.0,
            seed=seed,
        )

    def test_design_contracts_per_worker(self, model, feedback_function):
        market = self._market(model, feedback_function)
        contracts = market.design_contracts()
        assert len(contracts) == 7

    def test_round_accounting(self, model, feedback_function):
        market = self._market(model, feedback_function)
        batch = TaskGenerator(seed=6).batch(30)
        result = market.play_round(batch, market.design_contracts())
        assert 0.0 <= result.consensus_accuracy <= 1.0
        assert result.total_pay == pytest.approx(sum(result.worker_pay.values()))
        expected_utility = (
            2.0 * result.consensus_accuracy * 30 - result.total_pay
        )
        assert result.requester_utility == pytest.approx(expected_utility)

    def test_dynamic_beats_flat_on_accuracy(self, model, feedback_function):
        market = self._market(model, feedback_function)
        generator = TaskGenerator(seed=7)
        dynamic = market.run(generator, batch_size=30, n_rounds=3)
        market_flat = self._market(model, feedback_function)
        flat = market_flat.run(
            TaskGenerator(seed=7),
            batch_size=30,
            n_rounds=3,
            contracts=market_flat.flat_contracts(pay=1.0),
        )
        assert np.mean([r.consensus_accuracy for r in dynamic]) > np.mean(
            [r.consensus_accuracy for r in flat]
        )

    def test_validation(self, model, feedback_function):
        with pytest.raises(SimulationError):
            LabelingMarket(workers=[], weights={})
        worker = _worker(model, feedback_function)
        with pytest.raises(SimulationError):
            LabelingMarket(workers=[worker, worker], weights={})
        with pytest.raises(SimulationError):
            LabelingMarket(workers=[worker], weights={}, mu=0.0)
        market = self._market(model, feedback_function)
        with pytest.raises(SimulationError):
            market.flat_contracts(pay=-1.0)
        with pytest.raises(SimulationError):
            market.run(TaskGenerator(), batch_size=5, n_rounds=0)
