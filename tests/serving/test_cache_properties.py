"""Property sweep: cached solves equal fresh solves, bounds included.

Satellite of the serving subsystem: over seeded random populations the
contract cache must be *transparent* — a cached design is byte-identical
to a fresh solve — and every design it serves must still carry valid
Lemma 4.2/4.3 certificates.  The sweep runs with
``REPRO_CHECK_INVARIANTS`` forced on, so every cache hit additionally
re-solves and asserts the cache invariant inside
:func:`repro.serving.cache.maybe_verify_cached` itself.
"""

from __future__ import annotations

import os
import pickle
from typing import Iterator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DesignerConfig
from repro.core.bounds import compensation_lower_bound, compensation_upper_bound
from repro.serving import ContractCache, SolverPool
from repro.serving.workload import synthetic_subproblems

_SLACK = 1e-7


@pytest.fixture(autouse=True, scope="module")
def _invariants_on() -> Iterator[None]:
    previous = os.environ.get("REPRO_CHECK_INVARIANTS")
    os.environ["REPRO_CHECK_INVARIANTS"] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_CHECK_INVARIANTS"]
        else:
            os.environ["REPRO_CHECK_INVARIANTS"] = previous


@settings(max_examples=20, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_archetypes=st.integers(min_value=1, max_value=4),
    mu=st.floats(min_value=0.5, max_value=2.0),
)
def test_cached_equals_fresh_and_bounds_hold(
    seed: int, n_archetypes: int, mu: float
) -> None:
    subproblems = synthetic_subproblems(
        n_subjects=3 * n_archetypes, n_archetypes=n_archetypes, seed=seed
    )
    cache = ContractCache()
    config = DesignerConfig()
    with SolverPool(n_workers=0, mu=mu, config=config, cache=cache) as pool:
        cold, cold_diag = pool.solve_with_diagnostics(subproblems)
        # The warm round serves every subject from the cache; with
        # invariants on, maybe_verify_cached re-solves each hit and
        # raises if the cached design drifted from a fresh solve.
        warm, warm_diag = pool.solve_with_diagnostics(subproblems)

    assert not any(d.cache_hit for d in cold_diag.values())
    assert all(d.cache_hit for d in warm_diag.values())
    assert cache.stats.verifications == n_archetypes

    for subject_id, cold_solution in cold.items():
        cold_result = cold_solution.result
        warm_result = warm[subject_id].result

        # Cache transparency: the served bytes are the solved bytes.
        assert pickle.dumps(warm_result.contract.compensations) == pickle.dumps(
            cold_result.contract.compensations
        )
        assert warm_result.k_opt == cold_result.k_opt

        # Every served design still satisfies the paper's certificates.
        for result in (cold_result, warm_result):
            if not result.hired or result.bounds is None:
                continue
            subproblem = cold_solution.subproblem
            psi = subproblem.effort_function
            params = subproblem.params
            grid = config.grid_for(psi, max_effort=subproblem.max_effort)
            ceiling = compensation_upper_bound(
                psi, grid, params.beta, result.k_opt, omega=params.omega
            )
            pay = result.response.compensation
            assert pay <= ceiling * (1.0 + _SLACK) + _SLACK
            if result.bounds.certified:
                # Theorem 4.1 sandwich and the Lemma 4.3 participation
                # floor only apply when the bound preconditions held.
                assert result.bounds.is_consistent
                floor = compensation_lower_bound(
                    grid,
                    params.beta,
                    result.k_opt,
                    effort_function=psi,
                    omega=params.omega,
                )
                assert pay >= floor - _SLACK * max(1.0, abs(floor))


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mu=st.floats(min_value=0.5, max_value=2.0),
)
def test_designer_cache_path_matches_uncached_designer(
    seed: int, mu: float
) -> None:
    """The serial designer with a design cache equals the bare designer."""
    from repro.core import ContractDesigner

    subproblems = synthetic_subproblems(n_subjects=6, n_archetypes=2, seed=seed)
    bare = ContractDesigner(mu=mu)
    cached = ContractDesigner(mu=mu, design_cache=ContractCache())
    for subproblem in subproblems:
        kwargs = dict(
            effort_function=subproblem.effort_function,
            params=subproblem.params,
            feedback_weight=subproblem.feedback_weight,
            max_effort=subproblem.max_effort,
        )
        expected = bare.design(**kwargs)
        for _ in range(2):  # second pass is a guaranteed cache hit
            result = cached.design(**kwargs)
            assert pickle.dumps(result.contract.compensations) == pickle.dumps(
                expected.contract.compensations
            )
            assert result.k_opt == expected.k_opt
