"""Tests for the closed-loop load generator and its target adapters."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServingError
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    LoadGenerator,
    SolverPool,
    pool_target,
    synthetic_request_batches,
)
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def population():
    return synthetic_subproblems(n_subjects=20, n_archetypes=5, seed=37)


class TestBatches:
    def test_deterministic_replay(self, population):
        first = synthetic_request_batches(population, 30, batch_size=4, seed=3)
        second = synthetic_request_batches(population, 30, batch_size=4, seed=3)
        assert [
            [s.subject_id for s in batch] for batch in first
        ] == [[s.subject_id for s in batch] for batch in second]
        assert sum(len(batch) for batch in first) == 30
        assert all(len(batch) <= 4 for batch in first)

    def test_validation(self, population):
        with pytest.raises(ServingError):
            synthetic_request_batches([], 10)
        with pytest.raises(ServingError):
            synthetic_request_batches(population, 0)
        with pytest.raises(ServingError):
            synthetic_request_batches(population, 10, batch_size=0)


class TestLoadGenerator:
    def test_report_counts_and_quantiles(self, population):
        batches = synthetic_request_batches(population, 24, batch_size=4, seed=1)
        with SolverPool(n_workers=0) as pool:
            generator = LoadGenerator(pool_target(pool), concurrency=3)
            report = generator.run(batches)
        assert report.requests == 24
        assert report.batches == len(batches)
        assert report.errors == 0
        assert report.concurrency == 3
        assert report.throughput_rps > 0.0
        assert 0.0 < report.p50_s <= report.p99_s
        snapshot = report.snapshot()
        assert snapshot["requests"] == 24.0

    def test_errors_are_tallied_not_raised(self, population):
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise ServingError("boom")

        batches = synthetic_request_batches(population, 8, batch_size=1, seed=2)
        generator = LoadGenerator(flaky, concurrency=1)
        report = generator.run(batches)
        assert report.errors == 4
        assert report.requests == 4
        assert report.error_samples and "boom" in report.error_samples[0]

    def test_checkpoints_fire_once_at_threshold(self, population):
        fired = []
        batches = synthetic_request_batches(population, 20, batch_size=2, seed=4)
        with SolverPool(n_workers=0) as pool:
            generator = LoadGenerator(pool_target(pool), concurrency=2)
            generator.run(
                batches,
                checkpoints={
                    6: lambda: fired.append(6),
                    12: lambda: fired.append(12),
                },
            )
        assert sorted(fired) == [6, 12]

    def test_metrics_publish_into_injected_registry(self, population):
        registry = MetricsRegistry()
        batches = synthetic_request_batches(population, 6, batch_size=2, seed=5)
        with SolverPool(n_workers=0) as pool:
            generator = LoadGenerator(
                pool_target(pool), concurrency=1, registry=registry
            )
            generator.run(batches)
        snapshot = registry.snapshot()
        assert snapshot["loadgen.requests"]["value"] == 6.0
        assert snapshot["loadgen.request_latency_s"]["count"] == 3.0

    def test_closed_loop_bounds_in_flight_requests(self, population):
        in_flight = {"now": 0, "peak": 0}
        gate = threading.Lock()

        def track(batch):
            with gate:
                in_flight["now"] += 1
                in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            with gate:
                in_flight["now"] -= 1

        batches = synthetic_request_batches(population, 40, batch_size=1, seed=6)
        LoadGenerator(track, concurrency=3).run(batches)
        assert in_flight["peak"] <= 3

    def test_validation(self, population):
        with pytest.raises(ServingError):
            LoadGenerator(lambda batch: None, concurrency=0)
        generator = LoadGenerator(lambda batch: None)
        with pytest.raises(ServingError):
            generator.run([])
