"""Tests for the sharded cluster router: routing, handoff, failover."""

from __future__ import annotations

import pickle

import pytest

from repro.core import solve_subproblems
from repro.errors import ServingError
from repro.serving import ShardProcess, ShardRouter, ShardSpec
from repro.serving.cluster.shard import ShardTransportError
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=30, n_archetypes=6, seed=23)


@pytest.fixture(scope="module")
def diverse_workload():
    # Fully heterogeneous: 40 unique fingerprints, so every shard owns a
    # non-trivial slice of keys (6 archetypes could all land on one
    # shard by chance; 40 cannot, so shard-coverage assertions are
    # deterministic in practice).
    return synthetic_subproblems(n_subjects=40, n_archetypes=40, seed=29)


@pytest.fixture()
def router():
    # Supervisor disabled: tests drive revival explicitly for determinism.
    with ShardRouter(n_shards=2, supervise_interval=0.0) as instance:
        yield instance


class TestShardProcess:
    def test_solve_health_and_stats(self, workload):
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        try:
            fingerprints = [f"fp{i}" for i in range(3)]
            designs, hits = shard.solve(workload[:3], fingerprints)
            assert len(designs) == 3 and hits == [False, False, False]
            _, hits_again = shard.solve(workload[:3], fingerprints)
            assert hits_again == [True, True, True]
            health = shard.health()
            assert health["shard_id"] == "s0"
            assert health["cache_entries"] == 3
            snapshot = shard.stats_snapshot()
            assert snapshot["requests"] == 6.0
            # Pipe-op solves book per-request latencies, so /stats
            # consumers (repro obs top) get live p50/p99 columns.
            assert snapshot["request_latency_p50_s"] > 0.0
            assert snapshot["request_latency_p99_s"] >= (
                snapshot["request_latency_p50_s"]
            )
        finally:
            shard.stop()
        assert not shard.alive

    def test_stop_is_a_clean_exit(self):
        # Regression: the shutdown frame must match the 3-tuple
        # (op, payload, meta) protocol — a malformed frame kills the
        # shard with an unpack error instead of a clean exit 0.
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        process = shard._process
        shard.stop()
        assert process is not None
        assert process.exitcode == 0

    def test_cache_export_import_round_trip(self, workload):
        source = ShardProcess(ShardSpec(shard_id="src"))
        sink = ShardProcess(ShardSpec(shard_id="dst"))
        source.start()
        sink.start()
        try:
            fingerprints = [f"fp{i}" for i in range(4)]
            source.solve(workload[:4], fingerprints)
            entries = source.cache_export()
            assert sorted(fp for fp, _ in entries) == sorted(fingerprints)
            assert sink.cache_import(entries) == 4
            _, hits = sink.solve(workload[:4], fingerprints)
            assert hits == [True, True, True, True]
        finally:
            source.stop()
            sink.stop()

    def test_wire_format_trims_the_candidate_sweep(self, workload):
        # The per-candidate evaluations table is O(m^2) introspection
        # data; the pipe ships the contract without it.
        serial = solve_subproblems(workload[:2], mu=1.0)
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        try:
            designs, _ = shard.solve(workload[:2], ["fpA", "fpB"])
        finally:
            shard.stop()
        for subproblem, design in zip(workload[:2], designs):
            assert design.evaluations == ()
            expected = serial[subproblem.subject_id].result
            assert pickle.dumps(design.contract.compensations) == (
                pickle.dumps(expected.contract.compensations)
            )
            assert design.k_opt == expected.k_opt

    def test_application_error_keeps_shard_alive(self, workload):
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        try:
            with pytest.raises(ServingError) as excinfo:
                shard.request("no_such_op")
            assert not isinstance(excinfo.value, ShardTransportError)
            assert shard.alive
            designs, _ = shard.solve(workload[:1], ["fp"])
            assert len(designs) == 1
        finally:
            shard.stop()

    def test_dead_shard_raises_transport_error(self, workload):
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        shard.kill()
        with pytest.raises(ShardTransportError):
            shard.solve(workload[:1], ["fp"])

    def test_restart_after_kill(self):
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        first_pid = shard.pid
        shard.kill()
        shard.start()
        try:
            assert shard.alive
            assert shard.pid != first_pid
            assert shard.restarts == 1
        finally:
            shard.stop()

    def test_spec_validation(self):
        with pytest.raises(ServingError):
            ShardSpec(shard_id="")
        with pytest.raises(ServingError):
            ShardSpec(shard_id="s", cache_capacity=0)


class TestRouting:
    def test_matches_serial_and_reports_hits(self, router, workload):
        serial = solve_subproblems(workload, mu=1.0)
        designs, hits = router.solve_designs(workload)
        assert not any(hits)
        for subproblem, design in zip(workload, designs):
            assert pickle.dumps(design.contract.compensations) == pickle.dumps(
                serial[subproblem.subject_id].result.contract.compensations
            )
        _, warm_hits = router.solve_designs(workload)
        assert all(warm_hits)

    def test_cache_affinity_keeps_each_fingerprint_on_one_shard(
        self, router, workload
    ):
        router.solve_designs(workload)
        router.solve_designs(workload)
        snapshot = router.stats_snapshot()
        # Unique archetypes split across shards; together they hold each
        # fingerprint exactly once (no duplicated solving across shards).
        total_entries = sum(
            shard["cache_entries"] for shard in snapshot["shards"].values()
        )
        unique = len(set(router.fingerprints(workload)))
        assert total_entries == unique

    def test_solve_keyed_by_subject(self, router, workload):
        solutions = router.solve(workload)
        assert set(solutions) == {entry.subject_id for entry in workload}
        with pytest.raises(ServingError):
            router.solve([workload[0], workload[0]])

    def test_empty_batch(self, router):
        assert router.solve_designs([]) == ([], [])

    def test_requires_start(self, workload):
        stopped = ShardRouter(n_shards=1)
        with pytest.raises(ServingError):
            stopped.solve_designs(workload[:1])


class TestMembership:
    def test_add_shard_receives_warm_handoff(self, router, diverse_workload):
        router.solve_designs(diverse_workload)
        joined = router.add_shard()
        assert joined in router.shard_ids
        _, hits = router.solve_designs(diverse_workload)
        # The moved sliver was handed over warm: no shard re-solves.
        assert all(hits)
        assert router.stats.handoff_entries.value > 0

    def test_remove_shard_redistributes_its_cache(self, router, workload):
        router.solve_designs(workload)
        victim = router.shard_ids[0]
        router.remove_shard(victim)
        assert victim not in router.shard_ids
        _, hits = router.solve_designs(workload)
        assert all(hits)

    def test_cannot_remove_last_shard(self, workload):
        with ShardRouter(n_shards=1, supervise_interval=0.0) as single:
            with pytest.raises(ServingError):
                single.remove_shard(single.shard_ids[0])

    def test_membership_validation(self, router):
        with pytest.raises(ServingError):
            router.add_shard(router.shard_ids[0])
        with pytest.raises(ServingError):
            router.remove_shard("nope")
        with pytest.raises(ServingError):
            router.kill_shard("nope")


class TestFailover:
    def test_dead_shard_fails_over_without_losing_requests(
        self, router, diverse_workload
    ):
        router.solve_designs(diverse_workload)
        router.kill_shard(router.shard_ids[0])
        designs, _ = router.solve_designs(diverse_workload)
        assert len(designs) == len(diverse_workload)
        # The dead owner is skipped, so its groups land on the survivor.
        # (transport_errors only fires when a request is in flight at
        # kill time, which a sequential test cannot guarantee.)
        assert router.stats.failovers.value > 0

    def test_revive_restores_clean_health_and_warm_cache(
        self, router, workload
    ):
        router.solve_designs(workload)
        victim = router.shard_ids[0]
        router.kill_shard(victim)
        assert router.healthz()["status"] == "degraded"
        # Serving through the outage lands the victim's keys on the
        # surviving peer's cache (failover), which is what re-warms the
        # victim at revival.
        router.solve_designs(workload)
        revived = router.revive_dead_shards()
        assert revived == (victim,)
        report = router.healthz()
        assert report["status"] == "ok"
        assert report["shards"][victim]["alive"]
        _, hits = router.solve_designs(workload)
        assert all(hits)  # peers re-warmed the revived shard

    def test_local_fallback_when_every_shard_is_down(self, workload):
        with ShardRouter(
            n_shards=2, supervise_interval=0.0, backoff=0.0
        ) as isolated:
            for shard_id in isolated.shard_ids:
                isolated.kill_shard(shard_id)
            designs, _ = isolated.solve_designs(workload[:5])
            assert len(designs) == 5
            assert isolated.stats.local_fallbacks.value > 0

    def test_validation(self):
        with pytest.raises(ServingError):
            ShardRouter(n_shards=0)
        with pytest.raises(ServingError):
            ShardRouter(max_retries=-1)
        with pytest.raises(ServingError):
            ShardRouter(backoff=-0.1)
        with pytest.raises(ServingError):
            ShardRouter(supervise_interval=-1.0)


class TestIntrospection:
    def test_healthz_shape(self, router):
        report = router.healthz()
        assert report["status"] == "ok"
        assert report["n_shards"] == 2
        assert report["n_healthy"] == 2
        for shard_id, info in report["shards"].items():
            assert info["alive"]
            assert info["shard_id"] == shard_id

    def test_stats_snapshot_shape(self, router, workload):
        router.solve_designs(workload)
        snapshot = router.stats_snapshot()
        assert snapshot["router"]["cluster.requests"]["value"] == float(
            len(workload)
        )
        assert set(snapshot["shards"]) == set(router.shard_ids)
