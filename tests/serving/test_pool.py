"""Tests for the batched/cached/parallel solver pool."""

from __future__ import annotations

import pickle

import pytest

from repro.core import solve_subproblems
from repro.errors import ServingError
from repro.serving import ContractCache, ServingStats, SolverPool
from repro.serving.pool import solve_subproblems_parallel
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=24, n_archetypes=6, seed=11)


@pytest.fixture(scope="module")
def serial_solutions(workload):
    return solve_subproblems(workload, mu=1.0)


def _compensation_bytes(solution):
    return pickle.dumps(solution.result.contract.compensations)


class TestSolverPoolSerialPath:
    def test_matches_serial_byte_identically(self, workload, serial_solutions):
        with SolverPool(n_workers=0) as pool:
            pooled = pool.solve(workload)
        assert list(pooled) == list(serial_solutions)
        for subject_id in serial_solutions:
            assert _compensation_bytes(pooled[subject_id]) == _compensation_bytes(
                serial_solutions[subject_id]
            )

    def test_results_in_input_order(self, workload):
        with SolverPool(n_workers=0) as pool:
            solutions = pool.solve(workload)
        assert list(solutions) == [entry.subject_id for entry in workload]

    def test_dedupe_solves_each_archetype_once(self, workload):
        stats = ServingStats()
        with SolverPool(n_workers=0, stats=stats) as pool:
            pool.solve(workload)
        assert stats.requests == len(workload)
        assert stats.unique_solves == 6
        assert stats.dedup_rate == pytest.approx(1.0 - 6 / len(workload))

    def test_dedupe_off_solves_every_subject(self, workload):
        stats = ServingStats()
        with SolverPool(n_workers=0, dedupe=False, stats=stats) as pool:
            pool.solve(workload)
        assert stats.unique_solves == len(workload)

    def test_rejects_duplicate_subject_ids(self, workload):
        with SolverPool(n_workers=0) as pool:
            with pytest.raises(ServingError):
                pool.solve([workload[0], workload[0]])


class TestSolverPoolCache:
    def test_warm_rounds_hit_the_cache(self, workload):
        cache = ContractCache()
        stats = ServingStats()
        with SolverPool(n_workers=0, cache=cache, stats=stats) as pool:
            _, cold = pool.solve_with_diagnostics(workload)
            _, warm = pool.solve_with_diagnostics(workload)
        assert not any(d.cache_hit for d in cold.values())
        assert all(d.cache_hit for d in warm.values())
        assert stats.cache_hits == 6
        assert cache.stats.hits == 6

    def test_cached_round_matches_serial(self, workload, serial_solutions):
        with SolverPool(n_workers=0, cache=ContractCache()) as pool:
            pool.solve(workload)
            warm = pool.solve(workload)
        for subject_id in serial_solutions:
            assert _compensation_bytes(warm[subject_id]) == _compensation_bytes(
                serial_solutions[subject_id]
            )

    def test_diagnostics_fingerprints_align(self, workload):
        with SolverPool(n_workers=0) as pool:
            fingerprints = pool.fingerprints(workload)
            _, diagnostics = pool.solve_with_diagnostics(workload)
        assert [
            diagnostics[entry.subject_id].fingerprint for entry in workload
        ] == fingerprints

    def test_verification_runs_on_hits_under_invariants(
        self, workload, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        cache = ContractCache()
        with SolverPool(n_workers=0, cache=cache) as pool:
            pool.solve(workload)
            pool.solve(workload)
        assert cache.stats.verifications == 6


class TestSolverPoolProcesses:
    def test_process_path_matches_serial(self, workload, serial_solutions):
        pooled = solve_subproblems_parallel(workload, mu=1.0, n_workers=2)
        for subject_id in serial_solutions:
            assert _compensation_bytes(pooled[subject_id]) == _compensation_bytes(
                serial_solutions[subject_id]
            )

    def test_chunking_covers_all_inputs(self, workload):
        with SolverPool(n_workers=2, chunk_size=2, dedupe=False) as pool:
            solutions = pool.solve(workload)
        assert list(solutions) == [entry.subject_id for entry in workload]

    def test_timeout_raises_serving_error(self, workload):
        with SolverPool(n_workers=1, timeout=1e-9, dedupe=False) as pool:
            with pytest.raises(ServingError, match="timeout"):
                pool.solve(workload)

    def test_solve_designs_accepts_repeated_requests(self, workload):
        """The server path may batch the same subject twice."""
        repeated = [workload[0], workload[0], workload[1]]
        with SolverPool(n_workers=0) as pool:
            designs, hits = pool.solve_designs(repeated)
        assert len(designs) == 3
        assert designs[0] is designs[1]
        assert hits == [False, False, False]


class TestSolverPoolValidation:
    def test_rejects_negative_workers(self):
        with pytest.raises(ServingError):
            SolverPool(n_workers=-1)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ServingError):
            SolverPool(chunk_size=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ServingError):
            SolverPool(timeout=0.0)

    def test_fingerprint_count_mismatch(self, workload):
        with SolverPool(n_workers=0) as pool:
            with pytest.raises(ServingError):
                pool.solve_designs(workload, fingerprints=["cd1:00"])

    def test_parallel_param_of_solve_subproblems(self, workload, serial_solutions):
        routed = solve_subproblems(workload, mu=1.0, parallel=1)
        for subject_id in serial_solutions:
            assert _compensation_bytes(routed[subject_id]) == _compensation_bytes(
                serial_solutions[subject_id]
            )


class TestWorkload:
    def test_deterministic_under_seed(self):
        a = synthetic_subproblems(n_subjects=10, n_archetypes=3, seed=5)
        b = synthetic_subproblems(n_subjects=10, n_archetypes=3, seed=5)
        assert [s.subject_id for s in a] == [s.subject_id for s in b]
        assert [s.params for s in a] == [s.params for s in b]
        assert [s.effort_function.coefficients() for s in a] == [
            s.effort_function.coefficients() for s in b
        ]

    def test_archetype_count_bounds_unique_fingerprints(self):
        subproblems = synthetic_subproblems(n_subjects=30, n_archetypes=5, seed=2)
        with SolverPool(n_workers=0) as pool:
            unique = set(pool.fingerprints(subproblems))
        assert len(unique) == 5
