"""Tests for the asyncio contract-serving front-end."""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.core import solve_subproblems
from repro.errors import ServingError
from repro.serving import ContractCache, ContractServer
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=18, n_archetypes=4, seed=19)


def _run(coroutine):
    return asyncio.run(coroutine)


class TestServerLifecycle:
    def test_context_manager_starts_and_stops(self, workload):
        async def scenario():
            async with ContractServer() as server:
                assert server.running
                result = await server.submit(workload[0])
            assert not server.running
            return result

        result = _run(scenario())
        assert result.hired

    def test_start_is_idempotent(self):
        async def scenario():
            server = ContractServer()
            await server.start()
            batcher = server._batcher
            await server.start()
            assert server._batcher is batcher
            await server.stop()

        _run(scenario())

    def test_stop_fails_queued_requests(self, workload):
        async def scenario():
            server = ContractServer()
            # Never started: the request stays queued until stop().
            future = await server.enqueue(workload[0])
            await server.stop()
            with pytest.raises(ServingError):
                await future

        _run(scenario())


class TestStopDrain:
    def test_stop_drains_in_flight_batch(self, workload):
        """Requests the solver already started resolve through stop()."""

        async def scenario():
            server = ContractServer(batch_window=0.0)
            await server.start()
            futures = [await server.enqueue(entry) for entry in workload[:4]]
            # Let the batcher collect the batch and hand it to the pool.
            await asyncio.sleep(0.01)
            await server.stop(drain=30.0)
            return [await future for future in futures]

        results = _run(scenario())
        assert len(results) == 4
        assert all(result.hired for result in results)

    def test_drain_deadline_fails_in_flight_batch(self, workload):
        """A batch slower than the deadline fails with a clear error."""

        async def scenario():
            server = ContractServer(batch_window=0.0)
            original = server.pool.solve_designs

            def slow_solve(subproblems, fingerprints=None):
                import time as _time

                _time.sleep(0.4)
                return original(subproblems, fingerprints)

            server.pool.solve_designs = slow_solve
            await server.start()
            future = await server.enqueue(workload[0])
            await asyncio.sleep(0.01)  # batch is now in flight
            await server.stop(drain=0.05)
            with pytest.raises(ServingError, match="drain deadline"):
                await future

        _run(scenario())

    def test_zero_drain_fails_in_flight_batch(self, workload):
        async def scenario():
            server = ContractServer(batch_window=0.0)
            original = server.pool.solve_designs

            def slow_solve(subproblems, fingerprints=None):
                import time as _time

                _time.sleep(0.4)
                return original(subproblems, fingerprints)

            server.pool.solve_designs = slow_solve
            await server.start()
            future = await server.enqueue(workload[0])
            await asyncio.sleep(0.01)
            await server.stop(drain=None)
            with pytest.raises(ServingError):
                await future

        _run(scenario())


class TestServerSolving:
    def test_population_matches_serial(self, workload):
        serial = solve_subproblems(workload, mu=1.0)

        async def scenario():
            async with ContractServer() as server:
                return await server.solve_population(workload)

        served = _run(scenario())
        assert list(served) == list(serial)
        for subject_id in serial:
            assert pickle.dumps(
                served[subject_id].result.contract.compensations
            ) == pickle.dumps(serial[subject_id].result.contract.compensations)

    def test_batches_dedup_by_fingerprint(self, workload):
        async def scenario():
            async with ContractServer(max_batch=len(workload)) as server:
                await server.solve_population(workload)
                return server.stats

        stats = _run(scenario())
        assert stats.requests == len(workload)
        # One big batch over 4 archetypes: far fewer solves than requests.
        assert stats.unique_solves < stats.requests

    def test_cache_shared_across_rounds(self, workload):
        async def scenario():
            cache = ContractCache()
            async with ContractServer(cache=cache) as server:
                await server.solve_population(workload)
                await server.solve_population(workload)
                return server.stats

        stats = _run(scenario())
        assert stats.cache_hits > 0
        assert stats.hit_rate > 0.0

    def test_stream_yields_every_subject(self, workload):
        async def scenario():
            seen = {}
            async with ContractServer() as server:
                async for subject_id, design in server.stream(workload):
                    seen[subject_id] = design
            return seen

        seen = _run(scenario())
        assert set(seen) == {entry.subject_id for entry in workload}

    def test_request_latencies_recorded(self, workload):
        async def scenario():
            async with ContractServer() as server:
                await server.solve_population(workload)
                return server.stats

        stats = _run(scenario())
        assert len(stats.request_latencies) == len(workload)
        assert all(latency >= 0.0 for latency in stats.request_latencies)


class TestBackpressure:
    def test_enqueue_suspends_when_queue_full(self, workload):
        async def scenario():
            server = ContractServer(max_pending=2)
            # Batcher not started: nothing drains the queue.
            queued = [
                await server.enqueue(workload[0]),
                await server.enqueue(workload[1]),
            ]
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(server.enqueue(workload[2]), timeout=0.05)
            await server.stop()
            for future in queued:
                with pytest.raises(ServingError):
                    await future

        _run(scenario())

    def test_max_batch_bounds_each_batch(self, workload):
        async def scenario():
            async with ContractServer(max_batch=5) as server:
                await server.solve_population(workload)
                return server.stats

        stats = _run(scenario())
        assert stats.batches >= len(workload) // 5


class TestServerValidation:
    def test_rejects_bad_limits(self):
        with pytest.raises(ServingError):
            ContractServer(max_pending=0)
        with pytest.raises(ServingError):
            ContractServer(max_batch=0)
        with pytest.raises(ServingError):
            ContractServer(batch_window=-1.0)
