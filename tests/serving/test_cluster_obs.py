"""Cross-process observability acceptance tests for the shard cluster.

The tentpole guarantees of the cluster observability layer:

* one ``/solve_batch`` through the HTTP front end yields ONE trace
  tree spanning three processes — the HTTP request span parents the
  router's dispatch span, which parents each shard's
  ``serving.solve_batch`` span — all sharing one ``trace_id`` in the
  merged JSONL dump;
* ``obs_scrape`` federates every shard's metrics into counters whose
  per-shard values sum to the router totals.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.obs.export import read_jsonl, render_report, write_jsonl
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    SpanContext,
    Tracer,
    format_traceparent,
    get_tracer,
    set_tracer,
)
from repro.serving import HTTPServerThread, ShardRouter
from repro.serving.cluster.codec import subproblem_to_json
from repro.serving.workload import synthetic_subproblems


@pytest.fixture()
def traced_tracer():
    """Install an enabled global tracer (shards inherit obs on spawn)."""
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@pytest.fixture()
def workload():
    return synthetic_subproblems(n_subjects=10, n_archetypes=4, seed=91)


def _post_batch(address, workload, headers=None):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = json.dumps(
            {"subproblems": [subproblem_to_json(s) for s in workload]}
        )
        conn.request("POST", "/solve_batch", body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _by_name(records, name):
    return [r for r in records if r.get("name") == name]


class TestCrossProcessTrace:
    def test_solve_batch_produces_one_merged_trace_tree(
        self, traced_tracer, workload, tmp_path
    ):
        """HTTP span -> router dispatch span -> shard solve span, one trace."""
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                status, _ = _post_batch(thread.address, workload)
                assert status == 200
                scrape = router.obs_scrape(include_spans=True)

        dump = tmp_path / "cluster-trace.jsonl"
        write_jsonl(
            dump, tracer=traced_tracer, extra_records=scrape.span_records()
        )
        records = [r for r in read_jsonl(dump) if r.get("kind") == "span"]

        (http_span,) = _by_name(records, "cluster.http_request")
        (batch_span,) = _by_name(records, "cluster.solve_batch")
        group_spans = _by_name(records, "cluster.solve_group")
        shard_spans = [
            r
            for r in _by_name(records, "serving.solve_batch")
            if r.get("source", "").startswith("shard-")
        ]
        assert group_spans
        assert shard_spans

        # Forked shards must reseed their tracer id prefix: ids unique
        # across processes, or the merged tree silently corrupts.
        span_ids = [r["span_id"] for r in records]
        assert len(span_ids) == len(set(span_ids))

        # One trace: every span in the chain shares the HTTP trace id.
        trace_id = http_span["trace_id"]
        assert batch_span["trace_id"] == trace_id
        for span in group_spans + shard_spans:
            assert span["trace_id"] == trace_id

        # Parent/child ids link the processes into one tree.
        assert http_span["parent_id"] is None
        assert batch_span["parent_id"] == http_span["span_id"]
        group_ids = {s["span_id"] for s in group_spans}
        for span in group_spans:
            assert span["parent_id"] == batch_span["span_id"]
        for span in shard_spans:
            assert span["parent_id"] in group_ids

        # The report renderer agrees: one root, shard spans not detached.
        report = render_report(records)
        assert "<detached>" not in report
        assert "cluster.http_request" in report.splitlines()[1]

    def test_client_traceparent_header_is_adopted(
        self, traced_tracer, workload
    ):
        """A caller-supplied traceparent becomes the trace root."""
        remote = SpanContext(trace_id="ab" * 16, span_id="0caffe-000000000001")
        headers = {
            "Content-Type": "application/json",
            TRACEPARENT_HEADER: format_traceparent(remote),
        }
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                status, _ = _post_batch(thread.address, workload, headers)
                assert status == 200
        (http_span,) = [
            s for s in traced_tracer.spans() if s.name == "cluster.http_request"
        ]
        assert http_span.trace_id == remote.trace_id
        assert http_span.parent_id == remote.span_id

    def test_disabled_tracer_ships_no_propagation(self, workload):
        """With obs off the pipe meta stays None and no spans record."""
        assert not get_tracer().enabled
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            designs, _ = router.solve_designs(workload)
            assert len(designs) == len(workload)
            scrape = router.obs_scrape(include_spans=True)
        assert scrape.span_records() == []
        assert get_tracer().spans() == ()


class TestClusterScrapeFederation:
    def test_shard_counters_sum_to_router_totals(self, workload):
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            for _ in range(3):
                router.solve_designs(workload)
            scrape = router.obs_scrape()

            assert scrape.sources() == ("router", "shard-0", "shard-1")
            shard_requests = {
                source: value
                for source, value in scrape.shard_values(
                    "serving.requests"
                ).items()
            }
            assert sum(shard_requests.values()) == 3 * len(workload)
            assert scrape.value("serving.requests") == 3 * len(workload)
            # No fallbacks: routed batches all landed on shards.
            assert scrape.value("cluster.local_fallbacks") == 0.0
            assert scrape.value("serving.batches") == scrape.value(
                "cluster.routed"
            )
            assert scrape.value("cluster.requests") == 3 * len(workload)

    def test_repeated_scrapes_drain_spans_but_keep_metrics(self, traced_tracer):
        workload = synthetic_subproblems(n_subjects=6, n_archetypes=3, seed=5)
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            router.solve_designs(workload)
            first = router.obs_scrape(include_spans=True)
            second = router.obs_scrape(include_spans=True)
        shard_spans = [
            r for r in first.span_records() if r["source"].startswith("shard-")
        ]
        assert shard_spans
        # Drained: the second scrape ships no duplicate shard spans.
        assert [
            r for r in second.span_records() if r["source"].startswith("shard-")
        ] == []
        # Metrics are cumulative, not drained.
        assert second.value("serving.requests") == first.value(
            "serving.requests"
        )
