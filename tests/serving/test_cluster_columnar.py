"""Columnar wire format for the cluster tier: frame codec, shard op, HTTP.

A solve batch of n subjects collapsing onto K archetypes used to cross
the shard pipe (and the HTTP hop) as n pickled `Subproblem` objects;
the columnar frame ships a (K, 7) float table plus an (n,) int64 code
vector instead.  These tests pin the properties the engine relies on:
the frame round-trips bit-exactly (including through JSON), the shard
solves the frame's OWN fingerprints (cache keys identical to the object
wire format), results fan back out in request order, and the serving
counters keep meaning "subjects served" regardless of wire format.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import solve_subproblems
from repro.errors import ServingError
from repro.serving import (
    HTTPServerThread,
    ShardProcess,
    ShardRouter,
    ShardSpec,
)
from repro.serving.cluster.codec import (
    columnar_frame,
    expand_frame_results,
    frame_from_json,
    frame_to_json,
    subproblems_from_frame,
)
from repro.serving.fingerprint import subproblem_fingerprint
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=30, n_archetypes=6, seed=23)


@pytest.fixture(scope="module")
def fingerprints(workload):
    return [subproblem_fingerprint(subproblem) for subproblem in workload]


@pytest.fixture(scope="module")
def frame(workload, fingerprints):
    return columnar_frame(workload, fingerprints)


class TestFrameCodec:
    def test_frame_is_archetype_sized(self, workload, fingerprints, frame):
        n_unique = len(set(fingerprints))
        assert frame["table"].shape == (n_unique, 7)
        assert frame["worker_types"].shape == (n_unique,)
        assert len(frame["subject_ids"]) == n_unique
        assert len(frame["fingerprints"]) == n_unique
        assert frame["codes"].shape == (len(workload),)
        assert frame["codes"].max() == n_unique - 1

    def test_codes_point_at_matching_archetypes(
        self, workload, fingerprints, frame
    ):
        for index, fingerprint in enumerate(fingerprints):
            slot = int(frame["codes"][index])
            assert frame["fingerprints"][slot] == fingerprint

    def test_representatives_solve_bit_identically(self, workload, frame):
        """The K rebuilt archetypes produce the same contracts as the n
        original objects — fingerprints are carried, never recomputed,
        and member_ids are excluded from the solve."""
        representatives, rep_fingerprints = subproblems_from_frame(frame)
        assert rep_fingerprints == list(frame["fingerprints"])
        serial = solve_subproblems(workload, mu=1.0)
        rep_serial = solve_subproblems(representatives, mu=1.0)
        for index, subproblem in enumerate(workload):
            slot = int(frame["codes"][index])
            rebuilt = representatives[slot]
            assert pickle.dumps(
                rep_serial[rebuilt.subject_id].result.contract.compensations
            ) == pickle.dumps(
                serial[subproblem.subject_id].result.contract.compensations
            )

    def test_expand_restores_request_order(self, workload, frame):
        designs = [f"design-{slot}" for slot in range(len(frame["fingerprints"]))]
        hits = [slot % 2 == 0 for slot in range(len(designs))]
        fanned_designs, fanned_hits = expand_frame_results(frame, designs, hits)
        assert len(fanned_designs) == len(workload)
        for index in range(len(workload)):
            slot = int(frame["codes"][index])
            assert fanned_designs[index] == designs[slot]
            assert fanned_hits[index] == hits[slot]

    def test_json_round_trip_is_exact(self, frame):
        rebuilt = frame_from_json(frame_to_json(frame))
        assert np.array_equal(rebuilt["table"], frame["table"])
        assert rebuilt["table"].tobytes() == frame["table"].tobytes()
        assert np.array_equal(rebuilt["worker_types"], frame["worker_types"])
        assert np.array_equal(rebuilt["codes"], frame["codes"])
        assert tuple(rebuilt["subject_ids"]) == tuple(frame["subject_ids"])
        assert tuple(rebuilt["fingerprints"]) == tuple(frame["fingerprints"])

    def test_max_effort_survives_round_trip(self, workload):
        """A finite cap round-trips bit-exactly; `None` rides the -1.0
        wire sentinel (caps are strictly positive) and comes back None."""
        from dataclasses import replace

        capped = workload[0]
        assert capped.max_effort is not None
        uncapped = replace(workload[1], max_effort=None)
        frame = columnar_frame([capped, uncapped], ["fp0", "fp1"])
        representatives, _ = subproblems_from_frame(
            frame_from_json(frame_to_json(frame))
        )
        assert representatives[0].max_effort == capped.max_effort
        assert representatives[1].max_effort is None

    def test_length_mismatch_raises(self, workload):
        with pytest.raises(ServingError, match="one fingerprint per"):
            columnar_frame(workload, ["fp0"])

    def test_malformed_frames_raise(self, frame):
        bad_table = dict(frame)
        bad_table["table"] = frame["table"][:, :5]
        with pytest.raises(ServingError):
            subproblems_from_frame(bad_table)
        bad_codes = dict(frame)
        bad_codes["codes"] = frame["codes"] + len(frame["fingerprints"])
        with pytest.raises(ServingError):
            subproblems_from_frame(bad_codes)
        negative_codes = dict(frame)
        negative_codes["codes"] = frame["codes"] - 1 - frame["codes"].max()
        with pytest.raises(ServingError):
            subproblems_from_frame(negative_codes)
        bad_types = dict(frame)
        bad_types["worker_types"] = frame["worker_types"] + 99
        with pytest.raises(ServingError):
            subproblems_from_frame(bad_types)

    def test_empty_frame_round_trips(self):
        frame = columnar_frame([], [])
        assert frame["table"].shape == (0, 7)
        rebuilt = frame_from_json(frame_to_json(frame))
        assert rebuilt["table"].shape == (0, 7)
        representatives, rep_fingerprints = subproblems_from_frame(rebuilt)
        assert representatives == [] and rep_fingerprints == []


class TestShardColumnarOp:
    def test_solve_columnar_matches_object_op(self, workload, fingerprints):
        frame = columnar_frame(workload, fingerprints)
        object_shard = ShardProcess(ShardSpec(shard_id="obj"))
        frame_shard = ShardProcess(ShardSpec(shard_id="col"))
        object_shard.start()
        frame_shard.start()
        try:
            designs, hits = object_shard.solve(workload, fingerprints)
            rep_designs, rep_hits = frame_shard.solve_columnar(frame)
            assert len(rep_designs) == len(frame["fingerprints"])
            assert not any(rep_hits)
            fanned, fanned_hits = expand_frame_results(
                frame, rep_designs, rep_hits
            )
            for object_design, frame_design in zip(designs, fanned):
                assert pickle.dumps(
                    object_design.contract.compensations
                ) == pickle.dumps(frame_design.contract.compensations)
            # Same fingerprints were cached: a repeat frame is all hits.
            _, warm_hits = frame_shard.solve_columnar(frame)
            assert all(warm_hits)
        finally:
            object_shard.stop()
            frame_shard.stop()

    def test_requests_counter_means_subjects_served(
        self, workload, fingerprints
    ):
        """The shard books n requests for an n-subject frame even though
        it only solved K archetypes — `requests` stays comparable across
        wire formats (and across the cluster aggregation)."""
        frame = columnar_frame(workload, fingerprints)
        shard = ShardProcess(ShardSpec(shard_id="s0"))
        shard.start()
        try:
            shard.solve_columnar(frame)
            snapshot = shard.stats_snapshot()
            assert snapshot["requests"] == float(len(workload))
            assert snapshot["unique_solves"] == float(
                len(frame["fingerprints"])
            )
            shard.solve_columnar(frame)
            snapshot = shard.stats_snapshot()
            assert snapshot["requests"] == 2.0 * len(workload)
            assert snapshot["cache_hits"] == float(len(frame["fingerprints"]))
        finally:
            shard.stop()


class TestRouterColumnarPath:
    def test_router_matches_serial_through_frames(self, workload):
        """`solve_designs` now ships frames to the shards internally;
        results must stay bit-identical to the serial solver and to the
        pre-frame wire format's semantics (order, hit flags)."""
        serial = solve_subproblems(workload, mu=1.0)
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            designs, hits = router.solve_designs(workload)
            assert not any(hits)
            for subproblem, design in zip(workload, designs):
                assert pickle.dumps(
                    design.contract.compensations
                ) == pickle.dumps(
                    serial[subproblem.subject_id].result.contract.compensations
                )
            _, warm_hits = router.solve_designs(workload)
            assert all(warm_hits)
            snapshot = router.stats_snapshot()
            assert snapshot["totals"]["requests"] == 2.0 * len(workload)


class TestHTTPColumnar:
    @pytest.fixture(scope="class")
    def endpoint(self):
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                yield thread.address

    def _post(self, endpoint, payload):
        import http.client
        import json

        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request("POST", "/solve_batch", body=json.dumps(payload))
            response = conn.getresponse()
            return response.status, json.loads(
                response.read().decode("utf-8")
            )
        finally:
            conn.close()

    def test_columnar_batch_matches_serial(
        self, endpoint, workload, fingerprints, frame
    ):
        serial = solve_subproblems(workload, mu=1.0)
        status, payload = self._post(
            endpoint, {"columnar": frame_to_json(frame)}
        )
        assert status == 200
        assert payload["columnar"] is True
        designs = payload["designs"]
        assert len(designs) == len(frame["fingerprints"])
        assert payload["codes"] == frame["codes"].tolist()
        for index, subproblem in enumerate(workload):
            slot = int(frame["codes"][index])
            assert pickle.dumps(
                designs[slot]["compensations"]
            ) == pickle.dumps(
                list(
                    serial[
                        subproblem.subject_id
                    ].result.contract.compensations
                )
            )
        status, payload = self._post(
            endpoint, {"columnar": frame_to_json(frame)}
        )
        assert all(design["cache_hit"] for design in payload["designs"])

    def test_malformed_columnar_frame_is_400(self, endpoint):
        status, payload = self._post(endpoint, {"columnar": {"table": []}})
        assert status == 400
        assert "error" in payload
