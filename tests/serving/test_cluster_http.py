"""Tests for the cluster HTTP/JSON front end (stdlib client, real sockets)."""

from __future__ import annotations

import http.client
import json
import pickle

import pytest

from repro.core import solve_subproblems
from repro.serving import HTTPServerThread, ShardRouter
from repro.serving.cluster.codec import (
    design_to_json,
    subproblem_from_json,
    subproblem_to_json,
)
from repro.serving.fingerprint import subproblem_fingerprint
from repro.errors import ServingError
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=12, n_archetypes=4, seed=31)


@pytest.fixture(scope="module")
def endpoint(workload):
    with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
        with HTTPServerThread(router) as thread:
            yield thread.address


def _call(endpoint, method, path, payload=None):
    host, port = endpoint
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


class TestCodec:
    def test_round_trip_preserves_fingerprint(self, workload):
        for subproblem in workload:
            rebuilt = subproblem_from_json(subproblem_to_json(subproblem))
            assert subproblem_fingerprint(rebuilt) == subproblem_fingerprint(
                subproblem
            )

    def test_json_round_trip_preserves_float_bytes(self, workload):
        encoded = json.loads(json.dumps(subproblem_to_json(workload[0])))
        rebuilt = subproblem_from_json(encoded)
        assert rebuilt.params.beta == workload[0].params.beta
        assert rebuilt.effort_function.coefficients() == (
            workload[0].effort_function.coefficients()
        )

    def test_malformed_payload_raises_serving_error(self):
        with pytest.raises(ServingError):
            subproblem_from_json({"subject_id": "w0"})  # no effort fields
        with pytest.raises(ServingError):
            subproblem_from_json(
                {"subject_id": "w0", "r2": -0.5, "r1": 8.0, "worker_type": "nope"}
            )

    def test_design_encoding_fields(self, workload):
        solution = solve_subproblems(workload[:1], mu=1.0)
        result = next(iter(solution.values())).result
        payload = design_to_json("w0", result, fingerprint="fp", cache_hit=True)
        assert payload["subject_id"] == "w0"
        assert payload["fingerprint"] == "fp"
        assert payload["cache_hit"] is True
        assert isinstance(payload["compensations"], list)


class TestEndpoints:
    def test_healthz(self, endpoint):
        status, payload = _call(endpoint, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["n_healthy"] == 2

    def test_stats(self, endpoint):
        status, payload = _call(endpoint, "GET", "/stats")
        assert status == 200
        assert "router" in payload and "shards" in payload

    def test_solve_matches_serial_bit_for_bit(self, endpoint, workload):
        serial = solve_subproblems(workload[:1], mu=1.0)
        expected = next(iter(serial.values())).result
        status, payload = _call(
            endpoint, "POST", "/solve", subproblem_to_json(workload[0])
        )
        assert status == 200
        assert payload["subject_id"] == workload[0].subject_id
        # JSON repr-floats round-trip doubles exactly: bit-identical.
        assert pickle.dumps(payload["compensations"]) == pickle.dumps(
            list(expected.contract.compensations)
        )

    def test_solve_batch_preserves_order_and_reports_hits(
        self, endpoint, workload
    ):
        body = {"subproblems": [subproblem_to_json(s) for s in workload]}
        status, payload = _call(endpoint, "POST", "/solve_batch", body)
        assert status == 200
        designs = payload["designs"]
        assert [d["subject_id"] for d in designs] == [
            s.subject_id for s in workload
        ]
        status, payload = _call(endpoint, "POST", "/solve_batch", body)
        assert all(d["cache_hit"] for d in payload["designs"])

    def test_bad_json_is_400(self, endpoint):
        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request("POST", "/solve", body="{not json")
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_missing_fields_is_400(self, endpoint):
        status, payload = _call(endpoint, "POST", "/solve", {"subject_id": "x"})
        assert status == 400
        assert "error" in payload

    def test_unknown_path_is_404(self, endpoint):
        status, _ = _call(endpoint, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, endpoint):
        status, _ = _call(endpoint, "POST", "/healthz", {})
        assert status == 405
        status, _ = _call(endpoint, "GET", "/solve")
        assert status == 405

    def test_keep_alive_serves_multiple_requests(self, endpoint, workload):
        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            for _ in range(3):
                conn.request(
                    "POST", "/solve", body=json.dumps(subproblem_to_json(workload[0]))
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_degraded_healthz_is_503(self, workload):
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                router.kill_shard(router.shard_ids[0])
                status, payload = _call(thread.address, "GET", "/healthz")
                assert status == 503
                assert payload["status"] == "degraded"
