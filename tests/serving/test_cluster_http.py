"""Tests for the cluster HTTP/JSON front end (stdlib client, real sockets)."""

from __future__ import annotations

import http.client
import json
import pickle

import pytest

from repro.core import solve_subproblems
from repro.serving import HTTPServerThread, ShardRouter
from repro.serving.cluster.codec import (
    design_to_json,
    subproblem_from_json,
    subproblem_to_json,
)
from repro.serving.fingerprint import subproblem_fingerprint
from repro.errors import ServingError
from repro.serving.workload import synthetic_subproblems


@pytest.fixture(scope="module")
def workload():
    return synthetic_subproblems(n_subjects=12, n_archetypes=4, seed=31)


@pytest.fixture(scope="module")
def endpoint(workload):
    with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
        with HTTPServerThread(router) as thread:
            yield thread.address


def _call(endpoint, method, path, payload=None):
    host, port = endpoint
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _call_text(endpoint, method, path):
    """Raw-text variant of _call for the Prometheus exposition."""
    host, port = endpoint
    conn = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


def _prometheus_samples(text):
    """``{sample_name_with_labels: value}`` from exposition text."""
    samples = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


class TestCodec:
    def test_round_trip_preserves_fingerprint(self, workload):
        for subproblem in workload:
            rebuilt = subproblem_from_json(subproblem_to_json(subproblem))
            assert subproblem_fingerprint(rebuilt) == subproblem_fingerprint(
                subproblem
            )

    def test_json_round_trip_preserves_float_bytes(self, workload):
        encoded = json.loads(json.dumps(subproblem_to_json(workload[0])))
        rebuilt = subproblem_from_json(encoded)
        assert rebuilt.params.beta == workload[0].params.beta
        assert rebuilt.effort_function.coefficients() == (
            workload[0].effort_function.coefficients()
        )

    def test_malformed_payload_raises_serving_error(self):
        with pytest.raises(ServingError):
            subproblem_from_json({"subject_id": "w0"})  # no effort fields
        with pytest.raises(ServingError):
            subproblem_from_json(
                {"subject_id": "w0", "r2": -0.5, "r1": 8.0, "worker_type": "nope"}
            )

    def test_design_encoding_fields(self, workload):
        solution = solve_subproblems(workload[:1], mu=1.0)
        result = next(iter(solution.values())).result
        payload = design_to_json("w0", result, fingerprint="fp", cache_hit=True)
        assert payload["subject_id"] == "w0"
        assert payload["fingerprint"] == "fp"
        assert payload["cache_hit"] is True
        assert isinstance(payload["compensations"], list)


class TestEndpoints:
    def test_healthz(self, endpoint):
        status, payload = _call(endpoint, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["n_healthy"] == 2

    def test_stats(self, endpoint):
        status, payload = _call(endpoint, "GET", "/stats")
        assert status == 200
        assert "router" in payload and "shards" in payload

    def test_solve_matches_serial_bit_for_bit(self, endpoint, workload):
        serial = solve_subproblems(workload[:1], mu=1.0)
        expected = next(iter(serial.values())).result
        status, payload = _call(
            endpoint, "POST", "/solve", subproblem_to_json(workload[0])
        )
        assert status == 200
        assert payload["subject_id"] == workload[0].subject_id
        # JSON repr-floats round-trip doubles exactly: bit-identical.
        assert pickle.dumps(payload["compensations"]) == pickle.dumps(
            list(expected.contract.compensations)
        )

    def test_solve_batch_preserves_order_and_reports_hits(
        self, endpoint, workload
    ):
        body = {"subproblems": [subproblem_to_json(s) for s in workload]}
        status, payload = _call(endpoint, "POST", "/solve_batch", body)
        assert status == 200
        designs = payload["designs"]
        assert [d["subject_id"] for d in designs] == [
            s.subject_id for s in workload
        ]
        status, payload = _call(endpoint, "POST", "/solve_batch", body)
        assert all(d["cache_hit"] for d in payload["designs"])

    def test_bad_json_is_400(self, endpoint):
        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            conn.request("POST", "/solve", body="{not json")
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_missing_fields_is_400(self, endpoint):
        status, payload = _call(endpoint, "POST", "/solve", {"subject_id": "x"})
        assert status == 400
        assert "error" in payload

    def test_unknown_path_is_404(self, endpoint):
        status, _ = _call(endpoint, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, endpoint):
        status, _ = _call(endpoint, "POST", "/healthz", {})
        assert status == 405
        status, _ = _call(endpoint, "GET", "/solve")
        assert status == 405

    def test_keep_alive_serves_multiple_requests(self, endpoint, workload):
        host, port = endpoint
        conn = http.client.HTTPConnection(host, port, timeout=30.0)
        try:
            for _ in range(3):
                conn.request(
                    "POST", "/solve", body=json.dumps(subproblem_to_json(workload[0]))
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()

    def test_stats_reports_shard_pids_hit_rate_and_totals(
        self, endpoint, workload
    ):
        body = {"subproblems": [subproblem_to_json(s) for s in workload]}
        _call(endpoint, "POST", "/solve_batch", body)
        status, payload = _call(endpoint, "GET", "/stats")
        assert status == 200
        assert payload["shards"]
        for snapshot in payload["shards"].values():
            assert snapshot["pid"] > 0
            assert 0.0 <= snapshot["cache_hit_rate"] <= 1.0
            assert snapshot["restarts"] == 0.0
        totals = payload["totals"]
        assert totals["requests"] == sum(
            s["requests"] for s in payload["shards"].values()
        )
        assert 0.0 <= totals["cache_hit_rate"] <= 1.0

    def test_healthz_reports_restart_counts(self, endpoint):
        status, payload = _call(endpoint, "GET", "/healthz")
        assert status == 200
        for shard in payload["shards"].values():
            assert shard["restarts"] == 0

    def test_degraded_healthz_is_503(self, workload):
        with ShardRouter(n_shards=2, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                router.kill_shard(router.shard_ids[0])
                status, payload = _call(thread.address, "GET", "/healthz")
                assert status == 503
                assert payload["status"] == "degraded"


class TestMetricsEndpoint:
    """ISSUE acceptance: /metrics during a 4-shard load is valid
    Prometheus text whose per-shard counters sum to the router totals."""

    @pytest.fixture(scope="class")
    def loaded_endpoint(self, workload):
        with ShardRouter(n_shards=4, supervise_interval=0.0) as router:
            with HTTPServerThread(router) as thread:
                body = {
                    "subproblems": [subproblem_to_json(s) for s in workload]
                }
                for _ in range(3):
                    status, _ = _call(thread.address, "POST", "/solve_batch", body)
                    assert status == 200
                yield thread.address, len(workload) * 3

    def test_metrics_is_valid_prometheus_text(self, loaded_endpoint):
        from repro.obs.aggregate import validate_prometheus_text

        address, _ = loaded_endpoint
        status, content_type, text = _call_text(address, "GET", "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert validate_prometheus_text(text) == []

    def test_per_shard_counters_sum_to_router_totals(self, loaded_endpoint):
        address, n_requests = loaded_endpoint
        _, _, text = _call_text(address, "GET", "/metrics")
        samples = _prometheus_samples(text)

        shard_requests = {
            name: value
            for name, value in samples.items()
            if name.startswith('repro_serving_requests{shard="shard-')
        }
        assert len(shard_requests) == 4
        # No fallbacks in this run: every request landed on a shard and
        # the labeled per-shard counters sum to both aggregates.
        assert samples["repro_cluster_local_fallbacks"] == 0.0
        assert sum(shard_requests.values()) == samples["repro_cluster_requests"]
        assert samples["repro_cluster_requests"] == float(n_requests)
        assert samples["repro_serving_requests"] == float(n_requests)

        shard_batches = [
            value
            for name, value in samples.items()
            if name.startswith('repro_serving_batches{shard="shard-')
        ]
        assert sum(shard_batches) == samples["repro_cluster_routed"]

    def test_metrics_scrape_is_repeatable(self, loaded_endpoint):
        address, _ = loaded_endpoint
        _, _, first = _call_text(address, "GET", "/metrics")
        _, _, second = _call_text(address, "GET", "/metrics")
        # Metrics are cumulative (scrapes must not drain them).
        assert _prometheus_samples(first)[
            "repro_cluster_requests"
        ] == _prometheus_samples(second)["repro_cluster_requests"]

    def test_metrics_rejects_post(self, loaded_endpoint):
        address, _ = loaded_endpoint
        status, _ = _call(address, "POST", "/metrics", {})
        assert status == 405
