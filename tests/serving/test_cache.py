"""Tests for the bounded LRU contract cache and its invariant."""

from __future__ import annotations

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.core import ContractDesigner, QuadraticEffort
from repro.errors import ServingError
from repro.obs.metrics import MetricsRegistry
from repro.serving import ContractCache, LRUCache
from repro.serving.cache import maybe_verify_cached, require_results_agree
from repro.types import WorkerParameters


@pytest.fixture
def psi():
    return QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)


def _design(psi, feedback_weight=1.0):
    return ContractDesigner(mu=1.0).design(
        psi, WorkerParameters.honest(beta=1.0), feedback_weight=feedback_weight
    )


class TestContractCache:
    def test_roundtrip_and_counters(self, psi):
        cache = ContractCache(capacity=4)
        result = _design(psi)
        assert cache.get_design("cd1:aa") is None
        cache.put_design("cd1:aa", result)
        assert cache.get_design("cd1:aa") is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert "cd1:aa" in cache
        assert len(cache) == 1

    def test_capacity_bound_evicts_lru(self, psi):
        cache = ContractCache(capacity=2)
        result = _design(psi)
        cache.put_design("f1", result)
        cache.put_design("f2", result)
        # Touch f1 so f2 becomes the least recently used entry.
        assert cache.get_design("f1") is result
        cache.put_design("f3", result)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "f2" not in cache
        assert cache.fingerprints() == ("f1", "f3")

    def test_put_refreshes_recency(self, psi):
        cache = ContractCache(capacity=2)
        result = _design(psi)
        cache.put_design("f1", result)
        cache.put_design("f2", result)
        cache.put_design("f1", result)
        cache.put_design("f3", result)
        assert "f1" in cache
        assert "f2" not in cache

    def test_clear_keeps_counters(self, psi):
        cache = ContractCache()
        cache.put_design("f1", _design(psi))
        cache.get_design("f1")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServingError):
            ContractCache(capacity=0)

    def test_stats_snapshot_keys(self):
        snapshot = ContractCache().stats.snapshot()
        assert set(snapshot) == {
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_verifications",
            "cache_hit_rate",
        }


class TestLRUCache:
    """The generic bounded cache underneath ContractCache and the
    designer's candidate-sweep memo."""

    def test_roundtrip_with_tuple_keys(self):
        cache = LRUCache(capacity=4)
        key = ((-0.5, 10.0, 1.0), 1.0, 0.0, 8)
        assert cache.get(key) is None
        cache.put(key, "sweep")
        assert cache.get(key) == "sweep"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.keys() == ("a", "c")
        assert cache.stats.evictions == 1

    def test_eviction_counter_feeds_shared_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("designer.candidate_cache.evictions")
        cache = LRUCache(capacity=1, eviction_counter=counter)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert counter.value == 2
        assert cache.stats.evictions == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServingError):
            LRUCache(capacity=0)


class TestCacheInvariant:
    def test_identical_results_agree(self, psi):
        a = _design(psi)
        b = _design(psi)
        require_results_agree("f", a, b)

    def test_different_results_violate(self, psi):
        a = _design(psi, feedback_weight=1.0)
        b = _design(psi, feedback_weight=5.0)
        with pytest.raises(InvariantViolation):
            require_results_agree("f", a, b)

    def test_maybe_verify_disabled_is_noop(self, psi, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        calls = []

        def fresh_solver():
            calls.append(1)
            return _design(psi, feedback_weight=5.0)

        maybe_verify_cached("f", _design(psi), fresh_solver)
        assert calls == []

    def test_maybe_verify_enabled_resolves_and_checks(self, psi, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        cache = ContractCache()
        maybe_verify_cached(
            "f", _design(psi), lambda: _design(psi), stats=cache.stats
        )
        assert cache.stats.verifications == 1
        with pytest.raises(InvariantViolation):
            maybe_verify_cached(
                "f", _design(psi), lambda: _design(psi, feedback_weight=5.0)
            )
