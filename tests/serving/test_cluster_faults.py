"""Fault-injection acceptance: kill a shard mid-run, lose nothing.

The ISSUE acceptance criterion for the cluster tier: a shard SIGKILLed
in the middle of a replayed workload must not lose a single request
(failover + bounded retry + local fallback), the supervisor must bring
the cluster back to a clean ``/healthz``, and every contract served —
including those served during the outage — must be byte-identical to
serial solving.  The CI ``cluster-smoke`` job runs this module plus the
``repro bench-serve --kill-shard-at`` CLI path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import solve_subproblems
from repro.serving import (
    LoadGenerator,
    ShardRouter,
    router_target,
    synthetic_request_batches,
)
from repro.serving.workload import synthetic_subproblems

_N_SUBJECTS = 48
_N_ARCHETYPES = 16
_N_REQUESTS = 200
_SEED = 41


@pytest.fixture(scope="module")
def population():
    return synthetic_subproblems(
        n_subjects=_N_SUBJECTS, n_archetypes=_N_ARCHETYPES, seed=_SEED
    )


@pytest.fixture(scope="module")
def serial_bytes(population):
    serial = solve_subproblems(population, mu=1.0)
    return {
        subject_id: pickle.dumps(solution.result.contract.compensations)
        for subject_id, solution in serial.items()
    }


def test_shard_kill_mid_run_loses_nothing(population, serial_bytes):
    batches = synthetic_request_batches(
        population, n_requests=_N_REQUESTS, batch_size=4, seed=_SEED
    )
    served = {}

    with ShardRouter(n_shards=2, supervise_interval=0.1) as router:
        victim = router.shard_ids[0]
        target = router_target(router)

        def solve_and_record(batch):
            designs, _ = target(batch)
            for subproblem, design in zip(batch, designs):
                served[subproblem.subject_id] = pickle.dumps(
                    design.contract.compensations
                )
            return designs

        generator = LoadGenerator(solve_and_record, concurrency=4)
        report = generator.run(
            batches,
            checkpoints={_N_REQUESTS // 4: lambda: router.kill_shard(victim)},
        )

        # Zero lost requests: every round-trip completed.
        assert report.errors == 0, report.error_samples
        assert report.requests == _N_REQUESTS

        # The outage was real (the victim owned part of the keyspace)
        # and was absorbed by failover, not by luck.
        assert router.stats.failovers.value >= 1

        # Clean recovery: the supervisor revives the shard and peers
        # re-warm it; poll a few sweeps' worth of time.
        recovered = False
        for _ in range(100):
            router.revive_dead_shards()
            if router.healthz()["status"] == "ok":
                recovered = True
                break
        assert recovered, router.healthz()

        # Byte-identity through the fault: everything served during and
        # after the outage equals the serial design path.
        assert served, "loadgen recorded nothing"
        for subject_id, blob in served.items():
            assert blob == serial_bytes[subject_id], subject_id

        # And the recovered cluster still serves identical bytes.
        designs, _ = router.solve_designs(population)
        for subproblem, design in zip(population, designs):
            assert (
                pickle.dumps(design.contract.compensations)
                == serial_bytes[subproblem.subject_id]
            )


def test_graceful_resize_under_load_is_lossless(population, serial_bytes):
    """Add then remove a shard while traffic flows; nothing breaks."""
    batches = synthetic_request_batches(
        population, n_requests=120, batch_size=4, seed=_SEED + 1
    )
    with ShardRouter(n_shards=2, supervise_interval=0.1) as router:
        generator = LoadGenerator(router_target(router), concurrency=3)
        joined = {}
        report = generator.run(
            batches,
            checkpoints={
                30: lambda: joined.setdefault("id", router.add_shard()),
                80: lambda: router.remove_shard(joined["id"]),
            },
        )
        assert report.errors == 0, report.error_samples
        assert report.requests == 120
        assert router.healthz()["status"] == "ok"
        designs, _ = router.solve_designs(population)
        for subproblem, design in zip(population, designs):
            assert (
                pickle.dumps(design.contract.compensations)
                == serial_bytes[subproblem.subject_id]
            )
