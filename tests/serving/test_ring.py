"""Tests for the consistent-hash ring (stability, balance, ~1/N moves)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServingError
from repro.serving.cluster.ring import DEFAULT_REPLICAS, HashRing


def _keys(n):
    return [f"cd1:{index:06d}" for index in range(n)]


class TestMembership:
    def test_add_remove_and_contains(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        ring.add("c")
        assert ring.shard_ids == ("a", "b", "c")
        ring.remove("b")
        assert ring.shard_ids == ("a", "c")

    def test_rejects_duplicates_empty_ids_and_unknown_removes(self):
        ring = HashRing(["a"])
        with pytest.raises(ServingError):
            ring.add("a")
        with pytest.raises(ServingError):
            ring.add("")
        with pytest.raises(ServingError):
            ring.remove("zz")
        with pytest.raises(ServingError):
            HashRing(replicas=0)

    def test_empty_ring_cannot_assign(self):
        with pytest.raises(ServingError):
            HashRing().assign("k")


class TestAssignment:
    def test_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # order-independent
        for key in _keys(200):
            assert first.assign(key) == second.assign(key)

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(["a", "b", "c"])
        for key in _keys(50):
            chain = ring.preference(key)
            assert chain[0] == ring.assign(key)
            assert sorted(chain) == ["a", "b", "c"]
            assert ring.preference(key, 2) == chain[:2]

    def test_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        counts = {sid: 0 for sid in ring.shard_ids}
        n = 4000
        for key, owner in ring.assignments(_keys(n)).items():
            counts[owner] += 1
        for owner, count in counts.items():
            # Each of 4 shards should see its fair share within 2x.
            assert n / 8 <= count <= n / 2, (owner, counts)


class TestResizeMovesOnlyASliver:
    """The consistent-hashing contract: resizes move ~1/N of keys."""

    @given(
        n_shards=st.integers(min_value=1, max_value=8),
        n_keys=st.integers(min_value=100, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_add_moves_only_keys_onto_the_new_shard(
        self, n_shards, n_keys, seed
    ):
        ring = HashRing([f"s{i}" for i in range(n_shards)])
        keys = [f"cd1:{seed}:{index}" for index in range(n_keys)]
        before = ring.assignments(keys)
        ring.add("joiner")
        after = ring.assignments(keys)
        moved = [key for key in keys if before[key] != after[key]]
        # Exact property: every moved key lands on the joining shard.
        assert all(after[key] == "joiner" for key in moved)
        # Statistical property: the moved fraction is ~1/(N+1), far from
        # the ~N/(N+1) a mod-N scheme would reshuffle.  Slack covers
        # virtual-node variance at small replica counts.
        expected = 1.0 / (n_shards + 1)
        assert len(moved) / n_keys <= 2.5 * expected + 0.05

    @given(
        n_shards=st.integers(min_value=2, max_value=8),
        n_keys=st.integers(min_value=100, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_remove_only_moves_the_leavers_keys(self, n_shards, n_keys, seed):
        shard_ids = [f"s{i}" for i in range(n_shards)]
        ring = HashRing(shard_ids)
        keys = [f"cd1:{seed}:{index}" for index in range(n_keys)]
        before = ring.assignments(keys)
        leaver = shard_ids[seed % n_shards]
        ring.remove(leaver)
        after = ring.assignments(keys)
        # Exact property: keys not owned by the leaver keep their owner.
        for key in keys:
            if before[key] != leaver:
                assert after[key] == before[key]
            else:
                assert after[key] != leaver

    def test_add_then_remove_restores_assignments(self):
        ring = HashRing(["a", "b", "c"], replicas=DEFAULT_REPLICAS)
        keys = _keys(300)
        before = ring.assignments(keys)
        ring.add("d")
        ring.remove("d")
        assert ring.assignments(keys) == before
