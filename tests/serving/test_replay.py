"""Tests for ledger provenance and replay verification."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ServingError
from repro.experiments.common import build_context
from repro.experiments.config import ExperimentConfig
from repro.serving import ContractCache
from repro.serving.replay import verify_ledger, verify_round
from repro.simulation.engine import MarketplaceSimulation
from repro.simulation.policies import DynamicContractPolicy, ExclusionPolicy


@pytest.fixture(scope="module")
def context():
    return build_context(ExperimentConfig.small(seed=7))


@pytest.fixture(scope="module")
def population(context):
    return context.population(honest_sample=20)


def _run_simulation(context, population, policy, n_rounds=3):
    simulation = MarketplaceSimulation(
        population, context.objective(), policy, seed=3
    )
    try:
        return simulation.run(n_rounds)
    finally:
        if isinstance(policy, DynamicContractPolicy):
            policy.close()


class TestLedgerProvenance:
    def test_serving_policy_records_fingerprints(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy)
        for record in ledger.records:
            for outcome in record.outcomes.values():
                if outcome.excluded:
                    continue
                assert outcome.fingerprint is not None
                assert outcome.fingerprint.startswith("cd1:")
                assert outcome.cache_hit is not None

    def test_serial_policy_records_no_provenance(self, context, population):
        policy = DynamicContractPolicy(mu=context.config.mu_default)
        ledger = _run_simulation(context, population, policy)
        outcomes = [
            outcome
            for record in ledger.records
            for outcome in record.outcomes.values()
        ]
        assert all(outcome.fingerprint is None for outcome in outcomes)
        assert ledger.cache_hit_rate() is None

    def test_cache_hit_rate_reflects_warm_rounds(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy, n_rounds=4)
        # Round 0 misses, rounds 1-3 are pure re-posts: 3/4 hits.
        assert ledger.cache_hit_rate() == pytest.approx(0.75)

    def test_exclusion_policy_delegates_provenance(self, context, population):
        inner = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        policy = ExclusionPolicy(inner=inner)
        ledger = _run_simulation(context, population, policy)
        served = [
            outcome
            for record in ledger.records
            for outcome in record.outcomes.values()
            if not outcome.excluded
        ]
        inner.close()
        assert served
        assert all(outcome.fingerprint is not None for outcome in served)


class TestReplayVerification:
    def test_ledger_replays_clean(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy)
        verified = verify_ledger(
            ledger, population.subproblems, mu=context.config.mu_default
        )
        assert verified > 0

    def test_round_subset_selection(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy, n_rounds=3)
        per_round = verify_round(
            ledger.records[1], population.subproblems, mu=context.config.mu_default
        )
        subset = verify_ledger(
            ledger,
            population.subproblems,
            mu=context.config.mu_default,
            rounds=[1],
        )
        assert subset == per_round

    def test_tampered_compensation_is_detected(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy, n_rounds=1)
        record = ledger.records[0]
        victim = next(
            outcome
            for outcome in record.outcomes.values()
            if not outcome.excluded and outcome.fingerprint is not None
        )
        forged = dataclasses.replace(victim, compensation=victim.compensation + 1.0)
        tampered = dataclasses.replace(
            record, outcomes={**record.outcomes, victim.subject_id: forged}
        )
        with pytest.raises(ServingError, match="paid"):
            verify_round(
                tampered, population.subproblems, mu=context.config.mu_default
            )

    def test_tampered_fingerprint_is_detected(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy, n_rounds=1)
        record = ledger.records[0]
        victim = next(
            outcome
            for outcome in record.outcomes.values()
            if not outcome.excluded and outcome.fingerprint is not None
        )
        forged = dataclasses.replace(victim, fingerprint="cd1:0000000000000000")
        tampered = dataclasses.replace(
            record, outcomes={**record.outcomes, victim.subject_id: forged}
        )
        with pytest.raises(ServingError, match="fingerprint"):
            verify_round(
                tampered, population.subproblems, mu=context.config.mu_default
            )

    def test_unknown_subject_is_detected(self, context, population):
        policy = DynamicContractPolicy(
            mu=context.config.mu_default, cache=ContractCache()
        )
        ledger = _run_simulation(context, population, policy, n_rounds=1)
        record = ledger.records[0]
        victim = next(
            outcome
            for outcome in record.outcomes.values()
            if not outcome.excluded and outcome.fingerprint is not None
        )
        with pytest.raises(ServingError, match="no subproblem"):
            verify_round(
                record,
                [
                    subproblem
                    for subproblem in population.subproblems
                    if subproblem.subject_id != victim.subject_id
                ],
                mu=context.config.mu_default,
            )
