"""Tests for the canonical subproblem fingerprints."""

from __future__ import annotations

import pytest

from repro.core import DesignerConfig, QuadraticEffort, Subproblem
from repro.errors import ServingError
from repro.serving import design_fingerprint, subproblem_fingerprint
from repro.serving.fingerprint import FINGERPRINT_VERSION, canonical_float
from repro.types import WorkerParameters


@pytest.fixture
def psi():
    return QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)


def _subproblem(psi, subject_id="w0", feedback_weight=1.0, **kwargs):
    return Subproblem(
        subject_id=subject_id,
        effort_function=psi,
        params=WorkerParameters.honest(beta=1.0),
        feedback_weight=feedback_weight,
        **kwargs,
    )


class TestCanonicalFloat:
    def test_round_trips_exactly(self):
        for value in (0.0, -0.0, 1.0 / 3.0, 1e-300, 12345.6789):
            assert float.fromhex(canonical_float(value)) == float(value)

    def test_int_and_float_agree(self):
        assert canonical_float(3) == canonical_float(3.0)

    def test_rejects_nan(self):
        with pytest.raises(ServingError):
            canonical_float(float("nan"))


class TestDesignFingerprint:
    def test_stable_across_calls(self, psi):
        grid = DesignerConfig().grid_for(psi)
        params = WorkerParameters.honest(beta=1.0)
        first = design_fingerprint(psi, params, grid, mu=1.0)
        second = design_fingerprint(psi, params, grid, mu=1.0)
        assert first == second

    def test_versioned_and_compact(self, psi):
        grid = DesignerConfig().grid_for(psi)
        fingerprint = design_fingerprint(
            psi, WorkerParameters.honest(beta=1.0), grid
        )
        prefix, digest = fingerprint.split(":")
        assert prefix == FINGERPRINT_VERSION
        assert len(digest) == 16
        int(digest, 16)  # hex digits only

    def test_every_field_is_significant(self, psi):
        grid = DesignerConfig().grid_for(psi)
        params = WorkerParameters.honest(beta=1.0)
        base = design_fingerprint(psi, params, grid, mu=1.0, feedback_weight=1.0)
        variants = [
            design_fingerprint(
                QuadraticEffort(r2=-0.4, r1=10.0, r0=1.0), params, grid
            ),
            design_fingerprint(psi, WorkerParameters.honest(beta=1.5), grid),
            design_fingerprint(psi, params, grid, mu=2.0),
            design_fingerprint(psi, params, grid, feedback_weight=0.5),
            design_fingerprint(psi, params, grid, base_pay=0.1),
            design_fingerprint(psi, params, grid, min_utility=0.1),
            design_fingerprint(
                psi,
                WorkerParameters.malicious(beta=1.0, omega=0.3),
                grid,
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_worker_class_disambiguates_equal_numbers(self, psi):
        grid = DesignerConfig().grid_for(psi)
        honest = WorkerParameters.honest(beta=1.0)
        malicious = WorkerParameters.malicious(beta=1.0, omega=0.0)
        assert design_fingerprint(psi, honest, grid) != design_fingerprint(
            psi, malicious, grid
        )


class TestSubproblemFingerprint:
    def test_subject_identity_excluded(self, psi):
        """Two workers with identical design inputs share a fingerprint."""
        a = _subproblem(psi, subject_id="alice")
        b = _subproblem(psi, subject_id="bob")
        assert subproblem_fingerprint(a) == subproblem_fingerprint(b)

    def test_weight_included(self, psi):
        a = _subproblem(psi, feedback_weight=1.0)
        b = _subproblem(psi, feedback_weight=1.1)
        assert subproblem_fingerprint(a) != subproblem_fingerprint(b)

    def test_max_effort_changes_grid_and_fingerprint(self, psi):
        unbounded = _subproblem(psi)
        capped = _subproblem(psi, max_effort=2.0)
        assert subproblem_fingerprint(unbounded) != subproblem_fingerprint(capped)

    def test_config_resolution_matches_explicit_grid(self, psi):
        subproblem = _subproblem(psi)
        config = DesignerConfig(n_intervals=7)
        grid = config.grid_for(psi, max_effort=None)
        explicit = design_fingerprint(
            psi,
            subproblem.params,
            grid,
            base_pay=config.base_pay,
            min_utility=config.min_utility,
            mu=1.3,
            feedback_weight=subproblem.feedback_weight,
        )
        assert subproblem_fingerprint(subproblem, mu=1.3, config=config) == explicit

    def test_mu_included(self, psi):
        subproblem = _subproblem(psi)
        assert subproblem_fingerprint(
            subproblem, mu=1.0
        ) != subproblem_fingerprint(subproblem, mu=0.9)
