"""Tests for the serving-side counters and latency summaries."""

from __future__ import annotations

import pytest

from repro.errors import ServingError
from repro.serving import ServingStats


class FakeClock:
    def __init__(self) -> None:
        self.time = 0.0

    def __call__(self) -> float:
        return self.time


@pytest.fixture
def clock():
    return FakeClock()


class TestCounters:
    def test_batch_accounting(self, clock):
        stats = ServingStats(clock=clock)
        stats.record_batch(n_requests=10, n_unique=4, n_cache_hits=1, duration=0.5)
        assert stats.requests == 10
        assert stats.batches == 1
        assert stats.unique_solves == 3
        assert stats.cache_hits == 1
        assert stats.cache_misses == 3
        assert stats.hit_rate == pytest.approx(0.25)
        assert stats.dedup_rate == pytest.approx(1.0 - 4 / 10)

    def test_throughput_uses_injected_clock(self, clock):
        stats = ServingStats(clock=clock)
        stats.record_batch(n_requests=20, n_unique=20, n_cache_hits=0, duration=2.0)
        clock.time = 2.0
        assert stats.elapsed == pytest.approx(2.0)
        assert stats.throughput == pytest.approx(10.0)

    def test_idle_rates_are_zero(self, clock):
        stats = ServingStats(clock=clock)
        assert stats.hit_rate == 0.0
        assert stats.dedup_rate == 0.0
        assert stats.throughput == 0.0

    def test_rejects_inconsistent_batches(self, clock):
        stats = ServingStats(clock=clock)
        with pytest.raises(ServingError):
            stats.record_batch(n_requests=2, n_unique=3, n_cache_hits=0, duration=0.0)
        with pytest.raises(ServingError):
            stats.record_batch(n_requests=3, n_unique=2, n_cache_hits=3, duration=0.0)
        with pytest.raises(ServingError):
            stats.record_batch(n_requests=-1, n_unique=0, n_cache_hits=0, duration=0.0)


class TestLatencies:
    def test_bounded_samples(self, clock):
        stats = ServingStats(clock=clock, max_samples=3)
        stats.record_latencies([0.1, 0.2, 0.3, 0.4])
        assert list(stats.request_latencies) == [0.2, 0.3, 0.4]

    def test_negative_latencies_clamped(self, clock):
        stats = ServingStats(clock=clock)
        stats.record_latencies([-0.5])
        assert list(stats.request_latencies) == [0.0]

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ServingError):
            ServingStats(max_samples=0)


class TestSnapshot:
    def test_latency_keys_appear_once_observed(self, clock):
        stats = ServingStats(clock=clock)
        assert "request_latency_mean_s" not in stats.snapshot()
        stats.record_batch(
            n_requests=2,
            n_unique=2,
            n_cache_hits=0,
            duration=0.25,
            request_latencies=[0.1, 0.3],
        )
        snapshot = stats.snapshot()
        assert snapshot["request_latency_mean_s"] == pytest.approx(0.2)
        assert snapshot["batch_latency_mean_s"] == pytest.approx(0.25)

    def test_format_mentions_all_counters(self, clock):
        stats = ServingStats(clock=clock)
        rendered = stats.format()
        for key in ("requests", "batches", "unique_solves", "cache_hit_rate"):
            assert key in rendered


class TestMetricsBacking:
    def test_shared_registry_publishes_serving_metrics(self, clock):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stats = ServingStats(clock=clock, registry=registry)
        stats.record_batch(
            n_requests=4,
            n_unique=2,
            n_cache_hits=1,
            duration=0.5,
            request_latencies=[0.1, 0.2],
        )
        snapshot = registry.snapshot()
        assert snapshot["serving.requests"] == {"value": 4.0}
        assert snapshot["serving.batches"] == {"value": 1.0}
        assert snapshot["serving.unique_solves"] == {"value": 1.0}
        assert snapshot["serving.cache_hits"] == {"value": 1.0}
        assert snapshot["serving.request_latency_s"]["count"] == 2.0
        assert snapshot["serving.batch_latency_s"]["count"] == 1.0

    def test_private_registries_do_not_collide(self, clock):
        first = ServingStats(clock=clock)
        second = ServingStats(clock=clock)
        first.record_batch(n_requests=5, n_unique=5, n_cache_hits=0, duration=0.1)
        assert second.requests == 0

    def test_namespace_prefix(self, clock):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stats = ServingStats(clock=clock, registry=registry, namespace="pool")
        stats.record_batch(n_requests=1, n_unique=1, n_cache_hits=0, duration=0.1)
        assert registry.snapshot()["pool.requests"] == {"value": 1.0}


class TestReadOnlyCounters:
    """The PR 3 legacy counter-write shim is gone: counters are read-only."""

    def test_direct_assignment_raises(self, clock):
        stats = ServingStats(clock=clock)
        for name in ("requests", "batches", "unique_solves", "cache_hits", "cache_misses"):
            with pytest.raises(AttributeError):
                setattr(stats, name, 5)

    def test_augmented_assignment_raises(self, clock):
        stats = ServingStats(clock=clock)
        stats.record_batch(n_requests=2, n_unique=2, n_cache_hits=0, duration=0.1)
        with pytest.raises(AttributeError):
            stats.requests += 1
        assert stats.requests == 2

    def test_counters_read_as_ints(self, clock):
        stats = ServingStats(clock=clock)
        stats.record_batch(n_requests=2, n_unique=1, n_cache_hits=1, duration=0.1)
        for name in ("requests", "batches", "unique_solves", "cache_hits", "cache_misses"):
            assert isinstance(getattr(stats, name), int)
