"""Shared fixtures: effort functions, grids, small traces, contexts.

The small trace and the experiment context are session-scoped — they are
deterministic in (config, seed), so sharing them across tests is safe
and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collusion import cluster_collusive_workers
from repro.data import AmazonTraceGenerator, TraceConfig
from repro.estimation import DeviationMaliceEstimator, EffortProxy
from repro.experiments import ExperimentConfig, build_context
from repro.types import DiscretizationGrid, WorkerParameters
from repro.core import QuadraticEffort


@pytest.fixture()
def psi() -> QuadraticEffort:
    """The reference concave effort function used across core tests."""
    return QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)


@pytest.fixture()
def steep_psi() -> QuadraticEffort:
    """The Fig. 6-style effort function (large marginal feedback)."""
    return QuadraticEffort(r2=-1.0, r1=30.0, r0=5.0)


@pytest.fixture()
def grid(psi: QuadraticEffort) -> DiscretizationGrid:
    """A 10-interval grid covering 95% of the increasing range."""
    return DiscretizationGrid.for_max_effort(0.95 * psi.max_increasing_effort, 10)


@pytest.fixture()
def honest_params() -> WorkerParameters:
    return WorkerParameters.honest(beta=1.0)


@pytest.fixture()
def malicious_params() -> WorkerParameters:
    return WorkerParameters.malicious(beta=1.0, omega=0.3)


@pytest.fixture(scope="session")
def small_trace():
    """A deterministic small trace shared by the whole session."""
    return AmazonTraceGenerator(TraceConfig.small(), seed=11).generate()


@pytest.fixture(scope="session")
def small_clusters(small_trace):
    return cluster_collusive_workers(small_trace.malicious_targets())


@pytest.fixture(scope="session")
def small_proxy(small_trace):
    return EffortProxy.from_trace(small_trace)


@pytest.fixture(scope="session")
def small_malice(small_trace):
    return DeviationMaliceEstimator().estimate(small_trace)


@pytest.fixture(scope="session")
def small_context():
    """A cached small-scale experiment context."""
    return build_context(ExperimentConfig.small(seed=11))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
