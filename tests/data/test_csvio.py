"""Tests for CSV export/import of traces."""

from __future__ import annotations

import pytest

from repro.data import export_csv, import_csv
from repro.errors import DataError


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, small_trace, tmp_path):
        stem = tmp_path / "trace"
        paths = export_csv(small_trace, stem)
        assert all(path.exists() for path in paths.values())
        reloaded = import_csv(stem)
        assert reloaded.stats() == small_trace.stats()
        # Spot-check a reviewer and a review.
        worker_id = next(iter(small_trace.reviewers))
        original = small_trace.reviewers[worker_id]
        restored = reloaded.reviewers[worker_id]
        assert restored.worker_type == original.worker_type
        assert restored.community_id == original.community_id
        assert restored.latent_expertise == pytest.approx(
            original.latent_expertise
        )
        assert reloaded.reviews[0] == small_trace.reviews[0]

    def test_clustering_identical_after_roundtrip(
        self, small_trace, small_clusters, tmp_path
    ):
        from repro.collusion import cluster_collusive_workers

        stem = tmp_path / "trace"
        export_csv(small_trace, stem)
        reloaded = import_csv(stem)
        clusters = cluster_collusive_workers(reloaded.malicious_targets())
        assert set(clusters.communities) == set(small_clusters.communities)


class TestFailureInjection:
    def test_missing_file_rejected(self, small_trace, tmp_path):
        stem = tmp_path / "trace"
        paths = export_csv(small_trace, stem)
        paths["reviews"].unlink()
        with pytest.raises(DataError):
            import_csv(stem)

    def test_corrupted_header_rejected(self, small_trace, tmp_path):
        stem = tmp_path / "trace"
        paths = export_csv(small_trace, stem)
        content = paths["products"].read_text().splitlines()
        content[0] = "wrong,header,entirely"
        paths["products"].write_text("\n".join(content))
        with pytest.raises(DataError):
            import_csv(stem)

    def test_corrupted_value_raises(self, small_trace, tmp_path):
        stem = tmp_path / "trace"
        paths = export_csv(small_trace, stem)
        lines = paths["reviews"].read_text().splitlines()
        first_data = lines[1].split(",")
        first_data[3] = "not-a-number"
        lines[1] = ",".join(first_data)
        paths["reviews"].write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            import_csv(stem)
