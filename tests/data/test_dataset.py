"""Tests for the ReviewTrace container."""

from __future__ import annotations

import pytest

from repro.data import Product, Review, ReviewTrace, Reviewer
from repro.errors import DataError
from repro.types import WorkerType


@pytest.fixture()
def tiny_trace() -> ReviewTrace:
    products = [
        Product(product_id="p1", true_quality=4.0, expert_score=4.1),
        Product(product_id="p2", true_quality=2.0, expert_score=2.1),
    ]
    reviewers = [
        Reviewer(reviewer_id="alice", worker_type=WorkerType.HONEST),
        Reviewer(reviewer_id="bob", worker_type=WorkerType.NONCOLLUSIVE_MALICIOUS),
        Reviewer(
            reviewer_id="carol",
            worker_type=WorkerType.COLLUSIVE_MALICIOUS,
            community_id="c0",
        ),
        Reviewer(
            reviewer_id="dave",
            worker_type=WorkerType.COLLUSIVE_MALICIOUS,
            community_id="c0",
        ),
    ]
    reviews = [
        Review("r1", "alice", "p1", 4.0, 200, 3, latent_effort=1.0),
        Review("r2", "alice", "p2", 2.5, 400, 5, latent_effort=2.0),
        Review("r3", "bob", "p1", 5.0, 150, 1, latent_effort=0.8),
        Review("r4", "carol", "p2", 5.0, 100, 9, latent_effort=0.5),
        Review("r5", "dave", "p2", 5.0, 120, 8, latent_effort=0.6),
    ]
    return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)


class TestConstruction:
    def test_counts(self, tiny_trace):
        stats = tiny_trace.stats()
        assert stats["n_reviews"] == 5
        assert stats["n_reviewers"] == 4
        assert stats["n_products"] == 2
        assert stats["n_honest"] == 1
        assert stats["n_malicious"] == 3

    def test_unknown_reviewer_rejected(self):
        products = [Product(product_id="p1", true_quality=3.0, expert_score=3.0)]
        with pytest.raises(DataError):
            ReviewTrace(
                products=products,
                reviewers=[],
                reviews=[Review("r1", "ghost", "p1", 3.0, 100, 0)],
            )

    def test_unknown_product_rejected(self):
        reviewers = [Reviewer(reviewer_id="w", worker_type=WorkerType.HONEST)]
        with pytest.raises(DataError):
            ReviewTrace(
                products=[],
                reviewers=reviewers,
                reviews=[Review("r1", "w", "ghost", 3.0, 100, 0)],
            )

    def test_duplicate_worker_product_pair_rejected(self, tiny_trace):
        products = list(tiny_trace.products.values())
        reviewers = list(tiny_trace.reviewers.values())
        reviews = tiny_trace.reviews + [
            Review("r9", "alice", "p1", 3.0, 100, 0)
        ]
        with pytest.raises(DataError):
            ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)


class TestQueries:
    def test_reviews_of(self, tiny_trace):
        assert len(tiny_trace.reviews_of("alice")) == 2
        with pytest.raises(DataError):
            tiny_trace.reviews_of("ghost")

    def test_series_of(self, tiny_trace):
        series = tiny_trace.series_of("alice")
        assert series.n_reviews == 2
        assert series.mean_feedback == pytest.approx(4.0)
        assert series.product_ids == ("p1", "p2")

    def test_series_of_empty_worker(self):
        trace = ReviewTrace(
            products=[],
            reviewers=[Reviewer(reviewer_id="idle", worker_type=WorkerType.HONEST)],
            reviews=[],
        )
        series = trace.series_of("idle")
        assert series.n_reviews == 0
        assert series.mean_feedback == 0.0

    def test_worker_ids_by_type(self, tiny_trace):
        assert tiny_trace.worker_ids(WorkerType.HONEST) == ["alice"]
        assert set(tiny_trace.malicious_ids()) == {"bob", "carol", "dave"}

    def test_workers_with_min_reviews(self, tiny_trace):
        assert tiny_trace.workers_with_min_reviews(2) == ["alice"]
        everyone = tiny_trace.workers_with_min_reviews(1)
        assert everyone[0] == "alice"  # most reviews first
        with pytest.raises(DataError):
            tiny_trace.workers_with_min_reviews(-1)

    def test_malicious_targets(self, tiny_trace):
        targets = tiny_trace.malicious_targets()
        assert targets == {
            "bob": {"p1"},
            "carol": {"p2"},
            "dave": {"p2"},
        }

    def test_planted_communities(self, tiny_trace):
        assert tiny_trace.planted_communities() == {"c0": {"carol", "dave"}}

    def test_class_aggregates(self, tiny_trace):
        aggregates = tiny_trace.class_aggregates()
        honest = aggregates[WorkerType.HONEST]
        assert honest["n_workers"] == 1
        assert honest["mean_effort"] == pytest.approx(1.5)
        assert honest["mean_feedback"] == pytest.approx(4.0)
        collusive = aggregates[WorkerType.COLLUSIVE_MALICIOUS]
        assert collusive["mean_feedback"] == pytest.approx(8.5)


class TestSerialization:
    def test_save_load_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        tiny_trace.save(path)
        loaded = ReviewTrace.load(path)
        assert loaded.stats() == tiny_trace.stats()
        assert loaded.series_of("alice").upvotes.tolist() == (
            tiny_trace.series_of("alice").upvotes.tolist()
        )
        assert loaded.reviewers["carol"].community_id == "c0"

    def test_load_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(DataError):
            ReviewTrace.load(path)

    def test_load_skips_blank_lines(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        tiny_trace.save(path)
        padded = path.read_text() + "\n\n"
        path.write_text(padded)
        loaded = ReviewTrace.load(path)
        assert loaded.n_reviews == tiny_trace.n_reviews
