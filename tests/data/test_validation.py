"""Tests for trace calibration validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.data import (
    AmazonTraceGenerator,
    Product,
    Review,
    ReviewTrace,
    Reviewer,
    TraceConfig,
    validate_trace,
)
from repro.types import WorkerType


class TestValidateGeneratedTrace:
    def test_small_trace_fully_calibrated(self, small_trace):
        report = validate_trace(small_trace, TraceConfig.small())
        assert report.passed, report.format()
        assert not report.failures()

    def test_without_config_checks_structure_only(self, small_trace):
        report = validate_trace(small_trace)
        names = {check.name for check in report.checks}
        assert "clustering_recovers_planted_rings" in names
        assert "count_n_reviews" not in names
        assert report.passed

    def test_wrong_config_fails_counts(self, small_trace):
        wrong = dataclasses.replace(TraceConfig.small(), n_reviews=7_000)
        report = validate_trace(small_trace, wrong)
        assert not report.passed
        failing = {check.name for check in report.failures()}
        assert "count_n_reviews" in failing

    def test_format_mentions_verdicts(self, small_trace):
        rendered = validate_trace(small_trace).format()
        assert "PASS" in rendered


class TestValidateHandBuiltTrace:
    def test_detects_missing_feedback_dominance(self):
        """A trace without collusive upvote inflation fails the Fig. 7
        signature check."""
        products = [
            Product(product_id=f"p{i}", true_quality=3.0, expert_score=3.0)
            for i in range(6)
        ]
        reviewers = [
            Reviewer(reviewer_id="h", worker_type=WorkerType.HONEST),
            Reviewer(
                reviewer_id="c1",
                worker_type=WorkerType.COLLUSIVE_MALICIOUS,
                community_id="ring",
            ),
            Reviewer(
                reviewer_id="c2",
                worker_type=WorkerType.COLLUSIVE_MALICIOUS,
                community_id="ring",
            ),
        ]
        reviews = [
            Review("r1", "h", "p0", 3.0, 300, 5, latent_effort=2.0),
            Review("r2", "c1", "p1", 5.0, 300, 5, latent_effort=2.0),
            Review("r3", "c1", "p2", 5.0, 300, 5, latent_effort=2.0),
            Review("r4", "c2", "p1", 5.0, 300, 5, latent_effort=2.0),
        ]
        trace = ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)
        report = validate_trace(trace)
        failing = {check.name for check in report.failures()}
        assert "collusive_feedback_dominates" in failing

    def test_custom_config_traces_validate(self):
        """A user-customized generator config still yields a calibrated
        trace (the advertised workflow for custom studies)."""
        config = TraceConfig(
            n_reviewers=400,
            n_malicious=60,
            community_sizes=(5, 4, 3, 2, 2),
            n_products=2_000,
            n_reviews=2_600,
            n_prolific_honest=15,
        )
        trace = AmazonTraceGenerator(config, seed=3).generate()
        # Small rings (2-5 members) produce a milder upvote boost, so
        # the dominance threshold is tuned down accordingly.
        report = validate_trace(trace, config, feedback_dominance=1.2)
        assert report.passed, report.format()
