"""Tests for trace record validation."""

from __future__ import annotations

import pytest

from repro.data import Product, Review, Reviewer
from repro.errors import DataError
from repro.types import WorkerType


class TestProduct:
    def test_valid(self):
        product = Product(
            product_id="p1", true_quality=3.5, expert_score=3.4, category="books"
        )
        assert product.category == "books"

    def test_empty_id_rejected(self):
        with pytest.raises(DataError):
            Product(product_id="", true_quality=3.0, expert_score=3.0)

    def test_score_range_enforced(self):
        with pytest.raises(DataError):
            Product(product_id="p", true_quality=0.5, expert_score=3.0)
        with pytest.raises(DataError):
            Product(product_id="p", true_quality=3.0, expert_score=5.5)


class TestReviewer:
    def test_honest_reviewer(self):
        reviewer = Reviewer(reviewer_id="w1", worker_type=WorkerType.HONEST)
        assert not reviewer.is_malicious
        assert reviewer.community_id is None

    def test_collusive_requires_community(self):
        with pytest.raises(DataError):
            Reviewer(reviewer_id="w1", worker_type=WorkerType.COLLUSIVE_MALICIOUS)

    def test_noncollusive_rejects_community(self):
        with pytest.raises(DataError):
            Reviewer(
                reviewer_id="w1",
                worker_type=WorkerType.HONEST,
                community_id="c1",
            )

    def test_collusive_with_community_valid(self):
        reviewer = Reviewer(
            reviewer_id="w1",
            worker_type=WorkerType.COLLUSIVE_MALICIOUS,
            community_id="c1",
        )
        assert reviewer.is_malicious

    def test_expertise_positive(self):
        with pytest.raises(DataError):
            Reviewer(
                reviewer_id="w1",
                worker_type=WorkerType.HONEST,
                latent_expertise=0.0,
            )


class TestReview:
    def _valid(self, **overrides):
        payload = dict(
            review_id="r1",
            reviewer_id="w1",
            product_id="p1",
            rating=4.0,
            text_length=300,
            upvotes=5,
            latent_effort=1.5,
        )
        payload.update(overrides)
        return Review(**payload)

    def test_valid(self):
        review = self._valid()
        assert review.upvotes == 5

    def test_missing_ids_rejected(self):
        with pytest.raises(DataError):
            self._valid(review_id="")
        with pytest.raises(DataError):
            self._valid(reviewer_id="")
        with pytest.raises(DataError):
            self._valid(product_id="")

    def test_rating_range(self):
        with pytest.raises(DataError):
            self._valid(rating=0.9)
        with pytest.raises(DataError):
            self._valid(rating=5.1)

    def test_positive_length(self):
        with pytest.raises(DataError):
            self._valid(text_length=0)

    def test_nonnegative_upvotes_and_effort(self):
        with pytest.raises(DataError):
            self._valid(upvotes=-1)
        with pytest.raises(DataError):
            self._valid(latent_effort=-0.1)
