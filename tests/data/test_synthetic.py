"""Tests for the calibrated synthetic trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collusion import cluster_collusive_workers
from repro.data import (
    PAPER_COMMUNITY_SIZES,
    AmazonTraceGenerator,
    TraceConfig,
)
from repro.errors import TraceCalibrationError
from repro.types import WorkerType


class TestConfig:
    def test_paper_counts(self):
        config = TraceConfig.paper()
        assert config.n_reviewers == 19_686
        assert config.n_malicious == 1_524
        assert config.n_reviews == 118_142
        assert config.n_products == 75_508
        assert config.n_collusive == 212
        assert len(config.community_sizes) == 47

    def test_paper_community_sizes_sum(self):
        assert sum(PAPER_COMMUNITY_SIZES) == 212
        assert len(PAPER_COMMUNITY_SIZES) == 47
        assert all(size >= 2 for size in PAPER_COMMUNITY_SIZES)

    def test_derived_counts(self):
        config = TraceConfig.small()
        assert config.n_honest == config.n_reviewers - config.n_malicious
        assert (
            config.n_noncollusive_malicious
            == config.n_malicious - config.n_collusive
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(TraceCalibrationError):
            TraceConfig(n_malicious=100, n_reviewers=50)
        with pytest.raises(TraceCalibrationError):
            TraceConfig(community_sizes=(1, 2))
        with pytest.raises(TraceCalibrationError):
            TraceConfig(n_malicious=5, community_sizes=(4, 4))
        with pytest.raises(TraceCalibrationError):
            TraceConfig(n_reviews=10)  # below structural minimum
        with pytest.raises(TraceCalibrationError):
            TraceConfig(subtle_fraction=1.5)


class TestGeneratedTrace:
    def test_exact_counts(self, small_trace):
        config = TraceConfig.small()
        stats = small_trace.stats()
        assert stats["n_reviews"] == config.n_reviews
        assert stats["n_reviewers"] == config.n_reviewers
        assert stats["n_products"] == config.n_products
        assert stats["n_malicious"] == config.n_malicious
        assert stats["n_collusive_malicious"] == config.n_collusive

    def test_deterministic_given_seed(self):
        config = TraceConfig.small()
        first = AmazonTraceGenerator(config, seed=5).generate()
        second = AmazonTraceGenerator(config, seed=5).generate()
        assert first.stats() == second.stats()
        assert [r.upvotes for r in first.reviews[:50]] == [
            r.upvotes for r in second.reviews[:50]
        ]

    def test_different_seeds_differ(self):
        config = TraceConfig.small()
        first = AmazonTraceGenerator(config, seed=5).generate()
        second = AmazonTraceGenerator(config, seed=6).generate()
        assert [r.upvotes for r in first.reviews[:100]] != [
            r.upvotes for r in second.reviews[:100]
        ]

    def test_clustering_recovers_planted_communities(self, small_trace):
        clusters = cluster_collusive_workers(small_trace.malicious_targets())
        planted = {
            frozenset(m) for m in small_trace.planted_communities().values()
        }
        assert set(clusters.communities) == planted

    def test_community_sizes_match_config(self, small_trace):
        config = TraceConfig.small()
        sizes = sorted(
            len(m) for m in small_trace.planted_communities().values()
        )
        assert sizes == sorted(config.community_sizes)

    def test_every_worker_reviews(self, small_trace):
        for worker_id in small_trace.reviewers:
            assert len(small_trace.reviews_of(worker_id)) >= 1

    def test_prolific_workers_exist(self, small_trace):
        config = TraceConfig.small()
        prolific = small_trace.workers_with_min_reviews(
            config.prolific_min_reviews, WorkerType.HONEST
        )
        assert len(prolific) >= config.n_prolific_honest * 0.8

    def test_fig7_signature(self, small_trace):
        """Similar efforts; collusive feedback strongly dominates."""
        aggregates = small_trace.class_aggregates()
        efforts = [aggregates[wt]["mean_effort"] for wt in WorkerType]
        assert max(efforts) <= 1.5 * min(efforts)
        cm = aggregates[WorkerType.COLLUSIVE_MALICIOUS]["mean_feedback"]
        others = max(
            aggregates[WorkerType.HONEST]["mean_feedback"],
            aggregates[WorkerType.NONCOLLUSIVE_MALICIOUS]["mean_feedback"],
        )
        assert cm > 1.5 * others

    def test_malicious_ratings_biased_upward(self, small_trace):
        honest_dev, malicious_dev = [], []
        for review in small_trace.reviews:
            reviewer = small_trace.reviewers[review.reviewer_id]
            expert = small_trace.products[review.product_id].expert_score
            (malicious_dev if reviewer.is_malicious else honest_dev).append(
                review.rating - expert
            )
        assert np.mean(malicious_dev) > np.mean(honest_dev) + 0.5

    def test_malicious_targets_disjoint_across_groups(self, small_trace):
        """NCM target blocks and community pools never overlap, so
        clustering recovers exactly the planted structure."""
        planted = small_trace.planted_communities()
        community_products = {}
        for community_id, members in planted.items():
            pool = set()
            for member in members:
                pool |= {r.product_id for r in small_trace.reviews_of(member)}
            community_products[community_id] = pool
        pools = list(community_products.values())
        for index, pool in enumerate(pools):
            for other in pools[index + 1:]:
                assert pool.isdisjoint(other)
