"""Tests for the expert panel and the endorsement (upvote) model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuadraticEffort
from repro.data import EndorsementModel, ExpertPanel
from repro.errors import DataError


class TestExpertPanel:
    def test_consensus_near_truth(self, rng):
        panel = ExpertPanel(n_experts=25, score_noise=0.2, rng=rng)
        scores = [panel.consensus(3.5) for _ in range(200)]
        assert np.mean(scores) == pytest.approx(3.5, abs=0.05)

    def test_consensus_clipped_to_scale(self, rng):
        panel = ExpertPanel(n_experts=1, score_noise=3.0, rng=rng)
        scores = [panel.consensus(5.0) for _ in range(100)]
        assert max(scores) <= 5.0
        assert min(scores) >= 1.0

    def test_larger_panel_reduces_spread(self):
        small = ExpertPanel(n_experts=1, score_noise=0.5, rng=np.random.default_rng(0))
        large = ExpertPanel(n_experts=50, score_noise=0.5, rng=np.random.default_rng(0))
        small_scores = [small.consensus(3.0) for _ in range(300)]
        large_scores = [large.consensus(3.0) for _ in range(300)]
        assert np.std(large_scores) < np.std(small_scores)

    def test_batch_matches_scale(self, rng):
        panel = ExpertPanel(rng=rng)
        qualities = np.array([1.0, 3.0, 5.0])
        scores = panel.consensus_batch(qualities)
        assert scores.shape == (3,)
        assert (scores >= 1.0).all() and (scores <= 5.0).all()

    def test_invalid_inputs(self, rng):
        with pytest.raises(DataError):
            ExpertPanel(n_experts=0)
        with pytest.raises(DataError):
            ExpertPanel(score_noise=-0.1)
        panel = ExpertPanel(rng=rng)
        with pytest.raises(DataError):
            panel.consensus(0.5)
        with pytest.raises(DataError):
            panel.consensus_batch(np.array([6.0]))


class TestEndorsementModel:
    @pytest.fixture()
    def model(self, psi):
        return EndorsementModel(psi, noise_std=0.3, boost_rate=0.8, boost_cap=10)

    def test_expected_upvotes_organic(self, model, psi):
        assert model.expected_upvotes(2.0) == pytest.approx(float(psi(2.0)))

    def test_boost_scales_with_partners(self, model, psi):
        alone = model.expected_upvotes(2.0, n_partners=0)
        ring = model.expected_upvotes(2.0, n_partners=5)
        assert ring == pytest.approx(alone + 0.8 * 5)

    def test_boost_saturates_at_cap(self, model):
        at_cap = model.expected_upvotes(2.0, n_partners=10)
        beyond = model.expected_upvotes(2.0, n_partners=40)
        assert beyond == pytest.approx(at_cap)

    def test_samples_are_nonnegative_ints(self, model, rng):
        upvotes = model.sample_upvotes(np.array([0.0, 1.0, 5.0]), 2, rng)
        assert upvotes.dtype.kind == "i"
        assert (upvotes >= 0).all()

    def test_sample_mean_tracks_expectation(self, psi):
        model = EndorsementModel(psi, noise_std=0.2)
        rng = np.random.default_rng(3)
        efforts = np.full(5000, 3.0)
        upvotes = model.sample_upvotes(efforts, 0, rng)
        assert upvotes.mean() == pytest.approx(float(psi(3.0)), abs=0.1)

    def test_worker_offset_shifts_mean(self, psi):
        model = EndorsementModel(psi, noise_std=0.2)
        rng = np.random.default_rng(4)
        efforts = np.full(5000, 3.0)
        boosted = model.sample_upvotes(efforts, 0, rng, worker_offset=2.0)
        assert boosted.mean() == pytest.approx(float(psi(3.0)) + 2.0, abs=0.1)

    def test_invalid_inputs(self, model, psi, rng):
        with pytest.raises(DataError):
            EndorsementModel(psi, noise_std=-1.0)
        with pytest.raises(DataError):
            EndorsementModel(psi, boost_rate=-0.5)
        with pytest.raises(DataError):
            model.expected_upvotes(-1.0)
        with pytest.raises(DataError):
            model.expected_upvotes(1.0, n_partners=-1)
        with pytest.raises(DataError):
            model.sample_upvotes(np.array([-1.0]), 0, rng)
