"""StreamingLedger: streamed aggregates equal the eager ledger's."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import (
    DynamicContractPolicy,
    FixedPaymentPolicy,
    MarketplaceSimulation,
    OutcomeSpill,
    SimulationLedger,
    StreamingHistogram,
    StreamingLedger,
    require_ledger_views_agree,
)
from repro.simulation.streaming import SPILL_DTYPE
from repro.types import WorkerType
from repro.workers import synthetic_population
from repro.workers.columnar import ColumnarPopulation


def _run_pair(n_subjects, seed, n_rounds, lagged, spill_path=None):
    """One eager object run and one streamed columnar run, same seed."""

    def population():
        return synthetic_population(
            n_subjects=n_subjects,
            n_archetypes=min(4, n_subjects),
            seed=seed,
            feedback_noise=0.3,
        )

    def policy():
        return DynamicContractPolicy(mu=1.0, delta=False)

    eager = MarketplaceSimulation(
        population(),
        RequesterObjective(),
        policy(),
        seed=seed,
        lagged_payment=lagged,
        fast_rounds=True,
    ).run(n_rounds)
    spill = OutcomeSpill(spill_path) if spill_path is not None else None
    streaming = StreamingLedger(spill=spill)
    MarketplaceSimulation(
        ColumnarPopulation.from_population(population()),
        RequesterObjective(),
        policy(),
        seed=seed,
        lagged_payment=lagged,
        fast_rounds=True,
        ledger=streaming,
    ).run(n_rounds)
    assert isinstance(eager, SimulationLedger)
    return streaming, eager


@settings(max_examples=12, deadline=None)
@given(
    n_subjects=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=50),
    n_rounds=st.integers(min_value=1, max_value=5),
    lagged=st.booleans(),
)
def test_streamed_aggregates_equal_eager(n_subjects, seed, n_rounds, lagged):
    """Hypothesis property: on random small runs, every streamed view
    (series, per-type compensation, effort means, quantiles) matches the
    eager ledger computed from full per-subject outcomes."""
    streaming, eager = _run_pair(n_subjects, seed, n_rounds, lagged)
    require_ledger_views_agree(streaming, eager, quantiles=(0.25, 0.5, 0.9))
    assert streaming.n_rounds == eager.n_rounds
    assert np.array_equal(streaming.utility_series(), eager.utility_series())
    assert np.array_equal(
        streaming.cumulative_utility(), eager.cumulative_utility()
    )
    assert streaming.total_utility() == eager.total_utility()
    assert streaming.summary() == eager.summary()
    assert streaming.mean_reuse_rate() == eager.mean_reuse_rate()
    for worker_type in WorkerType:
        assert np.array_equal(
            streaming.compensation_by_type(worker_type)[worker_type],
            eager.compensation_by_type(worker_type)[worker_type],
        )


def test_spill_makes_views_exact(tmp_path):
    streaming, eager = _run_pair(
        10, seed=4, n_rounds=5, lagged=True, spill_path=tmp_path / "spill.bin"
    )
    require_ledger_views_agree(streaming, eager, quantiles=(0.0, 0.5, 1.0))
    # With a spill the run-level effort means and quantiles are exact.
    assert streaming.mean_effort_by_type() == eager.mean_effort_by_type()
    values = np.array(
        [
            outcome.per_member_compensation
            for record in eager.records
            for outcome in record.outcomes.values()
        ]
    )
    for q in (0.0, 0.1, 0.5, 0.99, 1.0):
        assert streaming.compensation_quantile(q) == float(
            np.quantile(values, q)
        )
    streaming.close()


def test_spill_round_trip(tmp_path):
    path = tmp_path / "outcomes.bin"
    spill = OutcomeSpill(path, buffer_rounds=2)
    rounds = []
    rng = np.random.default_rng(0)
    for _ in range(5):
        rows = np.zeros(7, dtype=SPILL_DTYPE)
        rows["effort"] = rng.random(7)
        rows["feedback"] = rng.random(7)
        rows["compensation"] = rng.random(7)
        rows["rating_deviation"] = rng.random(7)
        rows["worker_utility"] = rng.standard_normal(7)
        rows["excluded"] = rng.random(7) < 0.3
        spill.append_round(rows)
        rounds.append(rows.copy())
    assert spill.n_rounds == 5
    assert spill.n_subjects == 7
    history = spill.as_array()
    assert history.shape == (5, 7)
    for index, rows in enumerate(rounds):
        assert np.array_equal(history[index], rows)
        assert np.array_equal(spill.round_outcomes(index), rows)
    spill.close()
    spill.close()  # idempotent
    with pytest.raises(SimulationError):
        spill.append_round(rounds[0])
    # The file itself round-trips without the writer object.
    reloaded = np.fromfile(path, dtype=SPILL_DTYPE).reshape(5, 7)
    for index, rows in enumerate(rounds):
        assert np.array_equal(reloaded[index], rows)


def test_spill_rejects_ragged_rounds(tmp_path):
    spill = OutcomeSpill(tmp_path / "ragged.bin")
    spill.append_round(np.zeros(3, dtype=SPILL_DTYPE))
    with pytest.raises(SimulationError, match="3 subjects"):
        spill.append_round(np.zeros(4, dtype=SPILL_DTYPE))


def test_object_mode_absorption():
    """A streaming ledger fed plain object-path records (no staged
    arrays) reduces record.outcomes itself."""
    population = synthetic_population(
        n_subjects=8, n_archetypes=3, seed=6, feedback_noise=0.3
    )
    eager_sim = MarketplaceSimulation(
        population,
        RequesterObjective(),
        FixedPaymentPolicy(pay_per_member=0.4),
        seed=2,
        fast_rounds=True,
    )
    eager = eager_sim.run(4)
    assert isinstance(eager, SimulationLedger)
    streaming = StreamingLedger()
    for record in eager.records:
        streaming.append(record)
    require_ledger_views_agree(streaming, eager, quantiles=(0.5,))


def test_append_enforces_round_order():
    population = synthetic_population(
        n_subjects=4, n_archetypes=2, seed=1, feedback_noise=0.0
    )
    ledger = MarketplaceSimulation(
        population,
        RequesterObjective(),
        FixedPaymentPolicy(pay_per_member=0.4),
        seed=2,
    ).run(2)
    assert isinstance(ledger, SimulationLedger)
    streaming = StreamingLedger()
    with pytest.raises(SimulationError, match="expected round 0"):
        streaming.append(ledger.records[1])


def test_histogram_quantile_error_bounded():
    histogram = StreamingHistogram(n_bins=32)
    rng = np.random.default_rng(5)
    batches = [rng.random(50) * scale for scale in (1.0, 4.0, 16.0)]
    for batch in batches:
        histogram.observe(batch)
    merged = np.concatenate(batches)
    for q in (0.1, 0.5, 0.9):
        approx = histogram.quantile(q)
        exact = float(np.quantile(merged, q, method="inverted_cdf"))
        assert abs(approx - exact) <= histogram.bin_width + 1e-12
    with pytest.raises(SimulationError):
        histogram.quantile(1.5)
    with pytest.raises(SimulationError):
        StreamingHistogram(n_bins=3)


def test_empty_ledger_views():
    streaming = StreamingLedger()
    assert streaming.n_rounds == 0
    assert streaming.total_utility() == 0.0
    assert streaming.mean_reuse_rate() is None
    assert streaming.cache_hit_rate() is None
    assert streaming.summary()["n_rounds"] == 0.0
    with pytest.raises(SimulationError):
        streaming.compensation_quantile(0.5)
