"""Sharded parallel round engine: bit-identity, faults, lifecycle.

The contract is exact: :func:`parallel_columnar_step` over any shard
count must reproduce :func:`fast_columnar_step` bit for bit — same
output columns, same reductions, same mutation of the lagged-feedback
column, same generator advancement — because the coordinator draws the
single pinned-order noise block and shards consume contiguous slices of
it.  A SIGKILLed worker must not change a single bit either: its slice
is recomputed inline over the same shared arrays.
"""

from __future__ import annotations

import gc
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import (
    DynamicContractPolicy,
    MarketplaceSimulation,
    SimulationLedger,
    require_ledgers_agree,
)
from repro.simulation.engine import fast_columnar_step
from repro.simulation.parallel import (
    SHM_NAME_PREFIX,
    ParallelRoundEngine,
    parallel_columnar_step,
    require_parallel_steps_agree,
)
from repro.workers import synthetic_population
from repro.workers.columnar import ColumnarPopulation, synthetic_columnar

N_SUBJECTS = 97
SEED = 21

_RESULT_COLUMNS = (
    "active",
    "efforts",
    "feedback",
    "compensation",
    "rating_deviation",
    "worker_utility",
)


def _columnar(n_subjects: int = N_SUBJECTS, seed: int = SEED) -> ColumnarPopulation:
    return synthetic_columnar(
        n_subjects,
        n_archetypes=min(7, n_subjects),
        seed=seed,
        malicious_fraction=0.25,
        feedback_noise=0.3,
        rating_noise=0.35,
    )


def _round_inputs(columnar: ColumnarPopulation):
    assignment = DynamicContractPolicy(mu=1.0, delta=False).contracts_columnar(
        columnar
    )
    excluded = np.zeros(columnar.n_subjects, dtype=bool)
    excluded[::13] = True
    return assignment, excluded


def _sequential_rounds(columnar, assignment, excluded, lagged, n_rounds, seed=3):
    rng = np.random.default_rng(seed)
    previous = np.zeros(columnar.n_subjects)
    return [
        fast_columnar_step(columnar, assignment, excluded, previous, lagged, rng)
        for _ in range(n_rounds)
    ], previous


def _parallel_rounds(engine, columnar, assignment, excluded, lagged, n_rounds, seed=3):
    rng = np.random.default_rng(seed)
    previous = np.zeros(columnar.n_subjects)
    return [
        parallel_columnar_step(
            columnar, assignment, excluded, previous, lagged, rng, engine
        )
        for _ in range(n_rounds)
    ], previous


def _shm_segments() -> list:
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return sorted(root.glob(f"{SHM_NAME_PREFIX}-*"))


@pytest.mark.parametrize("lagged", [False, True])
@pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
def test_parallel_step_bit_identical(n_workers, lagged):
    """Any shard count reproduces the sequential kernel bit for bit,
    round after round, including the lagged-feedback column mutation."""
    columnar = _columnar()
    assignment, excluded = _round_inputs(columnar)
    reference, reference_previous = _sequential_rounds(
        columnar, assignment, excluded, lagged, n_rounds=3
    )
    with ParallelRoundEngine(columnar, n_workers=n_workers) as engine:
        produced, produced_previous = _parallel_rounds(
            engine, columnar, assignment, excluded, lagged, n_rounds=3
        )
        assert engine.n_workers == min(n_workers, columnar.n_subjects)
        assert not engine.degraded
    for parallel_result, sequential_result in zip(produced, reference):
        require_parallel_steps_agree(parallel_result, sequential_result)
    assert np.array_equal(produced_previous, reference_previous)


def test_shard_edges_cover_all_rows():
    columnar = _columnar()
    with ParallelRoundEngine(columnar, n_workers=3) as engine:
        edges = engine.shard_edges
        assert edges[0] == 0
        assert edges[-1] == columnar.n_subjects
        assert list(edges) == sorted(edges)
        assert len(engine.worker_pids()) == engine.n_workers


@settings(max_examples=8, deadline=None)
@given(
    n_workers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=5),
)
def test_parallel_step_bit_identical_property(n_workers, seed):
    """Hypothesis property: shard count and population seed never leak
    into the outputs — one round, exact equality of every column."""
    columnar = _columnar(n_subjects=41, seed=seed)
    assignment, excluded = _round_inputs(columnar)
    reference, _ = _sequential_rounds(
        columnar, assignment, excluded, True, n_rounds=1, seed=seed
    )
    with ParallelRoundEngine(columnar, n_workers=n_workers) as engine:
        produced, _ = _parallel_rounds(
            engine, columnar, assignment, excluded, True, n_rounds=1, seed=seed
        )
    require_parallel_steps_agree(produced[0], reference[0])


def test_all_excluded_round_short_circuits():
    """A fully excluded round returns zeros without touching the pool."""
    columnar = _columnar(n_subjects=11)
    assignment, _ = _round_inputs(columnar)
    excluded = np.ones(columnar.n_subjects, dtype=bool)
    rng = np.random.default_rng(0)
    state_before = rng.bit_generator.state
    with ParallelRoundEngine(columnar, n_workers=2) as engine:
        result = parallel_columnar_step(
            columnar,
            assignment,
            excluded,
            np.zeros(columnar.n_subjects),
            False,
            rng,
            engine,
        )
    assert not result.active.any()
    assert result.benefit == 0.0
    assert result.total_compensation == 0.0
    # No active rows -> no draws consumed; the generator is untouched.
    assert rng.bit_generator.state == state_before


def _simulation(population, round_workers=None):
    return MarketplaceSimulation(
        population,
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=False),
        seed=7,
        lagged_payment=True,
        fast_rounds=True,
        round_workers=round_workers,
    )


def test_simulation_round_workers_bit_identical(monkeypatch):
    """`MarketplaceSimulation(round_workers=w)` equals the sequential
    engine ledger-for-ledger, cross-checked by the in-path
    `require_parallel_steps_agree` contract every round."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    n_workers = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))
    reference = _simulation(_columnar()).run(3)
    simulation = _simulation(_columnar(), round_workers=n_workers)
    try:
        produced = simulation.run(3)
    finally:
        simulation.close()
    assert isinstance(produced, SimulationLedger)
    assert isinstance(reference, SimulationLedger)
    require_ledgers_agree(produced, reference)


def test_simulation_round_workers_matches_object_path():
    """The sharded engine agrees with the object-based population too."""
    reference = MarketplaceSimulation(
        synthetic_population(
            n_subjects=14, n_archetypes=5, seed=SEED, feedback_noise=0.3
        ),
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=False),
        seed=7,
        fast_rounds=True,
    ).run(4)
    columnar = ColumnarPopulation.from_population(
        synthetic_population(
            n_subjects=14, n_archetypes=5, seed=SEED, feedback_noise=0.3
        )
    )
    with _simulation_context(columnar, round_workers=2) as simulation:
        produced = simulation.run(4)
    require_ledgers_agree(produced, reference)


def _simulation_context(population, round_workers):
    simulation = MarketplaceSimulation(
        population,
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=False),
        seed=7,
        fast_rounds=True,
        round_workers=round_workers,
    )
    return simulation


def test_sigkilled_worker_falls_back_bit_identically():
    """SIGKILL a shard mid-sequence: the engine retires it, recomputes
    its slice inline over the same arrays, reports `degraded`, and every
    subsequent round stays bit-identical to the sequential kernel."""
    columnar = _columnar()
    assignment, excluded = _round_inputs(columnar)
    reference, _ = _sequential_rounds(
        columnar, assignment, excluded, True, n_rounds=3
    )
    rng = np.random.default_rng(3)
    previous = np.zeros(columnar.n_subjects)
    with ParallelRoundEngine(columnar, n_workers=3) as engine:
        first = parallel_columnar_step(
            columnar, assignment, excluded, previous, True, rng, engine
        )
        require_parallel_steps_agree(first, reference[0])
        victim = engine.worker_pids()[1]
        os.kill(victim, signal.SIGKILL)
        # The killed child stays a zombie until the engine reaps it; the
        # shard pipe reports EOF regardless, which is what run_round
        # detects.  A short pause lets the signal land.
        time.sleep(0.2)
        for sequential_result in reference[1:]:
            produced = parallel_columnar_step(
                columnar, assignment, excluded, previous, True, rng, engine
            )
            require_parallel_steps_agree(produced, sequential_result)
        assert engine.degraded
    assert not _shm_segments()


def test_close_unlinks_segment_and_is_idempotent():
    columnar = _columnar(n_subjects=13)
    engine = ParallelRoundEngine(columnar, n_workers=2)
    name = engine.segment_name
    assert any(name in str(path) for path in _shm_segments())
    engine.close()
    engine.close()
    assert not any(name in str(path) for path in _shm_segments())
    with pytest.raises(SimulationError, match="closed"):
        engine.run_round(
            columnar,
            _round_inputs(columnar)[0],
            np.zeros(13, dtype=bool),
            np.zeros(13),
            False,
            np.zeros(13, dtype=bool),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            0,
            None,
        )


def test_finalizer_unlinks_segment_on_gc():
    engine = ParallelRoundEngine(_columnar(n_subjects=9), n_workers=1)
    name = engine.segment_name
    del engine
    gc.collect()
    assert not any(name in str(path) for path in _shm_segments())


def test_replaced_population_column_fails_loudly():
    """Swapping a behaviour column after the snapshot must raise, not
    silently serve stale columns from the segment."""
    columnar = _columnar(n_subjects=17)
    assignment, excluded = _round_inputs(columnar)
    with ParallelRoundEngine(columnar, n_workers=2) as engine:
        columnar.feedback_noise = columnar.feedback_noise.copy()
        with pytest.raises(SimulationError, match="replaced"):
            parallel_columnar_step(
                columnar,
                assignment,
                excluded,
                np.zeros(columnar.n_subjects),
                False,
                np.random.default_rng(0),
                engine,
            )


def test_different_population_fails_loudly():
    columnar = _columnar(n_subjects=17)
    other = _columnar(n_subjects=17)
    assignment, excluded = _round_inputs(other)
    with ParallelRoundEngine(columnar, n_workers=2) as engine:
        with pytest.raises(SimulationError, match="different population"):
            parallel_columnar_step(
                other,
                assignment,
                excluded,
                np.zeros(17),
                False,
                np.random.default_rng(0),
                engine,
            )


def test_engine_validates_arguments():
    with pytest.raises(SimulationError, match="ColumnarPopulation"):
        ParallelRoundEngine(
            synthetic_population(n_subjects=4, n_archetypes=2, seed=0),
            n_workers=2,
        )
    with pytest.raises(SimulationError, match="n_workers"):
        ParallelRoundEngine(_columnar(n_subjects=4), n_workers=0)
    with pytest.raises(SimulationError, match="round_workers"):
        _simulation(_columnar(n_subjects=4), round_workers=0)


def test_more_workers_than_subjects_clamps():
    columnar = _columnar(n_subjects=3)
    assignment, excluded = _round_inputs(columnar)
    reference, _ = _sequential_rounds(
        columnar, assignment, excluded, False, n_rounds=1
    )
    with ParallelRoundEngine(columnar, n_workers=8) as engine:
        assert engine.n_workers == 3
        produced, _ = _parallel_rounds(
            engine, columnar, assignment, excluded, False, n_rounds=1
        )
    require_parallel_steps_agree(produced[0], reference[0])


def test_require_parallel_steps_agree_reports_divergence():
    columnar = _columnar(n_subjects=9)
    assignment, excluded = _round_inputs(columnar)
    reference, _ = _sequential_rounds(
        columnar, assignment, excluded, False, n_rounds=1
    )
    with ParallelRoundEngine(columnar, n_workers=2) as engine:
        produced, _ = _parallel_rounds(
            engine, columnar, assignment, excluded, False, n_rounds=1
        )
    tampered = produced[0].efforts.copy()
    tampered[4] += 1e-9
    from dataclasses import replace

    with pytest.raises(Exception, match="efforts"):
        require_parallel_steps_agree(
            replace(produced[0], efforts=tampered), reference[0]
        )
