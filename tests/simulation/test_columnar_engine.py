"""Columnar engine equivalence: `fast_columnar_step` / `legacy_columnar_step`.

The contract is bit-identity: a `ColumnarPopulation` routed through
either columnar kernel must produce the same ledger — every outcome
field, every reduction — as the object-based engine on the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.serving.pool import ColumnarDeltaState, ContractAssignment
from repro.simulation import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    MarketplaceSimulation,
    RetentionModel,
    RetentionSimulation,
    SimulationLedger,
    StreamingLedger,
    require_ledgers_agree,
)
from repro.simulation.engine import (
    PaymentCache,
    _payment_function,
    fast_columnar_step,
    legacy_columnar_step,
)
from repro.workers import synthetic_population
from repro.workers.columnar import ColumnarPopulation

SEED = 21


def _population():
    return synthetic_population(
        n_subjects=14, n_archetypes=5, seed=SEED, feedback_noise=0.3
    )


def _columnar():
    return ColumnarPopulation.from_population(_population())


POLICIES = [
    ("dynamic", lambda: DynamicContractPolicy(mu=1.0, delta=False)),
    ("dynamic-delta", lambda: DynamicContractPolicy(mu=1.0, delta=True)),
    (
        "exclusion",
        lambda: ExclusionPolicy(DynamicContractPolicy(mu=1.0, delta=False)),
    ),
    ("fixed", lambda: FixedPaymentPolicy(pay_per_member=0.4)),
]


def _run(population, policy, fast_rounds, lagged=False, ledger=None, n=4):
    simulation = MarketplaceSimulation(
        population,
        RequesterObjective(),
        policy,
        seed=7,
        lagged_payment=lagged,
        fast_rounds=fast_rounds,
        ledger=ledger,
    )
    return simulation.run(n)


@pytest.mark.parametrize("lagged", [False, True])
@pytest.mark.parametrize("fast_rounds", [False, True])
@pytest.mark.parametrize("name,policy_factory", POLICIES)
def test_columnar_engine_bit_identical(name, policy_factory, fast_rounds, lagged):
    reference = _run(_population(), policy_factory(), fast_rounds, lagged)
    produced = _run(_columnar(), policy_factory(), fast_rounds, lagged)
    assert isinstance(reference, SimulationLedger)
    assert isinstance(produced, SimulationLedger)
    require_ledgers_agree(produced, reference)


def test_columnar_cross_verified_under_invariants(monkeypatch):
    """REPRO_CHECK_INVARIANTS replays every fast columnar round through
    the legacy escape hatch and demands exact agreement."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    produced = _run(
        _columnar(), DynamicContractPolicy(mu=1.0, delta=True), True, lagged=True
    )
    reference = _run(
        _population(), DynamicContractPolicy(mu=1.0, delta=True), True, lagged=True
    )
    assert isinstance(produced, SimulationLedger)
    assert isinstance(reference, SimulationLedger)
    require_ledgers_agree(produced, reference)


@pytest.mark.parametrize("redesign_every", [2, 3])
def test_columnar_redesign_cadence(redesign_every):
    def build(population):
        return MarketplaceSimulation(
            population,
            RequesterObjective(),
            DynamicContractPolicy(mu=1.0, delta=False),
            seed=7,
            redesign_every=redesign_every,
            fast_rounds=True,
        )

    reference = build(_population()).run(5)
    produced = build(_columnar()).run(5)
    assert isinstance(produced, SimulationLedger)
    assert isinstance(reference, SimulationLedger)
    require_ledgers_agree(produced, reference)


@pytest.mark.parametrize("fast_rounds", [False, True])
def test_columnar_retention_matches_object_path(fast_rounds):
    def build(population):
        return RetentionSimulation(
            population,
            RequesterObjective(),
            FixedPaymentPolicy(pay_per_member=0.05),
            retention=RetentionModel(reservation_utility=0.2, patience=2),
            seed=5,
            fast_rounds=fast_rounds,
        )

    reference_sim = build(_population())
    produced_sim = build(_columnar())
    reference = reference_sim.run(6)
    produced = produced_sim.run(6)
    assert isinstance(produced, SimulationLedger)
    assert isinstance(reference, SimulationLedger)
    require_ledgers_agree(produced, reference)
    assert produced_sim.departed == reference_sim.departed
    assert produced_sim.retention_rate() == reference_sim.retention_rate()


def test_streaming_ledger_rejects_adaptive_policies():
    from repro.simulation import AdaptiveDynamicPolicy

    population = _population()
    policy = AdaptiveDynamicPolicy(mu=1.0)
    with pytest.raises(SimulationError, match="observe"):
        MarketplaceSimulation(
            population,
            RequesterObjective(),
            policy,
            ledger=StreamingLedger(),
        )


class TestColumnarDeltaState:
    def test_first_epoch_solves_everything(self):
        columnar = _columnar()
        policy = DynamicContractPolicy(mu=1.0, delta=True)
        assignment = policy.contracts_columnar(columnar)
        stats = policy.redesign_stats()
        assert isinstance(assignment, ContractAssignment)
        assert stats is not None
        assert stats.n_subjects == columnar.n_subjects
        assert stats.n_dirty == columnar.n_subjects

    def test_unchanged_population_reuses_all(self):
        columnar = _columnar()
        policy = DynamicContractPolicy(mu=1.0, delta=True)
        first = policy.contracts_columnar(columnar)
        second = policy.contracts_columnar(columnar)
        stats = policy.redesign_stats()
        assert stats is not None
        assert stats.n_dirty == 0
        assert stats.reuse_rate == 1.0
        assert np.array_equal(first.codes, second.codes)
        for a, b in zip(first.contracts, second.contracts):
            assert a.content_key() == b.content_key()

    def test_single_subject_mutation_dirties_one_archetype(self):
        columnar = _columnar()
        policy = DynamicContractPolicy(mu=1.0, delta=True)
        policy.contracts_columnar(columnar)
        weights = columnar.design_weight.copy()
        row = 0
        weights[row] = weights[row] * 2.0 + 1.0
        columnar.update_design_columns(design_weight=weights)
        policy.contracts_columnar(columnar)
        stats = policy.redesign_stats()
        assert stats is not None
        # Only the mutated row's (now unique) archetype re-solves.
        assert stats.n_dirty == 1
        assert 0.0 < stats.reuse_rate < 1.0

    def test_delta_state_is_consistent_with_fresh_solve(self):
        columnar_a = _columnar()
        columnar_b = _columnar()
        delta_policy = DynamicContractPolicy(mu=1.0, delta=True)
        fresh_policy = DynamicContractPolicy(mu=1.0, delta=False)
        delta_policy.contracts_columnar(columnar_a)
        reused = delta_policy.contracts_columnar(columnar_a)
        fresh = fresh_policy.contracts_columnar(columnar_b)
        mapping_reused = reused.to_mapping(columnar_a)
        mapping_fresh = fresh.to_mapping(columnar_b)
        assert set(mapping_reused) == set(mapping_fresh)
        for subject_id, contract in mapping_fresh.items():
            assert (
                mapping_reused[subject_id].content_key()
                == contract.content_key()
            )

    def test_resolve_requires_columnar_population(self):
        state = ColumnarDeltaState()
        assert state.last_stats is None


class TestPaymentCacheContentKey:
    def test_value_equal_contract_hits_cache(self):
        """Satellite regression: delta-reused contracts are rebuilt as
        new objects; the payment cache must hit on content, not `is`."""
        columnar = _columnar()
        policy = DynamicContractPolicy(mu=1.0, delta=False)
        first = policy.contracts_columnar(columnar).contracts[0]
        second = policy.contracts_columnar(columnar).contracts[0]
        assert first is not second
        assert first.content_key() == second.content_key()
        cache = PaymentCache()
        function_first = _payment_function(first, "@contract:0", cache)
        function_second = _payment_function(second, "@contract:0", cache)
        assert function_second is function_first
        # The content hit refreshed the stored object: identity now hits.
        entry = cache.get("@contract:0")
        assert entry is not None and entry[0] is second

    def test_different_contract_misses_cache(self):
        columnar = _columnar()
        assignment = DynamicContractPolicy(mu=1.0).contracts_columnar(columnar)
        contracts = assignment.contracts
        assert len(contracts) >= 2
        cache = PaymentCache()
        function_a = _payment_function(contracts[0], "@contract:0", cache)
        function_b = _payment_function(contracts[1], "@contract:0", cache)
        assert function_a is not function_b
        entry = cache.get("@contract:0")
        assert entry is not None and entry[0] is contracts[1]

    def test_cross_round_cache_reuse_in_simulation(self):
        """A no-delta dynamic run redesigns every round with value-equal
        contracts; the engine-level payment cache must keep hitting."""
        simulation = MarketplaceSimulation(
            _columnar(),
            RequesterObjective(),
            DynamicContractPolicy(mu=1.0, delta=False),
            seed=7,
            fast_rounds=True,
        )
        simulation.step()
        cache = simulation._payment_cache
        functions_before = {
            key: cache.get(key)[1] for key in cache.keys()
        }
        assert functions_before
        simulation.step()
        for key, function in functions_before.items():
            entry = cache.get(key)
            assert entry is not None and entry[1] is function


def test_kernel_signatures_cover_escape_hatch():
    """Both columnar kernels agree on one hand-built round."""
    columnar = _columnar()
    policy = DynamicContractPolicy(mu=1.0, delta=False)
    assignment = policy.contracts_columnar(columnar)
    excluded = np.zeros(columnar.n_subjects, dtype=bool)
    excluded[2] = True
    rng_fast = np.random.default_rng(3)
    rng_legacy = np.random.default_rng(3)
    previous = np.zeros(columnar.n_subjects)
    result = fast_columnar_step(
        columnar, assignment, excluded, previous, False, rng_fast
    )
    reference = legacy_columnar_step(
        columnar, assignment, excluded, policy, None, {}, False, rng_legacy
    )
    assert result.benefit == reference.benefit
    assert result.total_compensation == reference.total_compensation
    for row in range(columnar.n_subjects):
        outcome = reference.outcomes[columnar.subject_id(row)]
        assert result.active[row] == (not outcome.excluded)
        assert result.efforts[row] == outcome.effort
        assert result.feedback[row] == outcome.feedback
        assert result.compensation[row] == outcome.compensation
