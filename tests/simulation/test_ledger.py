"""Tests for the simulation ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import RoundRecord, SimulationLedger, SubjectRoundOutcome
from repro.types import WorkerType


def _outcome(subject_id, worker_type, compensation=1.0, excluded=False, n_members=1):
    return SubjectRoundOutcome(
        subject_id=subject_id,
        worker_type=worker_type,
        effort=2.0,
        feedback=3.0,
        compensation=compensation,
        feedback_weight=1.5,
        excluded=excluded,
        n_members=n_members,
    )


def _record(index, outcomes):
    benefit = sum(o.requester_value for o in outcomes.values())
    pay = sum(o.compensation for o in outcomes.values())
    return RoundRecord(
        round_index=index,
        outcomes=outcomes,
        benefit=benefit,
        total_compensation=pay,
        utility=benefit - pay,
    )


class TestOutcome:
    def test_requester_value(self):
        outcome = _outcome("w", WorkerType.HONEST)
        assert outcome.requester_value == pytest.approx(1.5 * 3.0)

    def test_excluded_contributes_nothing(self):
        outcome = _outcome("w", WorkerType.HONEST, excluded=True)
        assert outcome.requester_value == 0.0

    def test_per_member_compensation(self):
        outcome = _outcome("c", WorkerType.COLLUSIVE_MALICIOUS, compensation=6.0, n_members=3)
        assert outcome.per_member_compensation == pytest.approx(2.0)


class TestLedger:
    def test_rounds_must_be_sequential(self):
        ledger = SimulationLedger()
        ledger.append(_record(0, {"w": _outcome("w", WorkerType.HONEST)}))
        with pytest.raises(SimulationError):
            ledger.append(_record(2, {"w": _outcome("w", WorkerType.HONEST)}))

    def test_series_and_totals(self):
        ledger = SimulationLedger()
        for index in range(3):
            ledger.append(_record(index, {"w": _outcome("w", WorkerType.HONEST)}))
        series = ledger.utility_series()
        assert series.shape == (3,)
        assert ledger.total_utility() == pytest.approx(series.sum())
        assert ledger.cumulative_utility()[-1] == pytest.approx(series.sum())

    def test_empty_ledger_summary(self):
        ledger = SimulationLedger()
        summary = ledger.summary()
        assert summary["n_rounds"] == 0.0
        assert ledger.total_utility() == 0.0

    def test_compensation_by_type(self):
        ledger = SimulationLedger()
        outcomes = {
            "h": _outcome("h", WorkerType.HONEST, compensation=2.0),
            "c": _outcome(
                "c", WorkerType.COLLUSIVE_MALICIOUS, compensation=6.0, n_members=3
            ),
        }
        ledger.append(_record(0, outcomes))
        by_type = ledger.compensation_by_type()
        assert by_type[WorkerType.HONEST][0] == pytest.approx(2.0)
        assert by_type[WorkerType.COLLUSIVE_MALICIOUS][0] == pytest.approx(2.0)
        assert by_type[WorkerType.NONCOLLUSIVE_MALICIOUS][0] == 0.0

    def test_mean_effort_by_type(self):
        ledger = SimulationLedger()
        outcomes = {
            "c": _outcome("c", WorkerType.COLLUSIVE_MALICIOUS, n_members=2),
        }
        ledger.append(_record(0, outcomes))
        efforts = ledger.mean_effort_by_type()
        assert efforts[WorkerType.COLLUSIVE_MALICIOUS] == pytest.approx(1.0)

    def test_summary_totals(self):
        ledger = SimulationLedger()
        ledger.append(_record(0, {"w": _outcome("w", WorkerType.HONEST)}))
        summary = ledger.summary()
        assert summary["n_rounds"] == 1.0
        assert summary["total_compensation"] == pytest.approx(1.0)
