"""Tests for retention dynamics."""

from __future__ import annotations

import pytest

from repro.core.designer import DesignerConfig
from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import (
    DynamicContractPolicy,
    FixedPaymentPolicy,
    RetentionModel,
    RetentionSimulation,
)
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


@pytest.fixture()
def population(small_trace, small_clusters, small_proxy, small_malice):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:40],
    )


@pytest.fixture()
def objective():
    return RequesterObjective(RequesterParameters(mu=1.0))


class TestRetentionModel:
    def test_patience_validated(self):
        with pytest.raises(SimulationError):
            RetentionModel(patience=0)

    def test_defaults(self):
        model = RetentionModel()
        assert model.patience >= 1


class TestRetentionSimulation:
    def test_zero_reservation_retains_everyone(self, population, objective):
        simulation = RetentionSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            retention=RetentionModel(reservation_utility=-1.0, patience=1),
            seed=0,
        )
        simulation.run(3)
        assert simulation.retention_rate() == 1.0
        assert simulation.departed == set()

    def test_surplus_extraction_drains_pool(self, population, objective):
        """The paper's minimal-pay contract leaves honest workers at
        ~zero utility; a positive reservation empties the pool."""
        simulation = RetentionSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            retention=RetentionModel(reservation_utility=0.5, patience=2),
            seed=0,
        )
        simulation.run(5)
        assert simulation.retention_rate(WorkerType.HONEST) < 0.2

    def test_participation_floor_restores_retention(
        self, population, objective
    ):
        simulation = RetentionSimulation(
            population,
            objective,
            DynamicContractPolicy(
                mu=1.0, config=DesignerConfig(base_pay=0.8)
            ),
            retention=RetentionModel(reservation_utility=0.5, patience=2),
            seed=0,
        )
        simulation.run(5)
        assert simulation.retention_rate(WorkerType.HONEST) >= 0.95

    def test_departed_subjects_stay_gone(self, population, objective):
        simulation = RetentionSimulation(
            population,
            objective,
            FixedPaymentPolicy(pay_per_member=0.0),
            retention=RetentionModel(reservation_utility=0.5, patience=1),
            seed=0,
        )
        simulation.run(2)
        departed = simulation.departed
        assert departed
        record = simulation.step()
        for subject_id in departed:
            assert record.outcomes[subject_id].excluded
            assert record.outcomes[subject_id].compensation == 0.0

    def test_patience_delays_departure(self, population, objective):
        impatient = RetentionSimulation(
            population,
            objective,
            FixedPaymentPolicy(pay_per_member=0.0),
            retention=RetentionModel(reservation_utility=0.5, patience=1),
            seed=0,
        )
        impatient.step()
        patient = RetentionSimulation(
            population,
            objective,
            FixedPaymentPolicy(pay_per_member=0.0),
            retention=RetentionModel(reservation_utility=0.5, patience=3),
            seed=0,
        )
        patient.step()
        assert len(impatient.departed) > 0
        assert len(patient.departed) == 0

    def test_retention_rate_type_filter(self, population, objective):
        simulation = RetentionSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            retention=RetentionModel(reservation_utility=-1.0),
            seed=0,
        )
        simulation.run(1)
        assert simulation.retention_rate(WorkerType.COLLUSIVE_MALICIOUS) == 1.0


class TestWorkerUtilityBookkeeping:
    def test_worker_utility_formula(self, population, objective):
        from repro.simulation import MarketplaceSimulation

        simulation = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(mu=1.0), seed=0
        )
        record = simulation.step()
        for subject_id, outcome in record.outcomes.items():
            if outcome.excluded:
                continue
            agent = population.agents[subject_id]
            expected = (
                outcome.compensation
                + agent.params.omega * outcome.feedback
                - agent.params.beta * outcome.effort
            )
            assert outcome.worker_utility == pytest.approx(expected)
