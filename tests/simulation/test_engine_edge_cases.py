"""Edge-case and failure-injection tests for the marketplace engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.simulation import (
    DynamicContractPolicy,
    FixedPaymentPolicy,
    MarketplaceSimulation,
)
from repro.types import RequesterParameters, WorkerType
from repro.workers import BehaviorConfig, build_population


@pytest.fixture()
def noisy_population(small_trace, small_clusters, small_proxy, small_malice):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        behavior=BehaviorConfig(feedback_noise=0.5),
        honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:40],
    )


@pytest.fixture()
def objective():
    return RequesterObjective(RequesterParameters(mu=1.0))


class TestNoisyFeedback:
    def test_rounds_vary_under_noise(self, noisy_population, objective):
        ledger = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=0
        ).run(4)
        series = ledger.utility_series()
        assert np.std(series) > 0.0

    def test_same_seed_reproduces_exactly(self, noisy_population, objective):
        first = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=5
        ).run(3)
        second = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=5
        ).run(3)
        assert first.utility_series().tolist() == second.utility_series().tolist()

    def test_pay_follows_realized_not_expected_feedback(
        self, noisy_population, objective
    ):
        simulation = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=1
        )
        record = simulation.step()
        contracts = simulation._contracts
        for subject_id, outcome in record.outcomes.items():
            if outcome.excluded:
                continue
            contract = contracts[subject_id]
            assert outcome.compensation == pytest.approx(
                contract.pay_for_feedback(outcome.feedback)
            )


class TestRedesignCadence:
    def test_redesign_every_caches_contracts(self, noisy_population, objective):
        class CountingPolicy(FixedPaymentPolicy):
            def __init__(self):
                super().__init__(pay_per_member=1.0)
                self.calls = 0

            def contracts(self, population):
                self.calls += 1
                return super().contracts(population)

        policy = CountingPolicy()
        MarketplaceSimulation(
            noisy_population, objective, policy, seed=0, redesign_every=3
        ).run(7)
        # Rounds 0, 3 and 6 trigger a redesign.
        assert policy.calls == 3

    def test_redesign_every_one_calls_each_round(
        self, noisy_population, objective
    ):
        class CountingPolicy(FixedPaymentPolicy):
            def __init__(self):
                super().__init__(pay_per_member=1.0)
                self.calls = 0

            def contracts(self, population):
                self.calls += 1
                return super().contracts(population)

        policy = CountingPolicy()
        MarketplaceSimulation(
            noisy_population, objective, policy, seed=0, redesign_every=1
        ).run(4)
        assert policy.calls == 4


class TestLedgerViews:
    def test_compensation_by_type_single_filter(
        self, noisy_population, objective
    ):
        ledger = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=0
        ).run(2)
        only_honest = ledger.compensation_by_type(WorkerType.HONEST)
        assert set(only_honest) == {WorkerType.HONEST}
        assert only_honest[WorkerType.HONEST].shape == (2,)

    def test_summary_matches_series(self, noisy_population, objective):
        ledger = MarketplaceSimulation(
            noisy_population, objective, DynamicContractPolicy(mu=1.0), seed=0
        ).run(3)
        summary = ledger.summary()
        assert summary["n_rounds"] == 3.0
        assert summary["total_utility"] == pytest.approx(
            float(ledger.utility_series().sum())
        )
        assert summary["mean_round_utility"] == pytest.approx(
            float(ledger.utility_series().mean())
        )
