"""Delta-aware redesign: only subjects whose subproblem moved re-solve.

Covers the dirty-set semantics end to end: a static population costs
zero re-solves after round 0, a single changed subject dirties exactly
itself, value-equal replacement objects are recognized as clean via the
serving fingerprint, the adaptive policy stops re-solving once its
estimates freeze, and the ``simulation.round`` span / ledger carry the
``n_dirty`` / ``reuse_rate`` provenance.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.effort import QuadraticEffort
from repro.core.utility import RequesterObjective
from repro.obs.trace import Tracer, set_tracer
from repro.serving import RedesignStats
from repro.simulation import (
    AdaptiveDynamicPolicy,
    DynamicContractPolicy,
    MarketplaceSimulation,
)
from repro.workers import synthetic_population

N_SUBJECTS = 24


@pytest.fixture()
def population():
    return synthetic_population(
        N_SUBJECTS, n_archetypes=6, seed=2, feedback_noise=0.2
    )


def _run(population, policy, n_rounds=4, **kwargs):
    simulation = MarketplaceSimulation(
        population, RequesterObjective(), policy, seed=9, **kwargs
    )
    return simulation.run(n_rounds)


def test_static_population_resolves_zero_after_round0(population):
    ledger = _run(population, DynamicContractPolicy(mu=1.0, delta=True))
    assert ledger.records[0].n_dirty == N_SUBJECTS
    assert ledger.records[0].reuse_rate == 0.0
    for record in ledger.records[1:]:
        assert record.n_dirty == 0
        assert record.reuse_rate == 1.0
    assert ledger.mean_reuse_rate() == pytest.approx(3 / 4)


def test_delta_disabled_resolves_everything(population):
    ledger = _run(population, DynamicContractPolicy(mu=1.0, delta=False))
    for record in ledger.records:
        assert record.n_dirty == N_SUBJECTS
        assert record.reuse_rate == 0.0


def test_redesign_cadence_leaves_non_redesign_rounds_unstamped(population):
    ledger = _run(
        population,
        DynamicContractPolicy(mu=1.0, delta=True),
        redesign_every=2,
    )
    assert ledger.records[0].n_dirty == N_SUBJECTS
    assert ledger.records[1].n_dirty is None  # no redesign happened
    assert ledger.records[1].reuse_rate is None
    assert ledger.records[2].n_dirty == 0


def test_flipping_one_subject_dirties_exactly_that_subject(population):
    policy = DynamicContractPolicy(mu=1.0, delta=True)
    policy.contracts(population)
    flipped = population.subproblems[3]
    changed = replace(
        flipped,
        effort_function=QuadraticEffort(
            r2=flipped.effort_function.r2,
            r1=flipped.effort_function.r1 + 1.0,
            r0=flipped.effort_function.r0,
        ),
    )
    subproblems = list(population.subproblems)
    subproblems[3] = changed
    stats = None
    policy.contracts(replace(population, subproblems=subproblems))
    stats = policy.redesign_stats()
    assert stats == RedesignStats(n_subjects=N_SUBJECTS, n_dirty=1)
    assert stats.reuse_rate == pytest.approx(1.0 - 1.0 / N_SUBJECTS)


def test_value_equal_replacement_object_is_clean(population):
    policy = DynamicContractPolicy(mu=1.0, delta=True)
    policy.contracts(population)
    subproblems = list(population.subproblems)
    # A brand-new object with identical contents: the identity check
    # misses, the fingerprint check must still recognize it as clean.
    subproblems[0] = replace(subproblems[0])
    assert subproblems[0] is not population.subproblems[0]
    policy.contracts(replace(population, subproblems=subproblems))
    assert policy.redesign_stats().n_dirty == 0


def test_adaptive_policy_stops_resolving_after_freeze(population):
    policy = AdaptiveDynamicPolicy(mu=1.0, delta=True, freeze_after=1)
    ledger = _run(population, policy, n_rounds=5)
    # Round 0 designs from priors, round 1 from the first observation;
    # from round 2 on the frozen estimates reproduce identical weights
    # and the dirty set collapses.
    assert ledger.records[0].n_dirty == N_SUBJECTS
    for record in ledger.records[2:]:
        assert record.n_dirty == 0
        assert record.reuse_rate == 1.0


def test_round_span_reports_dirty_set_and_reuse(population):
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        _run(population, DynamicContractPolicy(mu=1.0, delta=True))
    finally:
        set_tracer(previous)
    rounds = [s for s in tracer.spans() if s.name == "simulation.round"]
    assert len(rounds) == 4
    assert rounds[0].attributes["n_dirty"] == N_SUBJECTS
    for span in rounds[1:]:
        assert span.attributes["n_dirty"] == 0
        assert span.attributes["reuse_rate"] == 1.0
        assert span.attributes["round_fastpath"] in (True, False)


def test_fastpath_env_gates_delta_default(population, monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    ledger = _run(population, DynamicContractPolicy(mu=1.0), n_rounds=2)
    assert all(r.n_dirty == N_SUBJECTS for r in ledger.records)
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    ledger = _run(population, DynamicContractPolicy(mu=1.0), n_rounds=2)
    assert ledger.records[1].n_dirty == 0


def test_reuse_is_cross_verified_under_invariants(population, monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    ledger = _run(population, DynamicContractPolicy(mu=1.0, delta=True))
    assert ledger.records[-1].reuse_rate == 1.0
