"""Tests for the paper-literal lagged payment timing (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.simulation import DynamicContractPolicy, MarketplaceSimulation
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


@pytest.fixture()
def population(small_trace, small_clusters, small_proxy, small_malice):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:30],
    )


@pytest.fixture()
def objective():
    return RequesterObjective(RequesterParameters(mu=1.0))


class TestLaggedPayment:
    def test_first_round_pays_zero_feedback_value(self, population, objective):
        simulation = MarketplaceSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            seed=0,
            lagged_payment=True,
        )
        record = simulation.step()
        contracts = simulation._contracts
        for subject_id, outcome in record.outcomes.items():
            if outcome.excluded:
                continue
            expected = contracts[subject_id].pay_for_feedback(0.0)
            assert outcome.compensation == pytest.approx(expected)

    def test_second_round_pays_first_rounds_feedback(
        self, population, objective
    ):
        simulation = MarketplaceSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            seed=0,
            lagged_payment=True,
        )
        first = simulation.step()
        second = simulation.step()
        contracts = simulation._contracts
        for subject_id, outcome in second.outcomes.items():
            if outcome.excluded:
                continue
            expected = contracts[subject_id].pay_for_feedback(
                first.outcomes[subject_id].feedback
            )
            assert outcome.compensation == pytest.approx(expected)

    def test_steady_state_matches_unlagged(self, population, objective):
        """Noise-free and stationary, the lagged run pays the same per
        round from round 1 on (feedback is constant across rounds)."""
        lagged = MarketplaceSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            seed=0,
            lagged_payment=True,
        ).run(4)
        unlagged = MarketplaceSimulation(
            population,
            objective,
            DynamicContractPolicy(mu=1.0),
            seed=0,
            lagged_payment=False,
        ).run(4)
        lagged_series = lagged.utility_series()
        unlagged_series = unlagged.utility_series()
        # From round 1 on the two accountings agree exactly.
        assert lagged_series[1:] == pytest.approx(unlagged_series[1:])
        # Round 0 pays less under the lag (no history to reward yet).
        assert lagged_series[0] >= unlagged_series[0]
