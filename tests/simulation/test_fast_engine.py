"""The fast round kernel is bit-identical to the legacy loop.

``require_ledgers_agree`` (exact equality, no tolerance) across every
policy shape, payment timing, and — via hypothesis — random populations,
seeds and cadences.  A failure here means the vectorized kernel skewed
the draw stream, reordered a reduction, or dropped a subject.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import InvariantViolation
from repro.core.utility import RequesterObjective
from repro.simulation import (
    AdaptiveDynamicPolicy,
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    MarketplaceSimulation,
    RetentionSimulation,
    StepOutcomes,
    require_ledgers_agree,
    require_steps_agree,
)
from repro.workers import synthetic_population


def _ledger(population, policy, fast_rounds, lagged=False, n_rounds=4,
            redesign_every=1, seed=7):
    simulation = MarketplaceSimulation(
        population,
        RequesterObjective(),
        policy,
        seed=seed,
        redesign_every=redesign_every,
        lagged_payment=lagged,
        fast_rounds=fast_rounds,
    )
    return simulation.run(n_rounds)


def _policies():
    return [
        ("dynamic", lambda: DynamicContractPolicy(mu=1.0)),
        ("adaptive", lambda: AdaptiveDynamicPolicy(mu=1.0)),
        ("exclusion", lambda: ExclusionPolicy(DynamicContractPolicy(mu=1.0))),
        ("fixed", lambda: FixedPaymentPolicy(pay_per_member=1.0)),
    ]


@pytest.mark.parametrize(
    "make_policy", [p for _, p in _policies()], ids=[n for n, _ in _policies()]
)
@pytest.mark.parametrize("lagged", [False, True])
def test_fast_matches_legacy_per_policy(make_policy, lagged):
    population = synthetic_population(
        30, n_archetypes=5, seed=4, feedback_noise=0.3
    )
    fast = _ledger(population, make_policy(), True, lagged=lagged)
    legacy = _ledger(population, make_policy(), False, lagged=lagged)
    require_ledgers_agree(fast, legacy)


def test_retention_departures_match():
    population = synthetic_population(
        25, n_archetypes=4, seed=6, feedback_noise=0.25
    )

    def run(fast_rounds):
        simulation = RetentionSimulation(
            population,
            RequesterObjective(),
            FixedPaymentPolicy(pay_per_member=0.05),
            seed=3,
            fast_rounds=fast_rounds,
        )
        ledger = simulation.run(5)
        return ledger, simulation.departed

    fast, fast_departed = run(True)
    legacy, legacy_departed = run(False)
    require_ledgers_agree(fast, legacy)
    assert fast_departed == legacy_departed
    assert fast_departed  # the flat underpayment must bleed workers


def test_require_ledgers_agree_rejects_tampering():
    population = synthetic_population(10, n_archetypes=3, seed=1)
    ledger = _ledger(population, DynamicContractPolicy(mu=1.0), True)
    other = _ledger(population, DynamicContractPolicy(mu=1.0), True, seed=8)
    with pytest.raises(InvariantViolation):
        require_ledgers_agree(ledger, other)


def test_require_steps_agree_rejects_subject_mismatch():
    population = synthetic_population(6, n_archetypes=2, seed=1)
    ledger = _ledger(population, DynamicContractPolicy(mu=1.0), True, n_rounds=1)
    record = ledger.records[0]
    full = StepOutcomes(
        outcomes=record.outcomes,
        benefit=record.benefit,
        total_compensation=record.total_compensation,
    )
    partial = StepOutcomes(
        outcomes={
            k: v for i, (k, v) in enumerate(record.outcomes.items()) if i
        },
        benefit=record.benefit,
        total_compensation=record.total_compensation,
    )
    with pytest.raises(InvariantViolation):
        require_steps_agree(partial, full)


@settings(max_examples=25, deadline=None)
@given(
    n_subjects=st.integers(min_value=3, max_value=24),
    population_seed=st.integers(min_value=0, max_value=50),
    engine_seed=st.integers(min_value=0, max_value=50),
    feedback_noise=st.sampled_from([0.0, 0.2, 0.6]),
    rating_noise=st.sampled_from([0.0, 0.35]),
    lagged=st.booleans(),
    redesign_every=st.integers(min_value=1, max_value=3),
    policy_index=st.integers(min_value=0, max_value=3),
)
def test_fast_step_equals_legacy_step_property(
    n_subjects,
    population_seed,
    engine_seed,
    feedback_noise,
    rating_noise,
    lagged,
    redesign_every,
    policy_index,
):
    """Property: fast and legacy ledgers are equal over random setups."""
    population = synthetic_population(
        n_subjects,
        n_archetypes=max(2, n_subjects // 3),
        seed=population_seed,
        feedback_noise=feedback_noise,
        rating_noise=rating_noise,
    )
    make_policy = _policies()[policy_index][1]
    fast = _ledger(
        population, make_policy(), True,
        lagged=lagged, n_rounds=3,
        redesign_every=redesign_every, seed=engine_seed,
    )
    legacy = _ledger(
        population, make_policy(), False,
        lagged=lagged, n_rounds=3,
        redesign_every=redesign_every, seed=engine_seed,
    )
    require_ledgers_agree(fast, legacy)


def test_invariants_cross_check_runs_every_fast_round(monkeypatch):
    """Under REPRO_CHECK_INVARIANTS=1 the fast engine replays the legacy
    kernel in-line; a full run passing means every round verified."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    population = synthetic_population(
        12, n_archetypes=3, seed=2, feedback_noise=0.4
    )
    ledger = _ledger(
        population, DynamicContractPolicy(mu=1.0), True, lagged=True
    )
    assert ledger.n_rounds == 4
