"""Seed-reproducibility regression: the engine's RNG draw order is pinned.

The contract (documented in docs/PERFORMANCE.md and relied on for the
fast/legacy bit-identity): per round, subjects are visited in
``population.subproblems`` order; each active subject consumes its
feedback-noise draw first, then its rating-deviation draw; agents with a
zero noise scale consume nothing for that draw, and excluded subjects
consume nothing at all.  These tests replay the stream with a fresh
generator and reconstruct every realized value, for both round kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Subproblem
from repro.core.effort import QuadraticEffort
from repro.core.utility import RequesterObjective
from repro.simulation import (
    DynamicContractPolicy,
    ExclusionPolicy,
    MarketplaceSimulation,
)
from repro.types import WorkerParameters
from repro.workers import HonestWorker, MaliciousWorker
from repro.workers.population import ClassEffortFunctions, PopulationModel

SEED = 1234


def _mixed_population() -> PopulationModel:
    """Four subjects exercising every draw pattern.

    s1: honest, draws feedback + rating; s2: honest, rating only;
    s3: malicious, feedback only; s4: malicious, feedback + rating.
    """
    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    specs = [
        ("s1", False, 0.30, 0.20),
        ("s2", False, 0.00, 0.25),
        ("s3", True, 0.40, 0.00),
        ("s4", True, 0.15, 0.35),
    ]
    subproblems = []
    agents = {}
    malice = {}
    for subject_id, is_malicious, feedback_noise, rating_noise in specs:
        if is_malicious:
            params = WorkerParameters.malicious(beta=1.0, omega=0.5)
            agents[subject_id] = MaliciousWorker(
                worker_id=subject_id,
                effort_function=psi,
                beta=1.0,
                omega=0.5,
                feedback_noise=feedback_noise,
                rating_noise=rating_noise,
            )
        else:
            params = WorkerParameters.honest(beta=1.0)
            agents[subject_id] = HonestWorker(
                worker_id=subject_id,
                effort_function=psi,
                beta=1.0,
                feedback_noise=feedback_noise,
                rating_noise=rating_noise,
            )
        subproblems.append(
            Subproblem(
                subject_id=subject_id,
                effort_function=psi,
                params=params,
                feedback_weight=1.0,
            )
        )
        malice[subject_id] = 1.0 if is_malicious else 0.0
    return PopulationModel(
        subproblems=subproblems,
        agents=agents,
        weights={s.subject_id: 1.0 for s in subproblems},
        class_functions=ClassEffortFunctions(
            honest=psi, noncollusive=psi, collusive_member=psi
        ),
        malice=malice,
    )


def _run(population, policy, fast_rounds, n_rounds=3):
    simulation = MarketplaceSimulation(
        population,
        RequesterObjective(),
        policy,
        seed=SEED,
        fast_rounds=fast_rounds,
    )
    return simulation.run(n_rounds)


def _replay_and_check(population, ledger, excluded=frozenset()):
    """Reconstruct every noisy value from a fresh generator in the
    pinned order and demand exact equality with the ledger."""
    rng = np.random.default_rng(SEED)
    for record in ledger.records:
        for subproblem in population.subproblems:
            subject_id = subproblem.subject_id
            agent = population.agents[subject_id]
            outcome = record.outcomes[subject_id]
            if subject_id in excluded:
                assert outcome.excluded
                continue  # excluded subjects consume no draws
            assert not outcome.excluded
            expected = float(agent.effort_function(outcome.effort))
            if agent.needs_feedback_draw:
                draw = float(rng.normal(0.0, agent.feedback_noise))
                assert outcome.feedback == max(expected + draw, 0.0)
            else:
                assert outcome.feedback == max(expected, 0.0)
            if agent.needs_rating_draw:
                draw = float(rng.normal(0.0, agent.rating_noise))
                assert outcome.rating_deviation == abs(
                    agent.rating_bias_now + draw
                )
            else:
                assert outcome.rating_deviation == abs(agent.rating_bias_now)


@pytest.mark.parametrize("fast_rounds", [False, True])
def test_draw_order_all_active(fast_rounds):
    """Feedback-then-rating per subject, subjects in population order."""
    population = _mixed_population()
    ledger = _run(population, DynamicContractPolicy(mu=1.0), fast_rounds)
    _replay_and_check(population, ledger)


@pytest.mark.parametrize("fast_rounds", [False, True])
def test_excluded_subjects_consume_no_draws(fast_rounds):
    """Excluding the malicious half must not shift the honest draws."""
    population = _mixed_population()
    ledger = _run(
        population,
        ExclusionPolicy(DynamicContractPolicy(mu=1.0)),
        fast_rounds,
    )
    _replay_and_check(population, ledger, excluded={"s3", "s4"})


def test_same_seed_same_ledger_across_kernels():
    """Both kernels consume the identical stream: equal seeds, equal bits."""
    fast = _run(_mixed_population(), DynamicContractPolicy(mu=1.0), True)
    legacy = _run(_mixed_population(), DynamicContractPolicy(mu=1.0), False)
    for produced, reference in zip(fast.records, legacy.records):
        assert produced.outcomes == reference.outcomes
        assert produced.benefit == reference.benefit
        assert produced.total_compensation == reference.total_compensation


@pytest.mark.parametrize("fast_rounds", [False, True])
def test_columnar_kernels_consume_pinned_stream(fast_rounds):
    """The columnar kernels replay the identical pinned draw order.

    ``fast_columnar_step`` lays out draw slots from the noise columns
    and ``legacy_columnar_step`` forwards the generator through the lazy
    views; both must reconstruct from a fresh generator exactly like the
    object kernels do.
    """
    from repro.workers.columnar import ColumnarPopulation

    population = _mixed_population()
    columnar = ColumnarPopulation.from_population(_mixed_population())
    ledger = _run(columnar, DynamicContractPolicy(mu=1.0), fast_rounds)
    _replay_and_check(population, ledger)


def test_draw_order_manifest_matches_kernels():
    """analysis/draw_order.toml pins exactly what the kernels consume.

    This is the regression test the manifest names (REPRO011): the
    statically extracted generator-consuming call sites of ``fast_step``
    and ``legacy_step`` must equal the manifested sequences, so a new or
    reordered ``rng.*`` draw cannot land without editing the manifest —
    and this file — in the same commit.
    """
    import ast
    import inspect
    from pathlib import Path

    import repro.analysis as analysis_pkg
    from repro.analysis.flow import extract_draw_order, load_manifest
    from repro.simulation.engine import (
        fast_columnar_step,
        fast_step,
        legacy_columnar_step,
        legacy_step,
    )
    from repro.simulation.parallel import parallel_columnar_step

    manifest = load_manifest(
        Path(analysis_pkg.__file__).parent / "draw_order.toml"
    )
    assert manifest.regression_test == "tests/simulation/test_rng_order.py"

    for kernel, key in [
        (fast_step, "simulation/engine.py::fast_step"),
        (legacy_step, "simulation/engine.py::legacy_step"),
        (fast_columnar_step, "simulation/engine.py::fast_columnar_step"),
        (legacy_columnar_step, "simulation/engine.py::legacy_columnar_step"),
        (parallel_columnar_step, "simulation/parallel.py::parallel_columnar_step"),
    ]:
        node = ast.parse(inspect.getsource(kernel)).body[0]
        extracted = tuple(site.name for site in extract_draw_order(node))
        assert extracted == manifest.kernels[key], key

    # The engine draws exactly these shapes: the fast kernels one
    # stacked standard-normal block per round; legacy_step a forwarded
    # feedback draw then a forwarded rating draw per subject; the
    # columnar escape hatch forwards the generator whole.
    assert manifest.kernels["simulation/engine.py::fast_step"] == ("standard_normal",)
    assert manifest.kernels["simulation/engine.py::legacy_step"] == (
        "realize_feedback",
        "rating_deviation",
    )
    assert manifest.kernels["simulation/engine.py::fast_columnar_step"] == (
        "standard_normal",
    )
    assert manifest.kernels["simulation/engine.py::legacy_columnar_step"] == (
        "legacy_step",
    )
    # The sharded front end draws the same single block in the
    # coordinator; shards consume pre-drawn slices, never a generator.
    assert manifest.kernels["simulation/parallel.py::parallel_columnar_step"] == (
        "standard_normal",
    )
