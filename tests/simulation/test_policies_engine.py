"""Tests for payment policies and the marketplace engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    MarketplaceSimulation,
)
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


@pytest.fixture(scope="module")
def population(request):
    return build_population(
        trace=request.getfixturevalue("small_trace"),
        clusters=request.getfixturevalue("small_clusters"),
        proxy=request.getfixturevalue("small_proxy"),
        malice_estimates=request.getfixturevalue("small_malice"),
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=request.getfixturevalue("small_trace").worker_ids(
            WorkerType.HONEST
        )[:60],
    )


@pytest.fixture()
def objective():
    return RequesterObjective(RequesterParameters(mu=1.0))


class TestDynamicPolicy:
    def test_contracts_for_every_subject(self, population):
        policy = DynamicContractPolicy(mu=1.0)
        contracts = policy.contracts(population)
        assert set(contracts) == {s.subject_id for s in population.subproblems}
        assert policy.excluded_subjects(population) == set()

    def test_rejects_bad_mu(self):
        with pytest.raises(SimulationError):
            DynamicContractPolicy(mu=0.0)


class TestExclusionPolicy:
    def test_excludes_malicious_subjects(self, population):
        policy = ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0))
        excluded = policy.excluded_subjects(population)
        malicious = set(
            population.subjects_of_type(WorkerType.NONCOLLUSIVE_MALICIOUS)
        ) | set(population.subjects_of_type(WorkerType.COLLUSIVE_MALICIOUS))
        assert excluded >= malicious
        honest = set(population.subjects_of_type(WorkerType.HONEST))
        contracts = policy.contracts(population)
        assert set(contracts).isdisjoint(excluded)
        assert set(contracts) <= honest | excluded | set(contracts)

    def test_threshold_validated(self):
        with pytest.raises(SimulationError):
            ExclusionPolicy(inner=DynamicContractPolicy(), malice_threshold=1.5)


class TestFixedPolicy:
    def test_flat_pay_scaled_by_members(self, population):
        policy = FixedPaymentPolicy(pay_per_member=1.5)
        contracts = policy.contracts(population)
        for subproblem in population.subproblems:
            contract = contracts[subproblem.subject_id]
            expected = 1.5 * len(subproblem.member_ids)
            assert contract.pay_for_feedback(0.0) == pytest.approx(expected)
            assert contract.max_compensation == pytest.approx(expected)

    def test_rejects_negative_pay(self):
        with pytest.raises(SimulationError):
            FixedPaymentPolicy(pay_per_member=-1.0)


class TestEngine:
    def test_run_produces_requested_rounds(self, population, objective):
        simulation = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(mu=1.0), seed=0
        )
        ledger = simulation.run(3)
        assert ledger.n_rounds == 3

    def test_noise_free_rounds_identical(self, population, objective):
        simulation = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(mu=1.0), seed=0
        )
        ledger = simulation.run(2)
        series = ledger.utility_series()
        assert series[0] == pytest.approx(series[1])

    def test_excluded_subjects_idle(self, population, objective):
        policy = ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0))
        simulation = MarketplaceSimulation(population, objective, policy, seed=0)
        record = simulation.step()
        for subject_id in policy.excluded_subjects(population):
            outcome = record.outcomes[subject_id]
            assert outcome.excluded
            assert outcome.compensation == 0.0
            assert outcome.effort == 0.0

    def test_round_utility_consistent(self, population, objective):
        simulation = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(mu=1.0), seed=0
        )
        record = simulation.step()
        benefit = sum(o.requester_value for o in record.outcomes.values())
        pay = sum(o.compensation for o in record.outcomes.values())
        assert record.benefit == pytest.approx(benefit)
        assert record.utility == pytest.approx(benefit - objective.mu * pay)

    def test_dynamic_beats_fixed_payment(self, population, objective):
        dynamic = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(mu=1.0), seed=0
        ).run(2)
        fixed = MarketplaceSimulation(
            population, objective, FixedPaymentPolicy(pay_per_member=1.0), seed=0
        ).run(2)
        assert dynamic.total_utility() > fixed.total_utility()

    def test_redesign_cadence_validated(self, population, objective):
        with pytest.raises(SimulationError):
            MarketplaceSimulation(
                population, objective, DynamicContractPolicy(), redesign_every=0
            )

    def test_rejects_zero_rounds(self, population, objective):
        simulation = MarketplaceSimulation(
            population, objective, DynamicContractPolicy(), seed=0
        )
        with pytest.raises(SimulationError):
            simulation.run(0)
