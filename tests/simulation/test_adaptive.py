"""Tests for the online-adaptive dynamic policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import (
    AdaptiveDynamicPolicy,
    EwmaDeviationTracker,
    MarketplaceSimulation,
)
from repro.types import RequesterParameters, WorkerType
from repro.workers import CamouflagedWorker, build_population


@pytest.fixture()
def population(small_trace, small_clusters, small_proxy, small_malice):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:40],
    )


@pytest.fixture()
def objective():
    return RequesterObjective(RequesterParameters(mu=1.0))


class TestTracker:
    def test_prior_before_observation(self):
        tracker = EwmaDeviationTracker(prior_deviation=0.4)
        assert tracker.estimate("anyone") == pytest.approx(0.4)
        assert tracker.n_observations("anyone") == 0

    def test_ewma_update(self):
        tracker = EwmaDeviationTracker(smoothing=0.5, prior_deviation=0.4)
        tracker.observe("w", 1.0)
        assert tracker.estimate("w") == pytest.approx(0.7)
        tracker.observe("w", 1.0)
        assert tracker.estimate("w") == pytest.approx(0.85)
        assert tracker.n_observations("w") == 2

    def test_smoothing_one_trusts_latest(self):
        tracker = EwmaDeviationTracker(smoothing=1.0)
        tracker.observe("w", 2.0)
        assert tracker.estimate("w") == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            EwmaDeviationTracker(smoothing=0.0)
        with pytest.raises(SimulationError):
            EwmaDeviationTracker(smoothing=1.5)
        with pytest.raises(SimulationError):
            EwmaDeviationTracker(prior_deviation=0.0)
        tracker = EwmaDeviationTracker()
        with pytest.raises(SimulationError):
            tracker.observe("w", -0.1)


class TestAdaptivePolicy:
    def test_contracts_for_every_subject(self, population):
        policy = AdaptiveDynamicPolicy(mu=1.0)
        contracts = policy.contracts(population)
        assert set(contracts) == {s.subject_id for s in population.subproblems}

    def test_priors_give_uniform_weights(self, population):
        policy = AdaptiveDynamicPolicy(mu=1.0)
        weights = policy.current_weights(population)
        individual = {
            s.subject_id: weights[s.subject_id]
            for s in population.subproblems
            if s.size == 1
        }
        assert len(set(round(w, 9) for w in individual.values())) == 1

    def test_weights_separate_classes_after_rounds(self, population, objective):
        policy = AdaptiveDynamicPolicy(mu=1.0)
        MarketplaceSimulation(population, objective, policy, seed=0).run(5)
        weights = policy.current_weights(population)
        honest = [
            weights[s] for s in population.subjects_of_type(WorkerType.HONEST)
        ]
        malicious = [
            weights[s]
            for s in population.subjects_of_type(
                WorkerType.NONCOLLUSIVE_MALICIOUS
            )
        ]
        assert np.mean(honest) > np.mean(malicious) + 0.5

    def test_freeze_after_stops_learning(self, population, objective):
        policy = AdaptiveDynamicPolicy(mu=1.0, freeze_after=1)
        simulation = MarketplaceSimulation(population, objective, policy, seed=0)
        simulation.run(1)
        frozen = dict(policy.tracker._estimates)
        simulation.run(3)
        assert dict(policy.tracker._estimates) == frozen

    def test_validation(self):
        with pytest.raises(SimulationError):
            AdaptiveDynamicPolicy(mu=0.0)
        with pytest.raises(SimulationError):
            AdaptiveDynamicPolicy(freeze_after=0)

    def test_catches_camouflaged_attacker(self, population, objective):
        attacker_id = population.subjects_of_type(
            WorkerType.NONCOLLUSIVE_MALICIOUS
        )[0]
        old_agent = population.agents[attacker_id]
        population.agents[attacker_id] = CamouflagedWorker(
            worker_id=attacker_id,
            effort_function=old_agent.effort_function,
            omega=0.5,
            rating_bias=2.5,
            attack_round=3,
        )
        policy = AdaptiveDynamicPolicy(mu=1.0)
        ledger = MarketplaceSimulation(
            population, objective, policy, seed=0
        ).run(8)
        weights = [
            record.outcomes[attacker_id].believed_weight
            for record in ledger.records
        ]
        # Believed weight rises (or holds) during camouflage, collapses
        # after the flip.
        assert weights[2] > weights[-1]
        assert weights[-1] < 1.0


class TestEngineIntegration:
    def test_rating_deviation_recorded(self, population, objective):
        policy = AdaptiveDynamicPolicy(mu=1.0)
        record = MarketplaceSimulation(
            population, objective, policy, seed=0
        ).step()
        deviations = [
            outcome.rating_deviation
            for outcome in record.outcomes.values()
            if not outcome.excluded
        ]
        assert all(d >= 0.0 for d in deviations)
        assert any(d > 0.0 for d in deviations)

    def test_policy_belief_recorded_evaluation_weight_fixed(
        self, population, objective
    ):
        policy = AdaptiveDynamicPolicy(mu=1.0, prior_deviation=0.123)
        record = MarketplaceSimulation(
            population, objective, policy, seed=0
        ).step()
        believed = policy.current_weights(population)
        for subject_id, outcome in record.outcomes.items():
            # The policy's belief is recorded...
            assert outcome.policy_weight == pytest.approx(believed[subject_id])
            # ...but utility is booked with the reference weight, so a
            # policy cannot inflate its own score.
            assert outcome.feedback_weight == pytest.approx(
                population.weights[subject_id]
            )
