"""OutcomeSpill edge cases: empty rounds, exact chunk boundaries, truncation.

The spill format is self-describing only given the dtype and a constant
population size, so the failure modes worth pinning are the silent
ones: an ``np.memmap`` over a truncated file happily reads garbage past
the written bytes, and zero-size rounds must map back as a valid empty
history instead of tripping mmap's empty-file rejection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import OutcomeSpill
from repro.simulation.streaming import SPILL_DTYPE


def _round(n_subjects: int, fill: float) -> np.ndarray:
    rows = np.zeros(n_subjects, dtype=SPILL_DTYPE)
    rows["effort"] = fill
    rows["feedback"] = fill * 2.0
    rows["excluded"] = False
    return rows


def test_zero_subject_rounds_map_back_empty(tmp_path):
    """An empty population still spills and maps back, shape intact."""
    spill = OutcomeSpill(tmp_path / "empty.bin")
    spill.append_round(_round(0, 0.0))
    spill.append_round(_round(0, 0.0))
    history = spill.as_array()
    assert history.shape == (2, 0)
    assert history.dtype == SPILL_DTYPE
    spill.close()


def test_no_rounds_yet_raises(tmp_path):
    spill = OutcomeSpill(tmp_path / "none.bin")
    with pytest.raises(SimulationError, match="no rounds"):
        spill.as_array()
    spill.close()


def test_chunk_boundary_exact_counts(tmp_path):
    """Appending an exact multiple of buffer_rounds flushes everything
    with no stragglers: file size, shape and values all line up."""
    buffer_rounds = 3
    n_subjects = 5
    spill = OutcomeSpill(tmp_path / "exact.bin", buffer_rounds=buffer_rounds)
    for index in range(2 * buffer_rounds):
        spill.append_round(_round(n_subjects, float(index)))
    # The buffer drained exactly at the boundary; nothing pending.
    assert spill._buffer == []
    size = (tmp_path / "exact.bin").stat().st_size
    assert size == 2 * buffer_rounds * n_subjects * SPILL_DTYPE.itemsize
    history = spill.as_array()
    assert history.shape == (2 * buffer_rounds, n_subjects)
    for index in range(2 * buffer_rounds):
        assert np.all(history[index]["effort"] == float(index))
        assert np.all(history[index]["feedback"] == 2.0 * index)
    spill.close()


def test_one_round_past_boundary_flushes_on_read(tmp_path):
    spill = OutcomeSpill(tmp_path / "partial.bin", buffer_rounds=4)
    for index in range(5):
        spill.append_round(_round(3, float(index)))
    history = spill.as_array()
    assert history.shape == (5, 3)
    assert np.all(history[4]["effort"] == 4.0)
    spill.close()


def test_truncated_file_fails_loudly(tmp_path):
    """A spill whose file lost bytes must raise, not memmap garbage."""
    path = tmp_path / "truncated.bin"
    spill = OutcomeSpill(path, buffer_rounds=1)
    for index in range(3):
        spill.append_round(_round(4, float(index)))
    spill.flush()
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - SPILL_DTYPE.itemsize])
    with pytest.raises(SimulationError, match="truncated"):
        spill.as_array()
    spill.close()


def test_foreign_overwrite_fails_loudly(tmp_path):
    """Extra bytes (another spill's writes) are as fatal as missing ones."""
    path = tmp_path / "foreign.bin"
    spill = OutcomeSpill(path, buffer_rounds=1)
    spill.append_round(_round(2, 1.0))
    spill.flush()
    with open(path, "ab") as handle:
        handle.write(b"\x00" * 7)
    with pytest.raises(SimulationError, match="truncated or"):
        spill.as_array()
    spill.close()


def test_close_is_idempotent_and_final(tmp_path):
    spill = OutcomeSpill(tmp_path / "closed.bin")
    spill.append_round(_round(2, 1.0))
    spill.close()
    spill.close()
    with pytest.raises(SimulationError, match="closed"):
        spill.append_round(_round(2, 2.0))
