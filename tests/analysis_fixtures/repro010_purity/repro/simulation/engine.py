"""Seeded REPRO010 corpus: a fast kernel regressing to the object path.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  The loop body commits all
three purity sins: a scalar object-path call, a per-element generator
draw, and per-element designer-object construction, each of which the
pass must flag.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

__all__ = ["Contract", "fast_step"]


class Contract:
    """Stand-in designer object constructed per subject (the violation)."""

    def __init__(self, payment: float) -> None:
        self.payment = payment


def fast_step(
    agents: Sequence[Any],
    contracts: Dict[str, Contract],
    rng: Any,
) -> List[float]:
    """A "fast" kernel that quietly loops scalar work over the population."""
    payments: List[float] = []
    for agent in agents:
        contract = contracts[agent.worker_id]
        response = agent.respond(contract)
        noise = float(rng.normal(0.0, 0.1))
        posted = Contract(response.effort + noise)
        payments.append(posted.payment)
    return payments
