"""Seeded REPRO010 corpus: a parallel kernel churning segments per element.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  The shard loop re-attaches
the shared-memory segment for every subject and detaches it again
(``SharedMemory(...)`` construction plus ``.close()``/``.unlink()``
inside the loop) instead of attaching once per worker process; each of
the three lifecycle calls must be flagged by the shared-memory-scoped
REPRO010 checks.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, List

__all__ = ["parallel_shard_step"]


def parallel_shard_step(names: Any) -> List[float]:
    """A shard loop that attaches and detaches the segment per element."""
    totals: List[float] = []
    for name in names:
        segment = shared_memory.SharedMemory(name=name)
        totals.append(float(segment.buf[0]))
        segment.close()
        segment.unlink()
    return totals
