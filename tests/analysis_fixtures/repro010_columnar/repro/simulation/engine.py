"""Seeded REPRO010 corpus: a columnar kernel falling back to objects.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  The kernel reads its
per-subject data through the lazy object views — an ``agents[...]``
subscript plus ``.effort_function``/``.params`` attribute loads inside
the loop — instead of the population columns, each of which the
columnar-scoped REPRO010 checks must flag.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["fast_columnar_step"]


def fast_columnar_step(population: Any, rows: Any) -> List[float]:
    """A "columnar" kernel that quietly materializes per-subject objects."""
    utilities: List[float] = []
    for row in rows.tolist():
        agent = population.agents[population.subject_id(row)]
        expected = agent.effort_function(population.efforts[row])
        utilities.append(agent.params.omega * expected)
    return utilities
