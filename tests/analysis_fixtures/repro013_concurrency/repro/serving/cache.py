"""Seeded REPRO013 corpus: a lock-owning cache with unguarded mutations.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  ``get`` bumps a counter
after releasing the lock, ``put`` writes the shared map before taking
it, and ``clear`` skips the lock entirely; ``guarded_put`` shows the
correct shape and must not be flagged.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["LeakyCache"]


class LeakyCache:
    """An LRU-ish cache that leaks mutations outside its lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, float] = {}
        self.hits = 0

    def get(self, key: str) -> Optional[float]:
        """Counter bump happens after the lock is released (violation)."""
        with self._lock:
            value = self._entries.get(key)
        self.hits += 1
        return value

    def put(self, key: str, value: float) -> None:
        """Writes the shared map before taking the lock (violation)."""
        self._entries[key] = value
        with self._lock:
            self.hits = max(self.hits, 0)

    def clear(self) -> None:
        """Mutating container call with no lock at all (violation)."""
        self._entries.clear()

    def guarded_put(self, key: str, value: float) -> None:
        """The correct shape: every mutation under the lock (clean)."""
        with self._lock:
            self._entries[key] = value
            self.hits += 1
