"""Seeded REPRO011 corpus: kernels whose draws disagree with the manifest.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  ``fast_step`` draws one
extra ``rng.normal`` block the sibling manifest does not pin;
``fast_shuffle`` consumes draws without any manifest entry at all.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["fast_shuffle", "fast_step"]


def fast_step(efforts: Sequence[float], rng: Any) -> List[float]:
    """Draws standard_normal (manifested) then normal (not manifested)."""
    draws = rng.standard_normal(len(efforts))
    jitter = rng.normal(0.0, 1.0, size=len(efforts))
    return [e + z + j for e, z, j in zip(efforts, draws, jitter)]


def fast_shuffle(subjects: Sequence[str], rng: Any) -> List[str]:
    """Consumes generator draws but has no manifest entry."""
    order = rng.permutation(len(subjects))
    return [subjects[i] for i in order]
