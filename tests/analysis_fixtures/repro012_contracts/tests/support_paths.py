"""Fixture test stand-in proving two-path coverage for ``fast_solve``.

Referenced by name only (this module is never collected by pytest): the
REPRO012 test-coverage check looks for a test module mentioning both
``fast_solve`` and ``legacy_solve``, which this file satisfies — so the
fixture isolates the *contract-call* finding for ``fast_solve`` from
the *test-coverage* finding.
"""

__all__ = ["KERNELS_UNDER_TEST"]

KERNELS_UNDER_TEST = ("fast_solve", "legacy_solve")
