"""Seeded REPRO012 corpus: fast kernels with broken contract coverage.

Never imported at runtime — parsed by the flow analyzer in
``tests/analysis_flow/test_flow_passes.py``.  ``vectorized_sweep`` has
no legacy twin and no contract; ``fast_solve`` has a twin and a router
but no ``require_*_agree`` call anywhere near it; and
``require_orphans_agree`` is a dead contract no one calls.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "fast_solve",
    "fastpath_enabled",
    "legacy_solve",
    "require_orphans_agree",
    "route",
    "vectorized_sweep",
]


def fastpath_enabled() -> bool:
    """Fixture stand-in for the REPRO_FASTPATH gate."""
    return True


def vectorized_sweep(grid: Sequence[float]) -> List[float]:
    """Fast kernel with no legacy twin and no equivalence contract."""
    return [g * 2.0 for g in grid]


def fast_solve(x: float) -> float:
    """Fast kernel whose router never cross-verifies against the twin."""
    return x * x


def legacy_solve(x: float) -> float:
    """Reference twin of :func:`fast_solve`."""
    total = 0.0
    for _ in range(2):
        total += x * x / 2.0
    return total


def route(x: float) -> float:
    """Routes to the fast path without calling any require_*_agree."""
    if fastpath_enabled():
        return fast_solve(x)
    return legacy_solve(x)


def require_orphans_agree(produced: float, reference: float) -> None:
    """Dead equivalence contract: defined but never called anywhere."""
    if produced != reference:  # noqa: REPRO001
        raise AssertionError("orphan mismatch")
