"""Integration: the run-all driver over paper artifacts + extensions."""

from __future__ import annotations

import pytest

from repro.experiments.runner import EXPERIMENTS, EXTENSIONS, run_all


class TestRunAll:
    def test_run_all_with_extensions_small_scale(self, small_context):
        results = run_all(small_context.config, include_extensions=True)
        assert len(results) == len(EXPERIMENTS) + len(EXTENSIONS)
        ids = [result.experiment_id for result in results]
        assert ids[: len(EXPERIMENTS)] == list(EXPERIMENTS)
        failures = {
            result.experiment_id: [
                name for name, ok in result.checks.items() if not ok
            ]
            for result in results
            if not result.all_checks_pass
        }
        assert not failures, failures

    def test_run_all_without_extensions(self, small_context):
        results = run_all(small_context.config, include_extensions=False)
        assert len(results) == len(EXPERIMENTS)
        assert all(not r.experiment_id.startswith("ext_") for r in results)
