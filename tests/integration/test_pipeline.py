"""Full-pipeline integration tests: trace -> cluster -> fit -> design ->
simulate, exercised through the public API only."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ContractDesigner,
    DesignerConfig,
    WorkerParameters,
    solve_best_response,
    solve_subproblems,
)
from repro.baselines import compare_policies
from repro.collusion import cluster_collusive_workers, community_size_table
from repro.core.utility import RequesterObjective
from repro.data import AmazonTraceGenerator, TraceConfig
from repro.estimation import DeviationMaliceEstimator, EffortProxy
from repro.simulation import DynamicContractPolicy, ExclusionPolicy
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


class TestFullPipeline:
    def test_trace_to_contracts(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        objective = RequesterObjective(RequesterParameters(mu=1.0))
        population = build_population(
            trace=small_trace,
            clusters=small_clusters,
            proxy=small_proxy,
            malice_estimates=small_malice,
            objective=objective,
            honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:100],
        )
        solutions = solve_subproblems(population.subproblems, mu=1.0)
        assert len(solutions) == len(population.subproblems)
        # Every hired honest worker's contract is monotone and feasible.
        for subject_id in population.subjects_of_type(WorkerType.HONEST):
            contract = solutions[subject_id].result.contract
            pay = contract.compensations
            assert all(b >= a for a, b in zip(pay, pay[1:]))

    def test_compensation_ordering_across_classes(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        """The Fig. 8b headline through the whole pipeline."""
        objective = RequesterObjective(RequesterParameters(mu=1.0))
        population = build_population(
            trace=small_trace,
            clusters=small_clusters,
            proxy=small_proxy,
            malice_estimates=small_malice,
            objective=objective,
        )
        solutions = solve_subproblems(population.subproblems, mu=1.0)
        means = {}
        for worker_type in WorkerType:
            subject_ids = population.subjects_of_type(worker_type)
            means[worker_type] = float(
                np.mean(
                    [solutions[s].per_member_compensation for s in subject_ids]
                )
            )
        assert (
            means[WorkerType.HONEST]
            > means[WorkerType.NONCOLLUSIVE_MALICIOUS]
            > means[WorkerType.COLLUSIVE_MALICIOUS]
        )

    def test_dynamic_beats_exclusion_end_to_end(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        objective = RequesterObjective(RequesterParameters(mu=1.0))
        population = build_population(
            trace=small_trace,
            clusters=small_clusters,
            proxy=small_proxy,
            malice_estimates=small_malice,
            objective=objective,
            honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:80],
        )
        comparison = compare_policies(
            population,
            objective,
            {
                "dynamic": DynamicContractPolicy(mu=1.0),
                "exclusion": ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0)),
            },
            n_rounds=4,
            seed=3,
        )
        assert comparison.winner() == "dynamic"

    def test_clustering_statistics_roundtrip(self, small_trace):
        clusters = cluster_collusive_workers(small_trace.malicious_targets())
        table = community_size_table(clusters)
        assert table.n_communities == clusters.n_communities
        total_from_table = (
            sum(table.counts[s] * s for s in table.counts)
        )
        # Only exact buckets counted here; totals must not exceed the
        # full collusive population.
        assert total_from_table <= clusters.n_collusive_workers


class TestSaveLoadPipeline:
    def test_persisted_trace_reproduces_design(self, small_trace, tmp_path):
        """Designing from a reloaded trace gives identical contracts."""
        path = tmp_path / "trace.jsonl"
        small_trace.save(path)
        from repro.data import ReviewTrace

        reloaded = ReviewTrace.load(path)
        for trace in (small_trace, reloaded):
            proxy = EffortProxy.from_trace(trace)
            clusters = cluster_collusive_workers(trace.malicious_targets())
            malice = DeviationMaliceEstimator().estimate(trace)
            population = build_population(
                trace=trace,
                clusters=clusters,
                proxy=proxy,
                malice_estimates=malice,
                objective=RequesterObjective(RequesterParameters(mu=1.0)),
                honest_subset=trace.worker_ids(WorkerType.HONEST)[:20],
            )
            solutions = solve_subproblems(population.subproblems[:5], mu=1.0)
            if trace is small_trace:
                reference = {
                    s: solutions[s].result.requester_utility for s in solutions
                }
            else:
                for subject_id, utility in reference.items():
                    assert solutions[subject_id].result.requester_utility == (
                        pytest.approx(utility)
                    )


class TestConsistencyAcrossSeeds:
    def test_headline_results_stable_across_seeds(self):
        """The qualitative claims hold for several generator seeds."""
        for seed in (1, 2, 3):
            trace = AmazonTraceGenerator(TraceConfig.small(), seed=seed).generate()
            clusters = cluster_collusive_workers(trace.malicious_targets())
            planted = {
                frozenset(m) for m in trace.planted_communities().values()
            }
            assert set(clusters.communities) == planted
            aggregates = trace.class_aggregates()
            assert (
                aggregates[WorkerType.COLLUSIVE_MALICIOUS]["mean_feedback"]
                > aggregates[WorkerType.HONEST]["mean_feedback"]
            )


class TestQuickstartSurface:
    def test_readme_quickstart_works(self):
        """The README quickstart snippet must keep working verbatim."""
        from repro import ContractDesigner, QuadraticEffort, WorkerParameters

        psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
        designer = ContractDesigner(mu=1.0)
        result = designer.design(psi, WorkerParameters.honest(beta=1.0))
        assert result.k_opt is not None
        assert result.requester_utility > 0
        assert result.bounds.gap >= 0
