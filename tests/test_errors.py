"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exception_type = getattr(errors, name)
            assert issubclass(exception_type, errors.ReproError)

    def test_subsystem_parents(self):
        assert issubclass(errors.EffortFunctionError, errors.ModelError)
        assert issubclass(errors.InfeasibleDesignError, errors.DesignError)
        assert issubclass(errors.TraceCalibrationError, errors.DataError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.FitError("boom")
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")

    def test_library_raises_only_repro_errors_for_bad_model_input(self):
        """Spot-check that public validation paths raise inside the
        hierarchy, not bare ValueError."""
        from repro import QuadraticEffort, WorkerParameters

        with pytest.raises(errors.ReproError):
            QuadraticEffort(r2=1.0, r1=1.0, r0=0.0)
        with pytest.raises(errors.ReproError):
            WorkerParameters.honest(beta=-1.0)
