"""Tests for shared value types (worker params, weights, grids)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.types import (
    DiscretizationGrid,
    FeedbackWeightParameters,
    RequesterParameters,
    WorkerParameters,
    WorkerType,
)


class TestWorkerType:
    def test_malice_flags(self):
        assert not WorkerType.HONEST.is_malicious
        assert WorkerType.NONCOLLUSIVE_MALICIOUS.is_malicious
        assert WorkerType.COLLUSIVE_MALICIOUS.is_malicious

    def test_short_labels(self):
        assert WorkerType.HONEST.short_label == "Honest"
        assert WorkerType.NONCOLLUSIVE_MALICIOUS.short_label == "NC-Mal"
        assert WorkerType.COLLUSIVE_MALICIOUS.short_label == "C-Mal"


class TestWorkerParameters:
    def test_honest_factory(self):
        params = WorkerParameters.honest(beta=2.0)
        assert params.omega == 0.0
        assert params.worker_type is WorkerType.HONEST

    def test_malicious_factory(self):
        params = WorkerParameters.malicious(beta=1.0, omega=0.4, collusive=True)
        assert params.worker_type is WorkerType.COLLUSIVE_MALICIOUS

    def test_honest_with_omega_rejected(self):
        with pytest.raises(ModelError):
            WorkerParameters(beta=1.0, omega=0.5, worker_type=WorkerType.HONEST)

    def test_bad_beta_rejected(self):
        with pytest.raises(ModelError):
            WorkerParameters.honest(beta=0.0)
        with pytest.raises(ModelError):
            WorkerParameters.honest(beta=math.inf)

    def test_negative_omega_rejected(self):
        with pytest.raises(ModelError):
            WorkerParameters(
                beta=1.0, omega=-0.1, worker_type=WorkerType.NONCOLLUSIVE_MALICIOUS
            )


class TestFeedbackWeights:
    def test_eq5_formula(self):
        params = FeedbackWeightParameters(
            rho=1.0, kappa=0.1, gamma=0.1, min_deviation=0.1
        )
        weight = params.weight(4.5, 3.0, malice_probability=1.0, n_partners=2)
        assert weight == pytest.approx(1.0 / 1.5 - 0.1 - 0.2)

    def test_min_deviation_floor(self):
        params = FeedbackWeightParameters(min_deviation=0.25)
        exact = params.weight(3.0, 3.0)
        assert exact == pytest.approx(1.0 / 0.25)

    def test_max_weight_cap(self):
        params = FeedbackWeightParameters(min_deviation=0.01, max_weight=5.0)
        assert params.weight(3.0, 3.0) == pytest.approx(5.0)

    def test_infinite_deviation_keeps_penalties(self):
        params = FeedbackWeightParameters(kappa=0.2, gamma=0.1)
        weight = params.weight_from_deviation(
            float("inf"), malice_probability=1.0, n_partners=3
        )
        assert weight == pytest.approx(-0.2 - 0.3)

    def test_invalid_inputs(self):
        params = FeedbackWeightParameters()
        with pytest.raises(ModelError):
            params.weight(1.0, 1.0, malice_probability=1.5)
        with pytest.raises(ModelError):
            params.weight(1.0, 1.0, n_partners=-1)
        with pytest.raises(ModelError):
            params.weight_from_deviation(-0.5)

    def test_invalid_construction(self):
        with pytest.raises(ModelError):
            FeedbackWeightParameters(rho=0.0)
        with pytest.raises(ModelError):
            FeedbackWeightParameters(kappa=-0.1)
        with pytest.raises(ModelError):
            FeedbackWeightParameters(min_deviation=0.0)
        with pytest.raises(ModelError):
            FeedbackWeightParameters(max_weight=-1.0)

    @given(
        deviation=st.floats(min_value=0.0, max_value=10.0),
        e_mal=st.floats(min_value=0.0, max_value=1.0),
        partners=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_weight_decreases_with_penalties(self, deviation, e_mal, partners):
        params = FeedbackWeightParameters()
        base = params.weight_from_deviation(deviation)
        penalized = params.weight_from_deviation(
            deviation, malice_probability=e_mal, n_partners=partners
        )
        assert penalized <= base + 1e-12


class TestRequesterParameters:
    def test_utility(self):
        params = RequesterParameters(mu=2.0)
        assert params.utility(10.0, 3.0) == pytest.approx(4.0)

    def test_bad_mu(self):
        with pytest.raises(ModelError):
            RequesterParameters(mu=0.0)


class TestDiscretizationGrid:
    def test_edges_and_intervals(self):
        grid = DiscretizationGrid(n_intervals=4, delta=0.5)
        assert grid.max_effort == pytest.approx(2.0)
        assert grid.edges() == pytest.approx((0.0, 0.5, 1.0, 1.5, 2.0))
        assert grid.interval(1) == (0.0, 0.5)
        assert grid.interval(4) == (1.5, 2.0)

    def test_edge_accessor(self):
        grid = DiscretizationGrid(n_intervals=4, delta=0.5)
        assert grid.edge(0) == 0.0
        assert grid.edge(4) == pytest.approx(2.0)
        with pytest.raises(ModelError):
            grid.edge(5)

    def test_locate(self):
        grid = DiscretizationGrid(n_intervals=4, delta=0.5)
        assert grid.locate(0.0) == 1
        assert grid.locate(0.49) == 1
        assert grid.locate(0.5) == 2
        assert grid.locate(1.99) == 4
        assert grid.locate(100.0) == 4
        with pytest.raises(ModelError):
            grid.locate(-0.1)

    def test_for_max_effort(self):
        grid = DiscretizationGrid.for_max_effort(3.0, 6)
        assert grid.delta == pytest.approx(0.5)
        with pytest.raises(ModelError):
            DiscretizationGrid.for_max_effort(0.0, 3)

    def test_invalid_construction(self):
        with pytest.raises(ModelError):
            DiscretizationGrid(n_intervals=0, delta=1.0)
        with pytest.raises(ModelError):
            DiscretizationGrid(n_intervals=3, delta=0.0)

    def test_interval_bounds_checked(self):
        grid = DiscretizationGrid(n_intervals=3, delta=1.0)
        with pytest.raises(ModelError):
            grid.interval(0)
        with pytest.raises(ModelError):
            grid.interval(4)

    @given(
        m=st.integers(min_value=1, max_value=50),
        delta=st.floats(min_value=1e-3, max_value=10.0),
        fraction=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_locate_consistent_with_interval(self, m, delta, fraction):
        grid = DiscretizationGrid(n_intervals=m, delta=delta)
        effort = fraction * grid.max_effort
        piece = grid.locate(effort)
        left, right = grid.interval(piece)
        # Tolerate float rounding at interval edges: `effort` may sit
        # within one ulp of a boundary, in which case either adjacent
        # piece is a consistent answer.
        slack = 1e-9 * max(1.0, grid.max_effort)
        assert (left - slack <= effort < right + slack) or (
            piece == m and effort >= left - slack
        )
