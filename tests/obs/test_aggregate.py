"""Tests for cluster-wide metrics federation (repro.obs.aggregate)."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.aggregate import (
    ClusterScrape,
    ScrapeLoop,
    ShardExport,
    federate,
    histogram_from_record,
    local_export,
    metric_samples,
    validate_prometheus_text,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


def _export(source: str, **metrics) -> ShardExport:
    """A ShardExport with counters built from keyword values."""
    registry = MetricsRegistry()
    for name, value in metrics.items():
        registry.counter(name).inc(value)
    return local_export(source, registry)


class TestMetricSamples:
    def test_scalar_records(self):
        registry = MetricsRegistry()
        registry.counter("serving.requests").inc(4)
        registry.gauge("serving.cache_entries").set(7.0)
        records = {r["name"]: r for r in metric_samples(registry)}
        assert records["serving.requests"]["metric_kind"] == "counter"
        assert records["serving.requests"]["value"] == 4.0
        assert records["serving.cache_entries"]["value"] == 7.0

    def test_histogram_record_carries_the_reservoir(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("serving.latency_s", max_samples=8)
        histogram.observe_many([0.1, 0.2, 0.4])
        (record,) = metric_samples(registry)
        assert record["metric_kind"] == "histogram"
        assert record["samples"] == [0.1, 0.2, 0.4]
        assert record["count"] == 3.0
        assert record["max_samples"] == 8
        assert record["min"] == 0.1
        assert record["max"] == 0.4

    def test_histogram_round_trips_through_record(self):
        original = Histogram("h", max_samples=8)
        original.observe_many([1.0, 2.0, 3.0])
        registry = MetricsRegistry()
        registry.adopt(original)
        (record,) = metric_samples(registry)
        rebuilt = histogram_from_record(record)
        assert rebuilt.samples == original.samples
        assert rebuilt.count == original.count
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.min == original.min
        assert rebuilt.max == original.max

    def test_histogram_record_requires_a_name(self):
        with pytest.raises(ObservabilityError, match="needs a name"):
            histogram_from_record({"samples": [1.0]})


class TestShardExport:
    def test_from_payload_reads_shard_fields(self):
        export = ShardExport.from_payload(
            {
                "shard_id": "shard-0",
                "pid": 4242,
                "spans": [{"kind": "span", "name": "s"}],
                "metrics": [],
            }
        )
        assert export.source == "shard-0"
        assert export.pid == 4242
        assert len(export.spans) == 1

    def test_from_payload_requires_a_source(self):
        with pytest.raises(ObservabilityError, match="shard_id/source"):
            ShardExport.from_payload({"spans": []})

    def test_local_export_includes_tracer_spans(self):
        tracer = Tracer(enabled=True, id_prefix="")
        with tracer.span("router.work"):
            pass
        registry = MetricsRegistry()
        registry.counter("cluster.routed").inc()
        export = local_export("router", registry, tracer=tracer, pid=1)
        assert export.source == "router"
        assert [s["name"] for s in export.spans] == ["router.work"]
        assert export.metrics[0]["name"] == "cluster.routed"


class TestFederate:
    def test_counters_sum_across_sources(self):
        scrape = federate(
            [
                _export("shard-0", **{"serving.requests": 3}),
                _export("shard-1", **{"serving.requests": 5}),
            ]
        )
        assert scrape.value("serving.requests") == 8.0
        assert scrape.shard_values("serving.requests") == {
            "shard-0": 3.0,
            "shard-1": 5.0,
        }

    def test_result_is_order_independent(self):
        a = _export("shard-0", **{"serving.requests": 3})
        b = _export("shard-1", **{"serving.requests": 5})
        assert federate([a, b]).value("serving.requests") == federate(
            [b, a]
        ).value("serving.requests")
        assert federate([b, a]).sources() == ("shard-0", "shard-1")

    def test_gauges_sum_by_default(self):
        def gauge_export(source, value):
            registry = MetricsRegistry()
            registry.gauge("serving.cache_entries").set(value)
            return local_export(source, registry)

        scrape = federate([gauge_export("a", 2.0), gauge_export("b", 3.0)])
        assert scrape.value("serving.cache_entries") == 5.0

    @pytest.mark.parametrize(
        "agg, expected", [("max", 9.0), ("last", 4.0), ("sum", 13.0)]
    )
    def test_gauge_agg_overrides(self, agg, expected):
        def tagged(source, value):
            return ShardExport(
                source=source,
                metrics=[
                    {
                        "kind": "metric",
                        "name": "g",
                        "metric_kind": "gauge",
                        "value": value,
                        "agg": agg,
                    }
                ],
            )

        # "last" resolves to the lexicographically last source (z).
        scrape = federate([tagged("z", 4.0), tagged("a", 9.0)])
        assert scrape.value("g") == expected

    def test_histograms_reservoir_merge(self):
        def hist_export(source, values):
            registry = MetricsRegistry()
            registry.histogram("serving.latency_s").observe_many(values)
            return local_export(source, registry)

        scrape = federate(
            [hist_export("a", [0.1, 0.3]), hist_export("b", [0.2])]
        )
        merged = scrape.merged.get("serving.latency_s")
        assert merged.count == 3
        assert merged.samples == (0.1, 0.2, 0.3)
        assert scrape.hist_sources["serving.latency_s"]["a"] == (2.0, pytest.approx(0.4))

    def test_duplicate_source_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate"):
            federate([_export("a", c=1), _export("a", c=2)])

    def test_kind_conflict_rejected(self):
        counter_side = _export("a", **{"m": 1})
        gauge_side = ShardExport(
            source="b",
            metrics=[
                {"kind": "metric", "name": "m", "metric_kind": "gauge", "value": 1.0}
            ],
        )
        with pytest.raises(ObservabilityError, match="counter"):
            federate([counter_side, gauge_side])

    def test_mixed_agg_modes_rejected(self):
        def tagged(source, agg):
            return ShardExport(
                source=source,
                metrics=[
                    {
                        "kind": "metric",
                        "name": "g",
                        "metric_kind": "gauge",
                        "value": 1.0,
                        "agg": agg,
                    }
                ],
            )

        with pytest.raises(ObservabilityError, match="mixes agg"):
            federate([tagged("a", "max"), tagged("b", "last")])

    def test_unknown_agg_rejected(self):
        bad = ShardExport(
            source="a",
            metrics=[
                {
                    "kind": "metric",
                    "name": "g",
                    "metric_kind": "gauge",
                    "value": 1.0,
                    "agg": "median",
                }
            ],
        )
        with pytest.raises(ObservabilityError, match="unknown agg"):
            federate([bad])

    def test_malformed_record_rejected(self):
        bad = ShardExport(source="a", metrics=[{"kind": "metric", "name": "x"}])
        with pytest.raises(ObservabilityError, match="malformed"):
            federate([bad])

    def test_disjoint_metric_names_stay_separate(self):
        scrape = federate(
            [_export("a", **{"only.a": 1}), _export("b", **{"only.b": 2})]
        )
        assert scrape.value("only.a") == 1.0
        assert scrape.value("only.b") == 2.0
        assert scrape.shard_values("only.a") == {"a": 1.0}

    def test_value_rejects_unknown_and_histogram_names(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        scrape = federate([local_export("a", registry)])
        with pytest.raises(ObservabilityError, match="no aggregated scalar"):
            scrape.value("h")
        with pytest.raises(ObservabilityError, match="no aggregated scalar"):
            scrape.value("missing")

    def test_span_records_tagged_with_source(self):
        tracer = Tracer(enabled=True, id_prefix="")
        with tracer.span("work"):
            pass
        registry = MetricsRegistry()
        registry.counter("c").inc()
        scrape = federate([local_export("shard-3", registry, tracer=tracer)])
        (record,) = scrape.span_records()
        assert record["source"] == "shard-3"
        assert record["name"] == "work"


class TestPrometheusText:
    def _scrape(self) -> ClusterScrape:
        def hist_export(source, values, requests):
            registry = MetricsRegistry()
            registry.counter("serving.requests").inc(requests)
            registry.histogram("serving.latency_s").observe_many(values)
            return local_export(source, registry)

        return federate(
            [hist_export("shard-0", [0.1, 0.2], 3), hist_export("shard-1", [0.4], 5)]
        )

    def test_labeled_and_aggregate_samples(self):
        text = self._scrape().prometheus_text()
        assert 'repro_serving_requests{shard="shard-0"} 3' in text
        assert 'repro_serving_requests{shard="shard-1"} 5' in text
        assert "\nrepro_serving_requests 8" in text
        assert 'repro_serving_latency_s_count{shard="shard-0"} 2' in text
        assert 'repro_serving_latency_s_sum{shard="shard-1"} 0.4' in text
        assert "repro_serving_latency_s_count 3" in text
        assert 'repro_serving_latency_s{quantile="0.5"}' in text

    def test_exposition_validates_clean(self):
        assert validate_prometheus_text(self._scrape().prometheus_text()) == []

    def test_empty_scrape_renders_empty(self):
        scrape = federate([])
        assert scrape.prometheus_text() == ""
        assert scrape.sources() == ()


class TestValidatePrometheusText:
    def test_flags_sample_without_type(self):
        problems = validate_prometheus_text("repro_orphan 1\n")
        assert any("no preceding # TYPE" in p for p in problems)

    def test_flags_bad_type_comment(self):
        problems = validate_prometheus_text("# TYPE repro_x wat\nrepro_x 1\n")
        assert any("malformed TYPE" in p for p in problems)

    def test_flags_non_numeric_value(self):
        problems = validate_prometheus_text(
            "# TYPE repro_x counter\nrepro_x NaNope\n"
        )
        assert any("non-numeric" in p for p in problems)

    def test_count_sum_resolve_to_their_family(self):
        text = (
            "# TYPE repro_h summary\n"
            "repro_h_count 2\n"
            "repro_h_sum 0.5\n"
        )
        assert validate_prometheus_text(text) == []


class TestScrapeLoop:
    def test_scrape_once_records_latest(self):
        clock_value = {"now": 10.0}
        loop = ScrapeLoop(lambda: 42, interval_s=0.01, clock=lambda: clock_value["now"])
        assert loop.scrape_once() == 42
        assert loop.latest() == (10.0, 42)
        assert loop.errors == 0

    def test_failures_counted_not_raised(self):
        def boom():
            raise RuntimeError("no")

        loop = ScrapeLoop(boom, interval_s=0.01)
        assert loop.scrape_once() is None
        assert loop.errors == 1
        assert loop.latest() is None

    def test_background_thread_scrapes_and_stops(self):
        loop = ScrapeLoop(lambda: "ok", interval_s=0.005)
        loop.start()
        try:
            deadline = 200
            while loop.latest() is None and deadline:
                deadline -= 1
                import time

                time.sleep(0.005)
        finally:
            loop.stop()
        assert loop.latest() is not None
        assert loop.latest()[1] == "ok"

    def test_rejects_bad_interval(self):
        with pytest.raises(ObservabilityError, match="interval"):
            ScrapeLoop(lambda: None, interval_s=0.0)
