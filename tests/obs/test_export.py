"""Exporter tests: golden JSONL, Prometheus parse check, schema, report."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    SPAN_SCHEMA,
    metric_records,
    prometheus_text,
    read_jsonl,
    render_report,
    span_records,
    validate_records,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

GOLDEN = Path(__file__).parent / "data" / "golden.jsonl"


def _stepping_clock():
    state = {"time": 0.0}

    def clock() -> float:
        now = state["time"]
        state["time"] += 1.0
        return now

    return clock


def golden_tracer_and_registry():
    """The deterministic workload behind the checked-in golden dump."""
    tracer = Tracer(enabled=True, clock=_stepping_clock(), id_prefix="")
    tracer.profile_cpu = False
    with tracer.span("core.design", archetype="honest", K=4) as outer:
        with tracer.span("core.candidate_build", target_piece=2):
            pass
        outer.set("k_opt", 2)
    registry = MetricsRegistry()
    registry.counter("serving.requests").inc(10)
    registry.gauge("serving.queue_depth").set(3.0)
    histogram = registry.histogram("serving.request_latency_s", max_samples=8)
    histogram.observe_many([0.1, 0.2, 0.4])
    return tracer, registry


class TestGoldenJsonl:
    def test_dump_matches_golden_file(self, tmp_path):
        """Byte-for-byte stable output: ordering, key sorting, floats."""
        tracer, registry = golden_tracer_and_registry()
        out = tmp_path / "dump.jsonl"
        count = write_jsonl(out, tracer=tracer, registry=registry)
        assert count == 5
        assert out.read_text() == GOLDEN.read_text()

    def test_golden_file_is_schema_clean(self):
        records = read_jsonl(GOLDEN)
        n_spans, problems = validate_records(records)
        assert problems == []
        assert n_spans == 2

    def test_round_trip(self, tmp_path):
        tracer, registry = golden_tracer_and_registry()
        out = tmp_path / "dump.jsonl"
        write_jsonl(out, tracer=tracer, registry=registry)
        records = read_jsonl(out)
        assert records == span_records(tracer) + metric_records(registry)


class TestReadJsonl:
    def test_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(ObservabilityError, match="invalid JSON"):
            read_jsonl(bad)

    def test_rejects_non_object_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("[1, 2, 3]\n")
        with pytest.raises(ObservabilityError, match="expected a JSON object"):
            read_jsonl(bad)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "spaced.jsonl"
        path.write_text('\n{"kind": "metric", "name": "c", "metric_kind": "counter", "value": 1}\n\n')
        assert len(read_jsonl(path)) == 1


class TestSchemaValidation:
    def _span(self, **overrides):
        record = {
            "kind": "span",
            "name": "core.design",
            "span_id": "0001",
            "parent_id": None,
            "start_s": 0.0,
            "end_s": 1.0,
            "duration_ms": 1000.0,
            "attributes": {},
        }
        record.update(overrides)
        return record

    def test_valid_span_passes(self):
        n_spans, problems = validate_records([self._span()])
        assert (n_spans, problems) == (1, [])

    def test_missing_required_field(self):
        record = self._span()
        del record["duration_ms"]
        _, problems = validate_records([record])
        assert any("duration_ms" in problem for problem in problems)

    def test_wrong_type_flagged(self):
        _, problems = validate_records([self._span(start_s="zero")])
        assert any("start_s" in problem for problem in problems)

    def test_negative_duration_flagged(self):
        _, problems = validate_records([self._span(duration_ms=-1.0)])
        assert any("below minimum" in problem for problem in problems)

    def test_empty_name_flagged(self):
        _, problems = validate_records([self._span(name="")])
        assert any("shorter than" in problem for problem in problems)

    def test_unknown_kind_rejected(self):
        _, problems = validate_records([{"kind": "mystery"}])
        assert problems

    def test_metric_records_shallow_checked(self):
        good = {"kind": "metric", "name": "c", "metric_kind": "counter"}
        bad = {"kind": "metric", "name": "c"}
        _, problems = validate_records([good])
        assert problems == []
        _, problems = validate_records([bad])
        assert any("metric_kind" in problem for problem in problems)

    def test_schema_constant_shape(self):
        assert SPAN_SCHEMA["required"][0] == "kind"
        assert SPAN_SCHEMA["properties"]["kind"]["enum"] == ["span"]


_PROM_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [-+0-9.e]+$"
)


class TestPrometheus:
    def test_every_sample_line_parses(self):
        _, registry = golden_tracer_and_registry()
        text = prometheus_text(registry)
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# TYPE ", "# HELP "))
                continue
            assert _PROM_LINE.match(line), f"unparseable sample line: {line!r}"

    def test_counter_gauge_and_summary_values(self):
        _, registry = golden_tracer_and_registry()
        text = prometheus_text(registry)
        samples = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        assert samples["repro_serving_requests"] == 10.0
        assert samples["repro_serving_queue_depth"] == 3.0
        assert samples["repro_serving_request_latency_s_count"] == 3.0
        assert samples["repro_serving_request_latency_s_sum"] == pytest.approx(0.7)
        assert 'repro_serving_request_latency_s{quantile="0.5"}' in samples

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_name_mangling(self):
        registry = MetricsRegistry()
        registry.counter("core.design-total").inc()
        text = prometheus_text(registry)
        assert "repro_core_design_total" in text


class TestReport:
    def test_tree_structure_and_attrs(self):
        tracer, _ = golden_tracer_and_registry()
        report = render_report(span_records(tracer))
        lines = report.splitlines()
        assert lines[0] == "-- span tree --"
        assert lines[1].startswith("core.design")
        assert "[K=4, archetype=honest, k_opt=2]" in lines[1]
        assert lines[2].startswith("  core.candidate_build")
        assert "-- hottest spans --" in report

    def test_orphans_render_under_detached_root(self):
        """A span whose parent was evicted from the bounded buffer (or
        lives in an unmerged dump) lands under the synthetic <detached>
        root — indented, not promoted to look like a real root."""
        records = [
            {
                "kind": "span",
                "name": "orphan",
                "span_id": "b",
                "parent_id": "missing",
                "start_s": 0.0,
                "end_s": 1.0,
                "duration_ms": 1000.0,
            }
        ]
        report = render_report(records)
        lines = report.splitlines()
        assert lines[1].startswith("<detached>")
        assert "1 span(s)" in lines[1]
        assert lines[2].startswith("  orphan")

    def test_detached_subtree_keeps_its_children(self):
        """An orphan's own descendants still render beneath it."""
        records = [
            {
                "kind": "span",
                "name": "orphan",
                "span_id": "b",
                "parent_id": "missing",
                "start_s": 0.0,
                "end_s": 2.0,
                "duration_ms": 2000.0,
            },
            {
                "kind": "span",
                "name": "leaf",
                "span_id": "c",
                "parent_id": "b",
                "start_s": 0.5,
                "end_s": 1.0,
                "duration_ms": 500.0,
            },
        ]
        report = render_report(records)
        lines = report.splitlines()
        assert lines[1].startswith("<detached>")
        assert lines[2].startswith("  orphan")
        assert lines[3].startswith("    leaf")

    def test_children_collapse_beyond_bound(self):
        records = [
            {
                "kind": "span",
                "name": "root",
                "span_id": "r",
                "parent_id": None,
                "start_s": 0.0,
                "end_s": 10.0,
                "duration_ms": 10000.0,
            }
        ]
        for index in range(5):
            records.append(
                {
                    "kind": "span",
                    "name": f"child{index}",
                    "span_id": f"c{index}",
                    "parent_id": "r",
                    "start_s": float(index),
                    "end_s": float(index) + 0.5,
                    "duration_ms": 500.0,
                }
            )
        report = render_report(records, max_children=2)
        assert "... (+3 more)" in report

    def test_no_spans(self):
        assert render_report([]) == "no spans recorded\n"

    def test_error_marker(self):
        records = [
            {
                "kind": "span",
                "name": "bad",
                "span_id": "x",
                "parent_id": None,
                "start_s": 0.0,
                "end_s": 1.0,
                "duration_ms": 1000.0,
                "error": "DesignError",
            }
        ]
        assert "!DesignError" in render_report(records)
