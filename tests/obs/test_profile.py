"""Tests for per-span wall/CPU profiling aggregation."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.profile import SpanProfile, hottest, profile_spans, profiling_enabled
from repro.obs.trace import Span, Tracer


def _finished(name: str, duration_ms: float, cpu_ms: float | None = None) -> Span:
    span = Span(name=name, span_id=name, parent_id=None, start_s=0.0)
    span.end_s = duration_ms / 1e3
    if cpu_ms is not None:
        span.cpu_start_s = 0.0
        span.cpu_end_s = cpu_ms / 1e3
    return span


class TestProfileSpans:
    def test_aggregates_per_name(self):
        spans = [
            _finished("a", 10.0, cpu_ms=4.0),
            _finished("a", 30.0, cpu_ms=6.0),
            _finished("b", 5.0),
        ]
        profiles = profile_spans(spans)
        assert profiles["a"].count == 2
        assert profiles["a"].total_ms == pytest.approx(40.0)
        assert profiles["a"].mean_ms == pytest.approx(20.0)
        assert profiles["a"].cpu_ms == pytest.approx(10.0)
        assert profiles["a"].wait_ms == pytest.approx(30.0)
        assert profiles["b"].cpu_ms == 0.0

    def test_skips_open_spans(self):
        open_span = Span(name="open", span_id="o", parent_id=None, start_s=0.0)
        assert profile_spans([open_span]) == {}

    def test_wait_clamped_at_zero(self):
        profile = SpanProfile(
            name="x", count=1, total_ms=1.0, mean_ms=1.0, p95_ms=1.0, cpu_ms=2.0
        )
        assert profile.wait_ms == 0.0

    def test_profile_rejects_empty_count(self):
        with pytest.raises(ObservabilityError):
            SpanProfile(name="x", count=0, total_ms=0.0, mean_ms=0.0, p95_ms=0.0, cpu_ms=0.0)


class TestHottest:
    def test_orders_by_total_wall_time(self):
        spans = [
            _finished("cold", 1.0),
            _finished("hot", 50.0),
            _finished("warm", 10.0),
        ]
        names = [profile.name for profile in hottest(spans)]
        assert names == ["hot", "warm", "cold"]

    def test_truncates_to_top(self):
        spans = [_finished(f"s{i}", float(i + 1)) for i in range(5)]
        assert len(hottest(spans, top=2)) == 2

    def test_rejects_bad_top(self):
        with pytest.raises(ObservabilityError):
            hottest([], top=0)


class TestProfilingEnabled:
    def test_requires_tracing_and_cpu_flag(self):
        tracer = Tracer(enabled=True)
        tracer.profile_cpu = True
        assert profiling_enabled(tracer)
        tracer.profile_cpu = False
        assert not profiling_enabled(tracer)
        disabled = Tracer(enabled=False)
        disabled.profile_cpu = True
        assert not profiling_enabled(disabled)

    def test_cpu_samples_recorded_when_enabled(self, clock):
        tracer = Tracer(enabled=True, clock=clock, id_prefix="")
        tracer.profile_cpu = True
        with tracer.span("compute"):
            sum(range(1000))
        (span,) = tracer.spans()
        assert span.cpu_ms is not None
        assert span.cpu_ms >= 0.0
