"""Tests for the span tracer."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
)


class TestSpanLifecycle:
    def test_nested_spans_link_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert spans[1].parent_id is None

    def test_monotonic_timing_from_injected_clock(self, tracer):
        with tracer.span("timed"):
            pass
        (span,) = tracer.spans()
        assert span.duration_ms == pytest.approx(1000.0)
        assert span.end_s > span.start_s

    def test_attributes_at_open_and_inside(self, tracer):
        with tracer.span("attrs", archetype="honest", K=20) as span:
            span.set("k_star", 7)
            span.update(cache_hit=True)
        (span,) = tracer.spans()
        assert span.attributes == {
            "archetype": "honest",
            "K": 20,
            "k_star": 7,
            "cache_hit": True,
        }

    def test_error_recorded_and_reraised(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.error == "ValueError"

    def test_current_span_tracks_nesting(self, tracer):
        assert Tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert Tracer.current_span() is outer
        assert Tracer.current_span() is None

    def test_wrap_decorator(self, tracer):
        @tracer.wrap("wrapped", source="decorator")
        def work(x: int) -> int:
            return x * 2

        assert work(21) == 42
        (span,) = tracer.spans()
        assert span.name == "wrapped"
        assert span.attributes == {"source": "decorator"}


class TestDisabledPath:
    def test_disabled_span_is_null(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored", k=1) as span:
            assert span is NULL_SPAN
            span.set("k", 2)  # swallowed, no error
        assert tracer.spans() == ()

    def test_disabled_context_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_null_span_has_empty_id(self):
        assert NULL_SPAN.span_id == ""
        assert NULL_SPAN.duration_ms is None


class TestBoundsAndThreads:
    def test_max_spans_drops_oldest_and_counts(self, clock):
        tracer = Tracer(enabled=True, clock=clock, id_prefix="", max_spans=2)
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3"]
        assert tracer.dropped == 2

    def test_rejects_bad_max_spans(self):
        with pytest.raises(ObservabilityError):
            Tracer(max_spans=0)

    def test_spans_in_threads_become_roots(self, tracer):
        def worker() -> None:
            with tracer.span("threaded"):
                pass

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["threaded"].parent_id is None

    def test_ids_unique_across_concurrent_use(self, tracer):
        ids = []

        def worker() -> None:
            for _ in range(50):
                span = tracer.start_span("x")
                tracer.finish(span)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in tracer.spans()]
        assert len(ids) == len(set(ids)) == 200


class TestGlobals:
    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = Tracer(enabled=False)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)

    def test_records_are_json_ready(self, tracer):
        with tracer.span("record", K=3):
            pass
        (record,) = tracer.records()
        assert record["kind"] == "span"
        assert record["name"] == "record"
        assert record["attributes"] == {"K": 3}
        assert record["duration_ms"] == pytest.approx(1000.0)


class TestSpanObject:
    def test_open_span_has_no_duration(self):
        span = Span(name="open", span_id="1", parent_id=None, start_s=0.0)
        assert span.duration_ms is None
        assert span.cpu_ms is None


class TestTraceContext:
    def test_root_span_trace_id_deterministic_without_prefix(self, tracer):
        with tracer.span("root") as root:
            pass
        assert root.trace_id == f"{1:032x}"

    def test_children_inherit_the_root_trace_id(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id

    def test_random_trace_ids_differ_across_roots(self):
        traced = Tracer(enabled=True)
        with traced.span("a") as a:
            pass
        with traced.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32

    def test_context_round_trips_through_traceparent(self, tracer):
        with tracer.span("root") as root:
            header = format_traceparent(root.context)
        assert parse_traceparent(header) == root.context

    def test_dashed_span_ids_survive_the_wire_format(self):
        context = SpanContext(trace_id="ab" * 16, span_id="3fa9c1-000000000007")
        assert parse_traceparent(format_traceparent(context)) == context

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-zz-1-01",                      # non-hex trace id
            "ff-" + "ab" * 16 + "-1-01",       # forbidden version
            "00-" + "00" * 16 + "-1-01",       # all-zero trace id
            "00-" + "ab" * 16 + "--01",        # empty span id
            "00-" + "ab" * 16 + "-1-0",        # short flags
            "00-" + "ab" * 8 + "-1-01",        # short trace id
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_attach_adopts_remote_parent_and_trace(self, tracer):
        remote = SpanContext(trace_id="cd" * 16, span_id="remote-01")
        with tracer.attach(remote):
            with tracer.span("local") as span:
                pass
        assert span.trace_id == remote.trace_id
        assert span.parent_id == remote.span_id

    def test_attach_none_is_a_no_op(self, tracer):
        with tracer.attach(None):
            with tracer.span("local") as span:
                pass
        assert span.parent_id is None

    def test_attach_restores_previous_parent(self, tracer):
        remote = SpanContext(trace_id="cd" * 16, span_id="remote-01")
        with tracer.span("outer") as outer:
            with tracer.attach(remote):
                pass
            with tracer.span("after") as after:
                pass
        assert after.parent_id == outer.span_id

    def test_current_context_visible_under_attach(self, tracer):
        remote = SpanContext(trace_id="cd" * 16, span_id="remote-01")
        with tracer.attach(remote):
            assert Tracer.current_context() == remote
            assert Tracer.current_span() is None
        assert Tracer.current_context() is None

    def test_record_carries_trace_id(self, tracer):
        with tracer.span("root"):
            pass
        (record,) = tracer.records()
        assert record["trace_id"] == f"{1:032x}"

    def test_null_span_has_empty_trace_id(self):
        assert NULL_SPAN.trace_id == ""
