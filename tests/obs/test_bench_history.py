"""Tests for the benchmark-trajectory tracker (repro.obs.bench_history)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.bench_history import (
    BenchRecord,
    append_history,
    detect_regressions,
    load_history,
    render_trajectory,
    validate_history_record,
)


def _record(gate="sweep", at=1.0, **metrics) -> BenchRecord:
    metrics = metrics or {"speedup": 10.0}
    return BenchRecord(
        gate=gate,
        metrics=dict(metrics),
        recorded_unix=at,
        directions={name: "higher" for name in metrics},
    )


def _run(gate: str, at: float, value: float, direction: str = "higher") -> BenchRecord:
    return BenchRecord(
        gate=gate,
        metrics={"m": value},
        recorded_unix=at,
        directions={"m": direction},
    )


class TestBenchRecord:
    def test_round_trips_through_record_dict(self):
        original = BenchRecord(
            gate="cluster",
            metrics={"speedup": 2.5, "p99_s": 0.02},
            recorded_unix=1700000000.0,
            directions={"speedup": "higher", "p99_s": "lower"},
            meta={"sha": "abc123"},
        )
        assert BenchRecord.from_record(original.to_record()) == original

    def test_rejects_empty_gate_and_metrics(self):
        with pytest.raises(ObservabilityError, match="gate name"):
            BenchRecord(gate="", metrics={"m": 1.0}, recorded_unix=0.0)
        with pytest.raises(ObservabilityError, match="at least one metric"):
            BenchRecord(gate="g", metrics={}, recorded_unix=0.0)

    def test_rejects_bad_direction(self):
        with pytest.raises(ObservabilityError, match="direction"):
            BenchRecord(
                gate="g",
                metrics={"m": 1.0},
                recorded_unix=0.0,
                directions={"m": "sideways"},
            )

    def test_rejects_direction_for_unknown_metric(self):
        with pytest.raises(ObservabilityError, match="unknown metric"):
            BenchRecord(
                gate="g",
                metrics={"m": 1.0},
                recorded_unix=0.0,
                directions={"other": "higher"},
            )


class TestValidateHistoryRecord:
    def test_clean_record(self):
        assert validate_history_record(_record().to_record()) == []

    def test_missing_fields_reported(self):
        problems = validate_history_record({"kind": "bench"})
        assert any("gate" in p for p in problems)
        assert any("recorded_unix" in p for p in problems)

    def test_wrong_kind_and_bad_values(self):
        problems = validate_history_record(
            {
                "kind": "span",
                "gate": "g",
                "metrics": {"m": "fast"},
                "recorded_unix": -3,
            }
        )
        assert any("kind" in p for p in problems)
        assert any("must be a number" in p for p in problems)
        assert any("recorded_unix" in p for p in problems)


class TestAppendLoad:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_history.jsonl"
        first = _record(at=1.0)
        second = _record(at=2.0, speedup=11.0)
        append_history(path, first)
        append_history(path, second)
        assert load_history(path) == [first, second]
        # Append-only: two records, one JSON object per line.
        assert len(path.read_text().splitlines()) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_bad_line_fails_loudly_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(_record().to_record()) + "\nnot json\n")
        with pytest.raises(ObservabilityError, match=r"bad\.jsonl:2"):
            load_history(path)

    def test_schema_invalid_record_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "bench", "gate": ""}\n')
        with pytest.raises(ObservabilityError, match=":1"):
            load_history(path)


class TestDetectRegressions:
    def test_higher_metric_dropping_past_tolerance_flags(self):
        runs = [_run("g", t, 10.0) for t in range(5)] + [_run("g", 5.0, 8.0)]
        (regression,) = detect_regressions(runs, tolerance=0.10)
        assert regression.gate == "g"
        assert regression.metric == "m"
        assert regression.value == 8.0
        assert regression.baseline == 10.0
        assert "trailing median" in regression.describe()

    def test_within_tolerance_not_flagged(self):
        runs = [_run("g", t, 10.0) for t in range(5)] + [_run("g", 5.0, 9.5)]
        assert detect_regressions(runs, tolerance=0.10) == []

    def test_lower_metric_rising_flags(self):
        runs = [
            _run("g", 0.0, 0.010, "lower"),
            _run("g", 1.0, 0.010, "lower"),
            _run("g", 2.0, 0.015, "lower"),
        ]
        (regression,) = detect_regressions(runs, tolerance=0.10)
        assert regression.direction == "lower"

    def test_improvement_never_flags(self):
        runs = [_run("g", 0.0, 10.0), _run("g", 1.0, 20.0)]
        assert detect_regressions(runs) == []

    def test_single_run_gates_skipped(self):
        assert detect_regressions([_run("g", 0.0, 10.0)]) == []

    def test_undirected_metrics_never_flag(self):
        runs = [
            BenchRecord(gate="g", metrics={"m": 10.0}, recorded_unix=0.0),
            BenchRecord(gate="g", metrics={"m": 1.0}, recorded_unix=1.0),
        ]
        assert detect_regressions(runs) == []

    def test_window_bounds_the_baseline(self):
        # Old bad runs fall out of the window; the recent median rules.
        runs = [_run("g", float(t), 2.0) for t in range(3)]
        runs += [_run("g", 10.0 + t, 10.0) for t in range(5)]
        runs.append(_run("g", 20.0, 8.0))
        (regression,) = detect_regressions(runs, tolerance=0.10, window=5)
        assert regression.baseline == 10.0

    def test_median_tolerates_one_noisy_run(self):
        runs = [
            _run("g", 0.0, 10.0),
            _run("g", 1.0, 30.0),  # one-off spike must not set the bar
            _run("g", 2.0, 10.0),
            _run("g", 3.0, 9.8),
        ]
        assert detect_regressions(runs, tolerance=0.10) == []

    def test_zero_baseline_direction_aware(self):
        runs = [
            _run("g", 0.0, 0.0, "lower"),
            _run("g", 1.0, 0.5, "lower"),
        ]
        (regression,) = detect_regressions(runs)
        assert regression.ratio == float("inf")

    def test_rejects_bad_tolerance_and_window(self):
        with pytest.raises(ObservabilityError, match="tolerance"):
            detect_regressions([], tolerance=-0.1)
        with pytest.raises(ObservabilityError, match="window"):
            detect_regressions([], window=0)

    def test_unsorted_input_grouped_by_timestamp(self):
        runs = [_run("g", 5.0, 8.0)] + [_run("g", float(t), 10.0) for t in range(5)]
        (regression,) = detect_regressions(runs, tolerance=0.10)
        assert regression.value == 8.0


class TestRenderTrajectory:
    def test_table_and_regressions_section(self):
        runs = [_run("g", t, 10.0) for t in range(4)] + [_run("g", 4.0, 7.0)]
        report, regressions = render_trajectory(runs, tolerance=0.10)
        assert report.startswith("-- benchmark trajectory --")
        assert "m (higher)" in report
        assert "-- regressions" in report
        assert len(regressions) == 1

    def test_clean_history_reports_no_regressions(self):
        runs = [_run("g", t, 10.0) for t in range(3)]
        report, regressions = render_trajectory(runs)
        assert regressions == []
        assert "no regressions" in report

    def test_gate_filter(self):
        runs = [_run("a", 0.0, 1.0), _run("b", 0.0, 2.0)]
        report, _ = render_trajectory(runs, gate="a")
        assert "a" in report.splitlines()[2]
        assert all("b " not in line for line in report.splitlines()[2:])

    def test_empty_history(self):
        report, regressions = render_trajectory([])
        assert "no bench-history records" in report
        assert regressions == []
