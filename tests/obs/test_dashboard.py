"""Tests for the live cluster dashboard (repro.obs.dashboard)."""

from __future__ import annotations

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs.dashboard import ClusterTop, render_frame, snapshot_frame


def _stats(requests_by_shard, totals_hit_rate=0.5, routed=10.0):
    return {
        "router": {
            "cluster.routed": {"value": routed},
            "cluster.failovers": {"value": 1.0},
            "cluster.local_fallbacks": {"value": 0.0},
            "cluster.restarts": {"value": 2.0},
        },
        "shards": {
            shard_id: {
                "requests": float(requests),
                "cache_hit_rate": 0.25,
                "request_latency_p50_s": 0.002,
                "request_latency_p99_s": 0.009,
                "cache_entries": 40.0,
                "restarts": 0.0,
                "pid": 1000 + index,
            }
            for index, (shard_id, requests) in enumerate(
                sorted(requests_by_shard.items())
            )
        },
        "totals": {"cache_hit_rate": totals_hit_rate},
    }


class TestSnapshotFrame:
    def test_first_frame_has_zero_qps(self):
        frame = snapshot_frame(_stats({"shard-0": 100}))
        assert frame.total_requests == 100.0
        assert frame.total_qps == 0.0
        (row,) = frame.rows
        assert row.qps == 0.0
        assert row.pid == 1000
        assert row.p50_ms == pytest.approx(2.0)
        assert row.p99_ms == pytest.approx(9.0)

    def test_qps_from_request_deltas(self):
        previous = _stats({"shard-0": 100, "shard-1": 50})
        current = _stats({"shard-0": 120, "shard-1": 80})
        frame = snapshot_frame(current, previous=previous, elapsed_s=2.0)
        rows = {row.shard_id: row for row in frame.rows}
        assert rows["shard-0"].qps == pytest.approx(10.0)
        assert rows["shard-1"].qps == pytest.approx(15.0)
        assert frame.total_qps == pytest.approx(25.0)

    def test_counter_reset_clamps_to_zero(self):
        previous = _stats({"shard-0": 100})
        current = _stats({"shard-0": 5})  # restarted shard's counters reset
        frame = snapshot_frame(current, previous=previous, elapsed_s=1.0)
        assert frame.rows[0].qps == 0.0

    def test_new_shard_between_polls_has_zero_qps(self):
        previous = _stats({"shard-0": 100})
        current = _stats({"shard-0": 110, "shard-1": 40})
        frame = snapshot_frame(current, previous=previous, elapsed_s=1.0)
        rows = {row.shard_id: row for row in frame.rows}
        assert rows["shard-1"].qps == 0.0

    def test_router_counters_and_totals(self):
        frame = snapshot_frame(_stats({"shard-0": 1}, totals_hit_rate=0.75))
        assert frame.routed == 10.0
        assert frame.failovers == 1.0
        assert frame.restarts == 2.0
        assert frame.total_hit_rate == 0.75

    def test_missing_latency_fields_render_as_none(self):
        stats = _stats({"shard-0": 1})
        del stats["shards"]["shard-0"]["request_latency_p50_s"]
        del stats["shards"]["shard-0"]["request_latency_p99_s"]
        frame = snapshot_frame(stats)
        assert frame.rows[0].p50_ms is None
        assert frame.rows[0].p99_ms is None


class TestRenderFrame:
    def test_header_and_one_row_per_shard(self):
        frame = snapshot_frame(_stats({"shard-0": 100, "shard-1": 50}))
        text = render_frame(frame)
        lines = text.splitlines()
        assert lines[0].startswith("repro cluster top")
        assert "shards 2" in lines[0]
        assert "failovers 1" in lines[1]
        assert any(line.startswith("shard-0") for line in lines)
        assert any(line.startswith("shard-1") for line in lines)

    def test_missing_latency_renders_dash(self):
        stats = _stats({"shard-0": 1})
        del stats["shards"]["shard-0"]["request_latency_p50_s"]
        del stats["shards"]["shard-0"]["request_latency_p99_s"]
        text = render_frame(snapshot_frame(stats))
        row = next(line for line in text.splitlines() if line.startswith("shard-0"))
        assert " - " in row

    def test_empty_cluster(self):
        text = render_frame(snapshot_frame({"router": {}, "shards": {}}))
        assert "(no live shards)" in text


class TestClusterTop:
    def _top(self, polls, **kwargs):
        """A ClusterTop fed from a list (StopIteration-free stub)."""
        feed = iter(polls)
        out = io.StringIO()
        top = ClusterTop(
            poll=lambda: next(feed),
            out=out,
            interval_s=0.001,
            clock=iter(range(100)).__next__,
            use_ansi=kwargs.pop("use_ansi", False),
        )
        top._sleep = lambda _s: None
        return top, out

    def test_renders_requested_iterations(self):
        top, out = self._top([_stats({"shard-0": 10}), _stats({"shard-0": 30})])
        successes = top.run(iterations=2)
        assert successes == 2
        frames = out.getvalue().count("repro cluster top")
        assert frames == 2
        # Second frame shows the delta-derived qps (20 req over 1 tick).
        assert "20.0" in out.getvalue()

    def test_poll_failures_counted_and_rendered(self):
        def boom():
            raise OSError("down")

        out = io.StringIO()
        top = ClusterTop(
            poll=boom, out=out, interval_s=0.001, clock=lambda: 0.0, use_ansi=False
        )
        top._sleep = lambda _s: None
        assert top.run(iterations=2) == 0
        assert "poll failed" in out.getvalue()

    def test_ansi_clear_only_when_enabled(self):
        top, out = self._top([_stats({"shard-0": 1})], use_ansi=True)
        top.run(iterations=1)
        assert out.getvalue().startswith("\x1b[2J\x1b[H")

    def test_keyboard_interrupt_in_sleep_exits_cleanly(self):
        def interrupt(_seconds):
            raise KeyboardInterrupt

        top, out = self._top([_stats({"shard-0": 1})] * 5)
        top._sleep = interrupt
        assert top.run(iterations=0) == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ObservabilityError, match="interval"):
            ClusterTop(poll=dict, out=io.StringIO(), interval_s=0.0)
