"""End-to-end checks that the pipeline emits the documented spans.

Every test installs a deterministic global tracer (the ``tracer``
fixture) and drives the *real* code — designer, decomposition,
clustering, solver pool, marketplace engine — asserting the span
taxonomy from docs/OBSERVABILITY.md actually shows up, with the
attributes the acceptance criteria name (archetype, K, k*, bound
slack), and that the ledger provenance columns round-trip through
replay verification.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.collusion.clustering import cluster_collusive_workers
from repro.core import ContractDesigner, DesignerConfig, QuadraticEffort, solve_subproblems
from repro.core.utility import RequesterObjective
from repro.errors import ServingError
from repro.serving import SolverPool
from repro.serving.replay import verify_round
from repro.serving.workload import synthetic_subproblems
from repro.simulation import MarketplaceSimulation
from repro.simulation.ledger import RoundRecord
from repro.simulation.policies import DynamicContractPolicy
from repro.types import RequesterParameters, WorkerParameters, WorkerType
from repro.workers import build_population


@pytest.fixture()
def population(small_trace, small_clusters, small_proxy, small_malice):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=small_trace.worker_ids(WorkerType.HONEST)[:20],
    )


class TestDesignerSpans:
    def test_design_emits_full_span_tree(self, tracer):
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=6))
        psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
        designer.design(psi, WorkerParameters.honest(beta=1.0), feedback_weight=1.0)
        by_name = {}
        for span in tracer.spans():
            by_name.setdefault(span.name, span)
        assert {
            "core.design",
            "core.candidate_sweep",
            "core.candidate_build",
            "core.select",
        } <= set(by_name)

        design = by_name["core.design"]
        assert design.attributes["archetype"] == "honest"
        assert design.attributes["K"] == 6
        assert "k_opt" in design.attributes
        assert design.attributes["slack_lower"] >= -1e-9
        assert design.attributes["slack_upper"] >= -1e-9

        sweep = by_name["core.candidate_sweep"]
        assert sweep.parent_id == design.span_id
        assert sweep.attributes["n_candidates"] >= 1
        assert by_name["core.candidate_build"].parent_id == sweep.span_id
        assert by_name["core.select"].attributes["k_star"] == design.attributes["k_opt"]

    def test_disabled_tracer_emits_nothing(self, tracer):
        tracer.enabled = False
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=6))
        psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
        designer.design(psi, WorkerParameters.honest(beta=1.0), feedback_weight=1.0)
        assert tracer.spans() == ()


class TestDecompositionSpan:
    def test_solve_subproblems_traced(self, tracer):
        workload = synthetic_subproblems(n_subjects=4, n_archetypes=2, seed=5)
        solve_subproblems(workload, mu=1.0)
        (span,) = [s for s in tracer.spans() if s.name == "core.decomposition"]
        assert span.attributes["n_subjects"] == 4
        assert 0 <= span.attributes["n_hired"] <= 4
        design_spans = [s for s in tracer.spans() if s.name == "core.design"]
        assert all(s.parent_id == span.span_id for s in design_spans)


class TestClusteringSpan:
    def test_cluster_traced(self, tracer):
        targets = {
            "w1": {"s1", "s2"},
            "w2": {"s1", "s2"},
            "w3": {"s9"},
        }
        clusters = cluster_collusive_workers(targets)
        (span,) = [s for s in tracer.spans() if s.name == "collusion.cluster"]
        assert span.attributes["n_workers"] == 3
        assert span.attributes["n_communities"] == clusters.n_communities
        assert span.attributes["largest_community"] >= 1


class TestServingSpan:
    def test_solve_batch_traced(self, tracer):
        workload = synthetic_subproblems(n_subjects=6, n_archetypes=2, seed=11)
        with SolverPool(n_workers=0) as pool:
            pool.solve(workload)
        (span,) = [s for s in tracer.spans() if s.name == "serving.solve_batch"]
        assert span.attributes["n_requests"] == 6
        assert span.attributes["n_unique"] == 2
        assert span.attributes["n_workers"] == 0


class TestSimulationRoundTrip:
    def test_round_spans_and_ledger_provenance(self, tracer, population):
        policy = DynamicContractPolicy(mu=1.0)
        objective = RequesterObjective(RequesterParameters(mu=1.0))
        try:
            ledger = MarketplaceSimulation(
                population, objective, policy, seed=3
            ).run(2)
        finally:
            policy.close()
        round_spans = [s for s in tracer.spans() if s.name == "simulation.round"]
        assert [s.attributes["round_index"] for s in round_spans] == [0, 1]
        span_ids = {s.span_id for s in round_spans}
        for record in ledger.records:
            assert record.span_id in span_ids
        # Round 0 designs contracts; its cost lands in the ledger and
        # in the round span.
        assert ledger.records[0].design_ms is not None
        assert ledger.records[0].design_ms >= 0.0
        assert ledger.total_design_ms() >= ledger.records[0].design_ms
        assert round_spans[0].attributes["design_ms"] == ledger.records[0].design_ms

    def test_untraced_run_still_times_design(self, tracer, population):
        tracer.enabled = False
        policy = DynamicContractPolicy(mu=1.0)
        objective = RequesterObjective(RequesterParameters(mu=1.0))
        try:
            ledger = MarketplaceSimulation(
                population, objective, policy, seed=3
            ).run(1)
        finally:
            policy.close()
        record = ledger.records[0]
        assert record.span_id is None
        assert record.design_ms is not None


class TestReplayProvenance:
    def _record(self, **overrides):
        record = RoundRecord(
            round_index=0,
            outcomes={},
            benefit=0.0,
            total_compensation=0.0,
            utility=0.0,
            design_ms=1.5,
            span_id="00000000000a",
        )
        return dataclasses.replace(record, **overrides)

    def test_well_formed_provenance_verifies(self):
        assert verify_round(self._record(), [], mu=1.0) == 0
        assert verify_round(self._record(design_ms=None, span_id=None), [], mu=1.0) == 0

    def test_negative_design_ms_rejected(self):
        with pytest.raises(ServingError, match="design_ms"):
            verify_round(self._record(design_ms=-1.0), [], mu=1.0)

    def test_non_finite_design_ms_rejected(self):
        with pytest.raises(ServingError, match="design_ms"):
            verify_round(self._record(design_ms=float("nan")), [], mu=1.0)

    def test_empty_span_id_rejected(self):
        with pytest.raises(ServingError, match="span_id"):
            verify_round(self._record(span_id=""), [], mu=1.0)
