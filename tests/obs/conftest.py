"""Shared fixtures: isolated global tracer/registry per test."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer


class SteppingClock:
    """Deterministic clock advancing a fixed step per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.time = 0.0
        self.step = step

    def __call__(self) -> float:
        now = self.time
        self.time += self.step
        return now


@pytest.fixture()
def clock() -> SteppingClock:
    return SteppingClock()


@pytest.fixture()
def tracer(clock):
    """A deterministic, enabled tracer installed as the global one."""
    fresh = Tracer(enabled=True, clock=clock, id_prefix="")
    fresh.profile_cpu = False
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


@pytest.fixture()
def registry():
    """A fresh metrics registry installed as the global one."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)
