"""Tests for counters, gauges, histograms and order-independent merge."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(2.0)
        gauge.add(-0.5)
        assert gauge.value == pytest.approx(1.5)

    def test_rejects_non_finite(self):
        with pytest.raises(ObservabilityError):
            Gauge("g").set(float("inf"))


class TestHistogram:
    def test_exact_aggregates_survive_reservoir_overflow(self):
        histogram = Histogram("h", max_samples=3)
        histogram.observe_many([5.0, 1.0, 2.0, 3.0, 4.0])
        assert histogram.count == 5
        assert histogram.total == pytest.approx(15.0)
        assert histogram.min == pytest.approx(1.0)
        assert histogram.max == pytest.approx(5.0)
        assert histogram.samples == (2.0, 3.0, 4.0)

    def test_summary_none_when_idle(self):
        assert Histogram("h").summary() is None
        assert Histogram("h").mean == 0.0

    def test_rejects_non_finite_and_bad_bound(self):
        with pytest.raises(ObservabilityError):
            Histogram("h").observe(float("nan"))
        with pytest.raises(ObservabilityError):
            Histogram("h", max_samples=0)

    def test_metric_names_validated(self):
        with pytest.raises(ObservabilityError):
            Histogram("has space")


class TestQuantile:
    def test_linear_interpolation_between_closest_ranks(self):
        histogram = Histogram("h")
        histogram.observe_many([1.0, 2.0, 3.0, 4.0])
        assert histogram.quantile(0.0) == pytest.approx(1.0)
        assert histogram.quantile(0.5) == pytest.approx(2.5)
        assert histogram.quantile(1.0) == pytest.approx(4.0)
        assert histogram.quantile(0.25) == pytest.approx(1.75)

    def test_matches_numpy_convention(self):
        import numpy as np

        values = [0.4, 2.7, 1.1, 9.3, 5.5, 0.1, 3.3]
        histogram = Histogram("h")
        histogram.observe_many(values)
        for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(
                float(np.quantile(values, q))
            )

    def test_single_sample_is_every_quantile(self):
        histogram = Histogram("h")
        histogram.observe(3.25)
        assert histogram.quantile(0.0) == pytest.approx(3.25)
        assert histogram.quantile(0.99) == pytest.approx(3.25)

    def test_quantile_over_retained_reservoir_only(self):
        histogram = Histogram("h", max_samples=3)
        histogram.observe_many([100.0, 1.0, 2.0, 3.0])
        # The reservoir retains [1, 2, 3]; the evicted 100 is gone.
        assert histogram.quantile(1.0) == pytest.approx(3.0)
        assert histogram.quantile(0.5) == pytest.approx(2.0)

    def test_rejects_out_of_range_and_empty(self):
        histogram = Histogram("h")
        with pytest.raises(ObservabilityError):
            histogram.quantile(-0.1)
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.1)
        with pytest.raises(ObservabilityError):
            histogram.quantile(0.5)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=64,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantile_lies_within_sample_range(self, values, q):
        histogram = Histogram("h")
        histogram.observe_many(values)
        result = histogram.quantile(q)
        assert min(values) <= result <= max(values)


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError):
            registry.gauge("a")

    def test_snapshot_covers_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"value": 2.0}
        assert snapshot["g"] == {"value": 1.5}
        assert snapshot["h"]["count"] == 1.0
        assert snapshot["h"]["mean"] == pytest.approx(3.0)

    def test_metrics_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert [metric.name for metric in registry.metrics()] == ["a", "z"]


def _histogram_from(values, max_samples=16):
    histogram = Histogram("h", max_samples=max_samples)
    histogram.observe_many(values)
    return histogram


class TestMerge:
    def test_merge_adds_exact_aggregates(self):
        merged = merge_histograms(
            [_histogram_from([1.0, 2.0]), _histogram_from([3.0])]
        )
        assert merged.count == 3
        assert merged.total == pytest.approx(6.0)
        assert merged.min == pytest.approx(1.0)
        assert merged.max == pytest.approx(3.0)

    def test_merge_nothing(self):
        merged = merge_histograms([])
        assert merged.count == 0
        assert merged.samples == ()

    @settings(max_examples=60, deadline=None)
    @given(
        groups=st.lists(
            st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                max_size=30,
            ),
            max_size=6,
        ),
        seed=st.randoms(use_true_random=False),
        bound=st.integers(min_value=1, max_value=20),
    )
    def test_merge_is_order_independent(self, groups, seed, bound):
        """Any permutation of the inputs yields an identical merge."""
        histograms = [_histogram_from(values, max_samples=bound) for values in groups]
        shuffled = list(histograms)
        seed.shuffle(shuffled)
        merged = merge_histograms(histograms, max_samples=bound)
        merged_shuffled = merge_histograms(shuffled, max_samples=bound)
        assert merged.count == merged_shuffled.count
        assert merged.total == pytest.approx(merged_shuffled.total)
        assert merged.samples == merged_shuffled.samples
        if merged.count:
            assert merged.min == merged_shuffled.min
            assert merged.max == merged_shuffled.max


class TestMergeEdgeCases:
    def test_merge_histograms_from_empty_registries(self):
        """Merging only-idle instruments yields a well-formed zero."""
        registries = [MetricsRegistry(), MetricsRegistry()]
        histograms = [r.histogram("serving.latency_s") for r in registries]
        merged = merge_histograms(histograms, name="serving.latency_s")
        assert merged.count == 0
        assert merged.total == 0.0
        assert merged.samples == ()
        assert merged.summary() is None

    def test_merge_mixes_empty_and_populated(self):
        empty = Histogram("h")
        full = Histogram("h")
        full.observe_many([1.0, 2.0])
        merged = merge_histograms([empty, full])
        assert merged.count == 2
        assert merged.min == 1.0
        assert merged.max == 2.0

    def test_disjoint_metric_names_merge_into_named_result(self):
        """merge_histograms pools reservoirs regardless of input names;
        the caller picks the output name (federate merges per name, so
        disjoint names never pool there -- see test_aggregate)."""
        a = Histogram("serving.a_s")
        b = Histogram("serving.b_s")
        a.observe(1.0)
        b.observe(3.0)
        merged = merge_histograms([a, b], name="serving.pooled_s")
        assert merged.name == "serving.pooled_s"
        assert merged.count == 2
        assert merged.samples == (1.0, 3.0)

    def test_max_samples_overflow_during_merge_keeps_exact_aggregates(self):
        """A merge whose union exceeds the bound thins the reservoir but
        never the exact count/total/min/max."""
        left = Histogram("h", max_samples=64)
        right = Histogram("h", max_samples=64)
        left.observe_many(float(v) for v in range(60))
        right.observe_many(float(v) for v in range(60, 120))
        merged = merge_histograms([left, right], max_samples=16)
        assert len(merged.samples) == 16
        assert merged.count == 120
        assert merged.total == pytest.approx(sum(range(120)))
        assert merged.min == 0.0
        assert merged.max == 119.0
        # Thinned reservoir stays sorted and within the observed range.
        assert list(merged.samples) == sorted(merged.samples)
        assert merged.samples[0] >= 0.0 and merged.samples[-1] <= 119.0

    def test_quantile_single_sample_matches_numpy(self):
        import numpy as np

        histogram = Histogram("h")
        histogram.observe(42.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == float(np.quantile([42.0], q))

    def test_quantile_duplicate_samples_match_numpy(self):
        import numpy as np

        values = [2.0, 2.0, 2.0, 5.0, 5.0]
        histogram = Histogram("h")
        histogram.observe_many(values)
        for q in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == pytest.approx(
                float(np.quantile(values, q))
            )


class TestAdopt:
    def test_adopt_registers_a_prebuilt_instrument(self):
        registry = MetricsRegistry()
        merged = merge_histograms([], name="serving.latency_s")
        registry.adopt(merged)
        assert registry.get("serving.latency_s") is merged

    def test_adopt_same_object_is_idempotent(self):
        registry = MetricsRegistry()
        merged = merge_histograms([], name="h")
        registry.adopt(merged)
        registry.adopt(merged)
        assert registry.get("h") is merged

    def test_adopt_name_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("clash")
        with pytest.raises(ObservabilityError, match="clash"):
            registry.adopt(Histogram("clash"))
