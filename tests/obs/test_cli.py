"""Tests for the ``repro obs`` CLI and the ``--obs-out`` session."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.obs.cli import add_obs_arguments, add_obs_out_argument, obs_session, run_obs
from repro.obs.export import SPAN_SCHEMA, write_jsonl


def _parse(argv):
    parser = argparse.ArgumentParser(prog="obs")
    add_obs_arguments(parser)
    return parser.parse_args(argv)


@pytest.fixture()
def dump(tmp_path, tracer, registry):
    """A valid obs dump with two spans and one counter."""
    with tracer.span("core.design", K=3):
        with tracer.span("core.candidate_build"):
            pass
    registry.counter("serving.requests").inc(4)
    path = tmp_path / "spans.jsonl"
    write_jsonl(path, tracer=tracer, registry=registry)
    return path


class TestReport:
    def test_renders_tree(self, dump, capsys):
        assert run_obs(_parse(["report", str(dump)])) == 0
        out = capsys.readouterr().out
        assert "-- span tree --" in out
        assert "core.design" in out
        assert "  core.candidate_build" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = run_obs(_parse(["report", str(tmp_path / "nope.jsonl")]))
        assert code == 2
        assert "error:" in capsys.readouterr().out


class TestValidate:
    def test_valid_dump_exits_0(self, dump, capsys):
        assert run_obs(_parse(["validate", str(dump)])) == 0
        assert "2 span record(s) valid" in capsys.readouterr().out

    def test_min_spans_gate(self, dump, capsys):
        assert run_obs(_parse(["validate", str(dump), "--min-spans", "3"])) == 1
        assert "expected >= 3" in capsys.readouterr().out

    def test_schema_problems_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span", "name": "x"}\n')
        assert run_obs(_parse(["validate", str(bad)])) == 1
        assert "schema problem(s)" in capsys.readouterr().out

    def test_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert run_obs(_parse(["validate", str(bad)])) == 2


class TestSchema:
    def test_prints_span_schema(self, capsys):
        assert run_obs(_parse(["schema"])) == 0
        assert json.loads(capsys.readouterr().out) == SPAN_SCHEMA


class TestMetrics:
    def test_renders_prometheus_text(self, dump, capsys):
        assert run_obs(_parse(["metrics", str(dump)])) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serving_requests counter" in out
        assert "repro_serving_requests 4.0" in out


class TestObsOutFlag:
    def test_adds_flag_with_none_default(self):
        parser = argparse.ArgumentParser()
        add_obs_out_argument(parser)
        assert parser.parse_args([]).obs_out is None
        assert parser.parse_args(["--obs-out", "x.jsonl"]).obs_out == "x.jsonl"


class TestObsSession:
    def test_none_path_is_noop(self, tracer):
        tracer.enabled = False
        with obs_session(None):
            assert not tracer.enabled
        assert not tracer.enabled

    def test_enables_tracing_and_dumps(self, tmp_path, tracer, registry, capsys):
        tracer.enabled = False
        path = tmp_path / "out.jsonl"
        with obs_session(str(path)):
            assert tracer.enabled
            with tracer.span("traced"):
                pass
        assert not tracer.enabled
        assert "wrote 1 obs record(s)" in capsys.readouterr().out
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "traced"

    def test_dumps_even_when_body_raises(self, tmp_path, tracer, registry):
        path = tmp_path / "out.jsonl"
        with pytest.raises(RuntimeError):
            with obs_session(str(path)):
                with tracer.span("partial"):
                    pass
                raise RuntimeError("boom")
        assert path.exists()
