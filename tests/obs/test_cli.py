"""Tests for the ``repro obs`` CLI and the ``--obs-out`` session."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.obs.cli import add_obs_arguments, add_obs_out_argument, obs_session, run_obs
from repro.obs.export import SPAN_SCHEMA, write_jsonl


def _parse(argv):
    parser = argparse.ArgumentParser(prog="obs")
    add_obs_arguments(parser)
    return parser.parse_args(argv)


@pytest.fixture()
def dump(tmp_path, tracer, registry):
    """A valid obs dump with two spans and one counter."""
    with tracer.span("core.design", K=3):
        with tracer.span("core.candidate_build"):
            pass
    registry.counter("serving.requests").inc(4)
    path = tmp_path / "spans.jsonl"
    write_jsonl(path, tracer=tracer, registry=registry)
    return path


class TestReport:
    def test_renders_tree(self, dump, capsys):
        assert run_obs(_parse(["report", str(dump)])) == 0
        out = capsys.readouterr().out
        assert "-- span tree --" in out
        assert "core.design" in out
        assert "  core.candidate_build" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = run_obs(_parse(["report", str(tmp_path / "nope.jsonl")]))
        assert code == 2
        assert "error:" in capsys.readouterr().out


class TestValidate:
    def test_valid_dump_exits_0(self, dump, capsys):
        assert run_obs(_parse(["validate", str(dump)])) == 0
        assert "2 span record(s) valid" in capsys.readouterr().out

    def test_min_spans_gate(self, dump, capsys):
        assert run_obs(_parse(["validate", str(dump), "--min-spans", "3"])) == 1
        assert "expected >= 3" in capsys.readouterr().out

    def test_schema_problems_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "span", "name": "x"}\n')
        assert run_obs(_parse(["validate", str(bad)])) == 1
        assert "schema problem(s)" in capsys.readouterr().out

    def test_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert run_obs(_parse(["validate", str(bad)])) == 2


class TestSchema:
    def test_prints_span_schema(self, capsys):
        assert run_obs(_parse(["schema"])) == 0
        assert json.loads(capsys.readouterr().out) == SPAN_SCHEMA


class TestMetrics:
    def test_renders_prometheus_text(self, dump, capsys):
        assert run_obs(_parse(["metrics", str(dump)])) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serving_requests counter" in out
        assert "repro_serving_requests 4.0" in out


class TestObsOutFlag:
    def test_adds_flag_with_none_default(self):
        parser = argparse.ArgumentParser()
        add_obs_out_argument(parser)
        assert parser.parse_args([]).obs_out is None
        assert parser.parse_args(["--obs-out", "x.jsonl"]).obs_out == "x.jsonl"


class TestObsSession:
    def test_none_path_is_noop(self, tracer):
        tracer.enabled = False
        with obs_session(None):
            assert not tracer.enabled
        assert not tracer.enabled

    def test_enables_tracing_and_dumps(self, tmp_path, tracer, registry, capsys):
        tracer.enabled = False
        path = tmp_path / "out.jsonl"
        with obs_session(str(path)):
            assert tracer.enabled
            with tracer.span("traced"):
                pass
        assert not tracer.enabled
        assert "wrote 1 obs record(s)" in capsys.readouterr().out
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "traced"

    def test_dumps_even_when_body_raises(self, tmp_path, tracer, registry):
        path = tmp_path / "out.jsonl"
        with pytest.raises(RuntimeError):
            with obs_session(str(path)):
                with tracer.span("partial"):
                    pass
                raise RuntimeError("boom")
        assert path.exists()


class TestReportMultiPath:
    def test_multiple_files_merge_into_one_tree(self, tmp_path, tracer, capsys):
        """Router-side and shard-side dumps merge via shared span ids."""
        with tracer.span("cluster.solve_group") as group:
            pass
        router_dump = tmp_path / "router.jsonl"
        write_jsonl(router_dump, tracer=tracer)
        shard_dump = tmp_path / "shard.jsonl"
        shard_dump.write_text(
            json.dumps(
                {
                    "kind": "span",
                    "name": "serving.solve_batch",
                    "span_id": "shard-01",
                    "parent_id": group.span_id,
                    "trace_id": group.trace_id,
                    "start_s": 0.1,
                    "end_s": 0.2,
                    "duration_ms": 100.0,
                }
            )
            + "\n"
        )
        assert run_obs(_parse(["report", str(router_dump), str(shard_dump)])) == 0
        out = capsys.readouterr().out
        assert "cluster.solve_group" in out
        assert "  serving.solve_batch" in out
        assert "<detached>" not in out


class TestTop:
    def test_unreachable_endpoint_exits_2(self, capsys):
        code = run_obs(
            _parse(
                [
                    "top",
                    "http://127.0.0.1:1",  # nothing listens on port 1
                    "--iterations",
                    "1",
                    "--interval",
                    "0.01",
                ]
            )
        )
        assert code == 2


class TestBench:
    def _history(self, tmp_path, values):
        from repro.obs.bench_history import BenchRecord, append_history

        path = tmp_path / "BENCH_history.jsonl"
        for at, value in enumerate(values):
            append_history(
                path,
                BenchRecord(
                    gate="sweep",
                    metrics={"speedup": value},
                    recorded_unix=float(at),
                    directions={"speedup": "higher"},
                ),
            )
        return path

    def test_clean_history_exits_0(self, tmp_path, capsys):
        path = self._history(tmp_path, [10.0, 10.5, 10.2])
        assert run_obs(_parse(["bench", str(path)])) == 0
        out = capsys.readouterr().out
        assert "-- benchmark trajectory --" in out
        assert "no regressions" in out

    def test_regression_exits_1(self, tmp_path, capsys):
        path = self._history(tmp_path, [10.0, 10.0, 10.0, 6.0])
        assert run_obs(_parse(["bench", str(path)])) == 1
        assert "-- regressions" in capsys.readouterr().out

    def test_missing_history_exits_0_with_empty_report(self, tmp_path, capsys):
        path = tmp_path / "absent.jsonl"
        assert run_obs(_parse(["bench", str(path)])) == 0
        assert "no bench-history records" in capsys.readouterr().out

    def test_corrupt_history_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert run_obs(_parse(["bench", str(path)])) == 2
        assert "error:" in capsys.readouterr().out

    def test_gate_filter_flag(self, tmp_path, capsys):
        path = self._history(tmp_path, [10.0, 10.0])
        assert run_obs(_parse(["bench", str(path), "--gate", "other"])) == 0
        assert "no bench-history records for gate 'other'" in (
            capsys.readouterr().out
        )


class TestObsSessionExtraRecords:
    def test_extra_records_merge_into_the_dump(
        self, tmp_path, tracer, registry, capsys
    ):
        path = tmp_path / "merged.jsonl"
        extra = [
            {
                "kind": "span",
                "name": "serving.solve_batch",
                "span_id": "shard-x",
                "parent_id": None,
                "start_s": 0.0,
                "end_s": 1.0,
                "duration_ms": 1000.0,
                "source": "shard-0",
            }
        ]
        with obs_session(str(path), extra_records=lambda: extra):
            with tracer.span("router.side"):
                pass
        names = {
            json.loads(line)["name"] for line in path.read_text().splitlines()
        }
        assert names == {"router.side", "serving.solve_batch"}
        assert "wrote 2 obs record(s)" in capsys.readouterr().out
