"""Tests for the Table II community-size view."""

from __future__ import annotations

import pytest

from repro.collusion import (
    CollusionClusters,
    community_size_table,
    community_summary,
)
from repro.errors import DataError


def _clusters(sizes):
    communities = []
    counter = 0
    for size in sizes:
        communities.append(
            frozenset(f"w{counter + offset}" for offset in range(size))
        )
        counter += size
    return CollusionClusters(
        communities=tuple(communities), noncollusive=frozenset({"solo"})
    )


class TestSizeTable:
    def test_buckets(self):
        table = community_size_table(_clusters([2, 2, 3, 6, 8, 12]))
        assert table.counts[2] == 2
        assert table.counts[3] == 1
        assert table.counts[6] == 1
        assert table.other_count == 1  # size 8 falls in the 7-9 gap
        assert table.tail_count == 1  # size 12
        assert table.n_communities == 6

    def test_percentages_sum_to_100(self):
        table = community_size_table(_clusters([2, 3, 4, 5, 6, 7, 11]))
        total = sum(pct for _, pct in table.as_rows())
        total += table.other_percentage
        assert total == pytest.approx(100.0)

    def test_percentage_unknown_size_rejected(self):
        table = community_size_table(_clusters([2, 2]))
        with pytest.raises(DataError):
            table.percentage(9)

    def test_empty_clustering(self):
        table = community_size_table(
            CollusionClusters(communities=(), noncollusive=frozenset())
        )
        assert table.n_communities == 0
        assert table.tail_percentage == 0.0

    def test_format_contains_paper_buckets(self):
        rendered = community_size_table(_clusters([2, 10])).format()
        assert ">=10" in rendered
        assert "Percentage" in rendered


class TestSummary:
    def test_summary_counts(self):
        summary = community_summary(_clusters([2, 3, 10]))
        assert summary["n_communities"] == 3
        assert summary["n_collusive_workers"] == 15
        assert summary["n_noncollusive_malicious"] == 1
        assert summary["max_size"] == 10
        assert summary["mean_size"] == pytest.approx(5.0)

    def test_summary_empty(self):
        summary = community_summary(
            CollusionClusters(communities=(), noncollusive=frozenset())
        )
        assert summary["mean_size"] == 0.0
        assert summary["max_size"] == 0.0
