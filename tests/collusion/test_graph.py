"""Tests for the graph substrate, cross-checked against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collusion import Graph, UnionFind
from repro.errors import DataError


class TestGraph:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.n_nodes == 0
        assert graph.n_edges == 0
        assert graph.connected_components() == []

    def test_add_edge_creates_nodes(self):
        graph = Graph()
        graph.add_edge("a", "b")
        assert graph.n_nodes == 2
        assert graph.n_edges == 1
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_parallel_edges_collapse(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")
        assert graph.n_edges == 1

    def test_self_loops_ignored(self):
        graph = Graph()
        graph.add_edge("a", "a")
        assert graph.n_nodes == 1
        assert graph.n_edges == 0
        assert graph.degree("a") == 0

    def test_neighbors_and_degree(self):
        graph = Graph()
        graph.add_edges([("a", "b"), ("a", "c")])
        assert graph.neighbors("a") == {"b", "c"}
        assert graph.degree("a") == 2
        with pytest.raises(DataError):
            graph.neighbors("zz")
        with pytest.raises(DataError):
            graph.degree("zz")

    def test_components_with_isolated_node(self):
        graph = Graph()
        graph.add_edges([("a", "b"), ("b", "c")])
        graph.add_node("lonely")
        components = graph.connected_components()
        assert {frozenset(c) for c in components} == {
            frozenset({"a", "b", "c"}),
            frozenset({"lonely"}),
        }

    def test_component_of(self):
        graph = Graph()
        graph.add_edges([("a", "b"), ("c", "d")])
        assert graph.component_of("a") == {"a", "b"}
        with pytest.raises(DataError):
            graph.component_of("zz")

    def test_deep_chain_no_recursion_limit(self):
        """Iterative DFS must survive a 50k-node path graph."""
        graph = Graph()
        for index in range(50_000):
            graph.add_edge(index, index + 1)
        components = graph.connected_components()
        assert len(components) == 1
        assert len(components[0]) == 50_001


class TestUnionFind:
    def test_union_and_find(self):
        sets = UnionFind()
        sets.union("a", "b")
        sets.union("b", "c")
        assert sets.connected("a", "c")
        assert len(sets) == 3

    def test_disjoint(self):
        sets = UnionFind()
        sets.union("a", "b")
        sets.union("c", "d")
        assert not sets.connected("a", "c")

    def test_find_unknown_raises(self):
        sets = UnionFind()
        with pytest.raises(DataError):
            sets.find("missing")

    def test_groups_include_singletons(self):
        sets = UnionFind()
        sets.add("solo")
        sets.union("a", "b")
        groups = {frozenset(g) for g in sets.groups()}
        assert frozenset({"solo"}) in groups
        assert frozenset({"a", "b"}) in groups

    def test_idempotent_union(self):
        sets = UnionFind()
        root1 = sets.union("a", "b")
        root2 = sets.union("a", "b")
        assert root1 == root2


_edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30)),
    max_size=80,
)


@given(edges=_edge_lists)
@settings(max_examples=200, deadline=None)
def test_property_components_match_networkx(edges):
    """DFS components agree with networkx on random graphs."""
    graph = Graph()
    reference = nx.Graph()
    for left, right in edges:
        graph.add_edge(left, right)
        reference.add_edge(left, right)
    ours = {frozenset(c) for c in graph.connected_components()}
    theirs = {frozenset(c) for c in nx.connected_components(reference)}
    # networkx keeps self-loop-only nodes too; ours does as well (as
    # isolated nodes), so the partitions must match exactly.
    assert ours == theirs


@given(edges=_edge_lists)
@settings(max_examples=200, deadline=None)
def test_property_union_find_agrees_with_dfs(edges):
    """The two component implementations always agree."""
    graph = Graph()
    sets = UnionFind()
    for left, right in edges:
        graph.add_edge(left, right)
        sets.union(left, right)
    dfs_parts = {frozenset(c) for c in graph.connected_components()}
    uf_parts = {frozenset(g) for g in sets.groups()}
    assert dfs_parts == uf_parts
