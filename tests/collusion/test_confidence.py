"""Tests for collusion-detection confidence scoring."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collusion import (
    cluster_collusive_workers,
    community_confidences,
    edge_collision_probability,
    edge_confidence,
)
from repro.errors import DataError


class TestEdgeProbability:
    def test_zero_targets_no_collision(self):
        assert edge_collision_probability(100, 0, 3) == 0.0
        assert edge_collision_probability(100, 3, 0) == 0.0

    def test_pigeonhole_certain_collision(self):
        assert edge_collision_probability(5, 3, 3) == 1.0

    def test_single_target_each(self):
        # P(same product) = 1/N.
        assert edge_collision_probability(100, 1, 1) == pytest.approx(0.01)

    def test_exact_small_case(self):
        # N=4, a=2, b=2: P(no overlap) = C(2,2)/C(4,2) = 1/6.
        assert edge_collision_probability(4, 2, 2) == pytest.approx(5.0 / 6.0)

    def test_large_catalog_tiny_probability(self):
        probability = edge_collision_probability(75_508, 3, 3)
        assert probability < 2e-4

    def test_confidence_complements(self):
        assert edge_confidence(100, 2, 2) == pytest.approx(
            1.0 - edge_collision_probability(100, 2, 2)
        )

    def test_validation(self):
        with pytest.raises(DataError):
            edge_collision_probability(0, 1, 1)
        with pytest.raises(DataError):
            edge_collision_probability(10, -1, 1)

    @given(
        n=st.integers(min_value=2, max_value=10_000),
        a=st.integers(min_value=0, max_value=30),
        b=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_probability_bounded_and_monotone(self, n, a, b):
        probability = edge_collision_probability(n, a, b)
        assert 0.0 <= probability <= 1.0
        if a > 0:
            # More targets can only raise the collision chance.
            assert edge_collision_probability(n, a - 1, b) <= probability + 1e-12


class TestCommunityConfidence:
    def test_large_catalog_high_confidence(self):
        targets = {"w1": ["p1", "p2"], "w2": ["p1", "p3"], "w3": ["p9"]}
        clusters = cluster_collusive_workers(targets)
        scores = community_confidences(clusters, targets, n_products=100_000)
        assert len(scores) == 1
        assert scores[0].confidence > 0.999
        assert scores[0].size == 2

    def test_small_catalog_low_confidence(self):
        targets = {"w1": ["p1", "p2", "p3"], "w2": ["p1", "p4", "p5"]}
        clusters = cluster_collusive_workers(targets)
        high = community_confidences(clusters, targets, n_products=100_000)[0]
        low = community_confidences(clusters, targets, n_products=12)[0]
        assert low.confidence < high.confidence

    def test_confidence_multiplies_spanning_edges(self):
        # A 3-chain has exactly 2 spanning edges.
        targets = {"a": ["p1"], "b": ["p1", "p2"], "c": ["p2"]}
        clusters = cluster_collusive_workers(targets)
        score = community_confidences(clusters, targets, n_products=50)[0]
        assert score.size == 3
        assert len(score.edge_confidences) == 2
        expected = score.edge_confidences[0] * score.edge_confidences[1]
        assert score.confidence == pytest.approx(expected)

    def test_mismatched_targets_rejected(self):
        targets = {"w1": ["p1"], "w2": ["p1"]}
        clusters = cluster_collusive_workers(targets)
        with pytest.raises(DataError):
            community_confidences(
                clusters, {"w1": ["x"], "w2": ["y"]}, n_products=100
            )

    def test_synthetic_trace_communities_confident(self, small_trace, small_clusters):
        targets = small_trace.malicious_targets()
        scores = community_confidences(
            small_clusters, targets, n_products=small_trace.n_products
        )
        assert len(scores) == small_clusters.n_communities
        assert all(score.confidence > 0.9 for score in scores)
