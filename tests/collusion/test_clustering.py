"""Tests for collusive-community clustering (Section IV-A)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collusion import (
    build_auxiliary_graph,
    cluster_collusive_workers,
    cluster_streaming,
)
from repro.errors import DataError


class TestAuxiliaryGraph:
    def test_shared_target_creates_edge(self):
        graph = build_auxiliary_graph({"w1": ["p1"], "w2": ["p1"], "w3": ["p2"]})
        assert graph.has_edge("w1", "w2")
        assert not graph.has_edge("w1", "w3")

    def test_workers_without_targets_are_isolated(self):
        graph = build_auxiliary_graph({"w1": [], "w2": ["p1"]})
        assert graph.n_nodes == 2
        assert graph.degree("w1") == 0


class TestClustering:
    def test_simple_communities(self):
        clusters = cluster_collusive_workers(
            {
                "w1": ["p1", "p2"],
                "w2": ["p2"],
                "w3": ["p3"],
                "w4": ["p3"],
                "w5": ["p4"],
            }
        )
        assert clusters.n_communities == 2
        communities = {frozenset(c) for c in clusters.communities}
        assert frozenset({"w1", "w2"}) in communities
        assert frozenset({"w3", "w4"}) in communities
        assert clusters.noncollusive == frozenset({"w5"})

    def test_transitive_collusion(self):
        """w1-w2 share p1, w2-w3 share p2: all three form one community."""
        clusters = cluster_collusive_workers(
            {"w1": ["p1"], "w2": ["p1", "p2"], "w3": ["p2"]}
        )
        assert clusters.n_communities == 1
        assert clusters.communities[0] == frozenset({"w1", "w2", "w3"})

    def test_deterministic_ordering(self):
        targets = {
            "a1": ["x"], "a2": ["x"],
            "b1": ["y"], "b2": ["y"], "b3": ["y"],
        }
        clusters = cluster_collusive_workers(targets)
        # Larger community first.
        assert len(clusters.communities[0]) == 3

    def test_partners_of(self):
        clusters = cluster_collusive_workers(
            {"w1": ["p1"], "w2": ["p1"], "w3": ["p1"], "w4": ["q"]}
        )
        assert clusters.partners_of("w1") == 2
        assert clusters.partners_of("w4") == 0

    def test_community_of(self):
        clusters = cluster_collusive_workers({"w1": ["p1"], "w2": ["p1"]})
        assert clusters.community_of("w1") == frozenset({"w1", "w2"})
        with pytest.raises(DataError):
            clusters.community_of("unknown")

    def test_membership_map(self):
        clusters = cluster_collusive_workers(
            {"w1": ["p1"], "w2": ["p1"], "w3": ["p2"], "w4": ["p2"]}
        )
        membership = clusters.membership()
        assert membership["w1"] == membership["w2"]
        assert membership["w3"] == membership["w4"]
        assert membership["w1"] != membership["w3"]

    def test_size_histogram(self):
        clusters = cluster_collusive_workers(
            {"a": ["x"], "b": ["x"], "c": ["y"], "d": ["y"], "e": ["y"]}
        )
        assert clusters.size_histogram() == {2: 1, 3: 1}

    def test_counts(self):
        clusters = cluster_collusive_workers(
            {"a": ["x"], "b": ["x"], "c": ["z"]}
        )
        assert clusters.n_collusive_workers == 2
        assert clusters.n_communities == 1


class TestStreaming:
    def test_matches_batch_clustering(self):
        targets = {
            "w1": ["p1", "p2"],
            "w2": ["p2"],
            "w3": ["p3"],
            "w4": ["p3"],
            "w5": ["p9"],
        }
        pairs = [(w, p) for w, products in targets.items() for p in products]
        batch = cluster_collusive_workers(targets)
        streaming = cluster_streaming(pairs, set(targets))
        assert set(batch.communities) == set(streaming.communities)
        assert batch.noncollusive == streaming.noncollusive

    def test_skips_non_malicious(self):
        pairs = [("w1", "p1"), ("honest", "p1"), ("w2", "p1")]
        clusters = cluster_streaming(pairs, {"w1", "w2"})
        assert clusters.communities[0] == frozenset({"w1", "w2"})

    def test_reviewless_malicious_are_noncollusive(self):
        clusters = cluster_streaming([("w1", "p1")], {"w1", "ghost"})
        assert "ghost" in clusters.noncollusive


_target_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=20),
    values=st.lists(st.integers(min_value=0, max_value=15), max_size=4),
    max_size=20,
)


@given(targets=_target_maps)
@settings(max_examples=200, deadline=None)
def test_property_streaming_equals_batch(targets):
    """The one-pass union-find clustering equals the batch DFS one."""
    pairs = [(w, p) for w, products in targets.items() for p in products]
    batch = cluster_collusive_workers(targets)
    streaming = cluster_streaming(pairs, set(targets))
    assert set(batch.communities) == set(streaming.communities)
    assert batch.noncollusive == streaming.noncollusive


@given(targets=_target_maps)
@settings(max_examples=200, deadline=None)
def test_property_partition_is_complete(targets):
    """Every malicious worker lands in exactly one bucket."""
    clusters = cluster_collusive_workers(targets)
    in_communities = {w for c in clusters.communities for w in c}
    assert in_communities.isdisjoint(clusters.noncollusive)
    assert in_communities | set(clusters.noncollusive) == set(targets)
