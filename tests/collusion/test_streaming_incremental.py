"""Incremental streaming clusterer and membership-cache satellites.

``StreamingClusterer`` must agree exactly with the one-shot
``cluster_streaming`` over any batching of the same pair stream, and the
cached membership map behind ``community_of``/``partners_of`` must stay
a pure lookup equivalent of the original scans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collusion import (
    StreamingClusterer,
    cluster_collusive_workers,
    cluster_streaming,
)
from repro.errors import DataError


def _random_stream(seed, n_workers=40, n_products=15, n_pairs=120):
    rng = np.random.default_rng(seed)
    workers = [f"w{i}" for i in range(n_workers)]
    products = [f"p{i}" for i in range(n_products)]
    pairs = [
        (workers[rng.integers(n_workers)], products[rng.integers(n_products)])
        for _ in range(n_pairs)
    ]
    malicious = {w for w in workers if rng.random() < 0.6}
    return pairs, malicious


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_incremental_equals_batch_over_random_streams(seed):
    pairs, malicious = _random_stream(seed)
    batch = cluster_streaming(pairs, malicious)
    clusterer = StreamingClusterer(malicious)
    # Feed in uneven chunks to exercise cache invalidation mid-stream.
    rng = np.random.default_rng(seed + 1000)
    index = 0
    while index < len(pairs):
        chunk = int(rng.integers(1, 10))
        clusterer.add_pairs(pairs[index : index + chunk])
        clusterer.clusters()  # interleaved queries must not corrupt state
        index += chunk
    assert clusterer.clusters() == batch


def test_incremental_updates_extend_communities():
    clusterer = StreamingClusterer({"a", "b", "c", "d"})
    clusterer.add_pairs([("a", "p1"), ("b", "p1")])
    first = clusterer.clusters()
    assert first.communities == (frozenset({"a", "b"}),)
    assert first.noncollusive == frozenset({"c", "d"})
    # Cached until the next update: same object back.
    assert clusterer.clusters() is first
    clusterer.add_pair("c", "p1")
    second = clusterer.clusters()
    assert second.communities == (frozenset({"a", "b", "c"}),)
    assert second.noncollusive == frozenset({"d"})


def test_non_malicious_pairs_are_filtered_at_add_time():
    clusterer = StreamingClusterer({"a"})
    clusterer.add_pairs([("x", "p1"), ("a", "p1")])
    # "x" was not labelled malicious when its pair arrived, so it never
    # entered the graph — matching the one-shot scan's semantics.
    assert clusterer.clusters().noncollusive == frozenset({"a"})
    clusterer.add_malicious({"x"})
    clusterer.add_pair("x", "p1")
    clusters = clusterer.clusters()
    assert clusters.communities == (frozenset({"a", "x"}),)


def test_membership_lookups_match_linear_scans():
    clusters = cluster_collusive_workers(
        {
            "a": ["p1"],
            "b": ["p1", "p2"],
            "c": ["p2"],
            "d": ["p3"],
            "e": ["p3"],
            "f": ["p9"],
        }
    )
    membership = clusters.membership()
    for worker, index in membership.items():
        assert clusters.community_of(worker) == clusters.communities[index]
        assert clusters.partners_of(worker) == len(
            clusters.communities[index]
        ) - 1
    assert clusters.partners_of("f") == 0
    with pytest.raises(DataError):
        clusters.community_of("f")
    with pytest.raises(DataError):
        clusters.community_of("nobody")
    # The cache must not leak into the public copy.
    membership["a"] = 999
    assert clusters.membership()["a"] != 999
