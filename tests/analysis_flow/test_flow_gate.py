"""The flow gate on the shipped tree, and the drift regressions it stops.

Three properties the PR's acceptance criteria pin:

* ``repro lint --flow`` is clean on ``src/repro`` with no baseline;
* deleting the ``require_sweeps_agree`` contract call from the sweep
  router makes the gate exit non-zero (REPRO012);
* adding an unmanifested ``rng.*`` draw to ``fast_step`` makes the gate
  exit non-zero (REPRO011).

The mutation tests copy ``src/repro`` (and the ``tests`` tree, which
the coverage checks consult) into a tmp repo, edit the copy, and run
the real CLI against it.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.flow import ProjectIndex, run_flow

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"

_CONTRACT_CALL = "        require_sweeps_agree(pairs, reference)\n"
_DRAW_LINE = "        draws = rng.standard_normal(len(scales))\n"


def _copy_repo(tmp_path: Path) -> Path:
    """A minimal repo copy: src/repro plus the tests tree."""
    shutil.copytree(SRC, tmp_path / "src" / "repro")
    shutil.copytree(
        REPO_ROOT / "tests",
        tmp_path / "tests",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return tmp_path


def test_src_tree_flow_clean():
    """Engine-level: zero flow findings on the shipped tree."""
    assert run_flow([SRC]) == []


def test_cli_flow_clean_on_src(capsys):
    exit_code = main([str(SRC), "--flow", "--no-baseline", "--no-cache"])
    capsys.readouterr()
    assert exit_code == 0


def test_deleting_require_agree_call_trips_gate(tmp_path, capsys):
    root = _copy_repo(tmp_path)
    sweep = root / "src" / "repro" / "core" / "sweep.py"
    source = sweep.read_text()
    assert _CONTRACT_CALL in source, "anchor moved; update this test"
    sweep.write_text(source.replace(_CONTRACT_CALL, ""))

    exit_code = main(
        [str(root / "src" / "repro"), "--flow", "--no-baseline", "--no-cache"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "REPRO012" in out
    assert "vectorized_sweep" in out

    findings = run_flow([root / "src" / "repro"])
    assert any(
        d.code == "REPRO012" and d.context == "vectorized_sweep" for d in findings
    )


def test_unmanifested_draw_in_fast_step_trips_gate(tmp_path, capsys):
    root = _copy_repo(tmp_path)
    engine = root / "src" / "repro" / "simulation" / "engine.py"
    source = engine.read_text()
    assert _DRAW_LINE in source, "anchor moved; update this test"
    engine.write_text(
        source.replace(
            _DRAW_LINE,
            "        _probe = rng.standard_normal(1)\n" + _DRAW_LINE,
        )
    )

    exit_code = main(
        [str(root / "src" / "repro"), "--flow", "--no-baseline", "--no-cache"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "REPRO011" in out
    assert "fast_step" in out

    findings = run_flow([root / "src" / "repro"])
    draw_findings = [d for d in findings if d.code == "REPRO011"]
    assert draw_findings
    assert any("does not match manifest" in d.message for d in draw_findings)


def test_unmutated_copy_stays_green(tmp_path, capsys):
    """The copy machinery itself introduces no findings."""
    root = _copy_repo(tmp_path)
    exit_code = main(
        [str(root / "src" / "repro"), "--flow", "--no-baseline", "--no-cache"]
    )
    capsys.readouterr()
    assert exit_code == 0


def test_manifest_stale_entry_is_flagged(tmp_path):
    """Renaming a manifested kernel leaves a stale manifest entry."""
    root = _copy_repo(tmp_path)
    engine = root / "src" / "repro" / "simulation" / "engine.py"
    source = engine.read_text()
    engine.write_text(source.replace("def legacy_step(", "def legacy_round("))
    findings = run_flow([root / "src" / "repro"])
    assert any(
        d.code == "REPRO011" and "stale manifest entry" in d.message
        for d in findings
    )


@pytest.mark.parametrize("missing", ["analysis/draw_order.toml"])
def test_missing_manifest_flags_draw_kernels(tmp_path, missing):
    root = _copy_repo(tmp_path)
    (root / "src" / "repro" / missing).unlink()
    findings = run_flow([root / "src" / "repro"])
    assert any(
        d.code == "REPRO011" and "no draw-order manifest" in d.message
        for d in findings
    )


def test_project_index_shape():
    """The index discovers the registered kernels of the real tree."""
    index = ProjectIndex.build([SRC])
    fast = {fn.key for fn in index.fast_kernels()}
    assert "simulation/engine.py::fast_step" in fast
    assert "core/sweep.py::vectorized_sweep" in fast
    legacy = {fn.key for fn in index.legacy_kernels()}
    assert "simulation/engine.py::legacy_step" in legacy
    assert "core/sweep.py::legacy_sweep" in legacy
    batch = {fn.name for fn in index.batch_helpers()}
    assert {"respond_batch", "realize_feedback_batch", "rating_deviation_batch"} <= batch
    assert index.package_root == SRC.resolve()
