"""JSON and SARIF renderers: schema shape, fingerprints, determinism."""

from __future__ import annotations

import json

from repro.analysis.engine import Diagnostic
from repro.analysis.flow import FLOW_PASSES
from repro.analysis.formats import render_json, render_sarif, render_text
from repro.analysis.rules import ALL_RULES


def _diag(code="REPRO001", line=3, message="float equality", context="f"):
    return Diagnostic(
        path="src/repro/core/demo.py",
        relpath="core/demo.py",
        line=line,
        column=4,
        code=code,
        message=message,
        context=context,
    )


def test_render_json_schema():
    document = json.loads(render_json([_diag()], ["old::REPRO001::gone"], 2))
    assert document["tool"] == "theory-lint"
    assert document["suppressed"] == 2
    assert document["stale_baseline_entries"] == ["old::REPRO001::gone"]
    (finding,) = document["findings"]
    assert finding["path"] == "src/repro/core/demo.py"
    assert finding["line"] == 3
    assert finding["column"] == 5  # 1-based for humans
    assert finding["code"] == "REPRO001"
    assert finding["fingerprint"] == "core/demo.py::REPRO001::f"


def test_render_sarif_2_1_0_shape():
    rules = [*ALL_RULES, *FLOW_PASSES]
    document = json.loads(
        render_sarif([_diag(), _diag(code="REPRO011", context="fast_step")], rules)
    )
    assert document["version"] == "2.1.0"
    assert "sarif-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "theory-lint"
    # Only rules with results are listed, both per-file and flow.
    assert {r["id"] for r in driver["rules"]} == {"REPRO001", "REPRO011"}
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
    assert len(run["results"]) == 2
    for result in run["results"]:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/demo.py"
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] == 5
        fingerprint = result["partialFingerprints"]["theoryLintFingerprint/v1"]
        assert fingerprint.startswith("core/demo.py::")
        assert result["ruleId"] in {"REPRO001", "REPRO011"}
        assert "ruleIndex" in result


def test_render_sarif_empty_is_valid():
    document = json.loads(render_sarif([], list(ALL_RULES)))
    assert document["runs"][0]["results"] == []
    assert document["runs"][0]["tool"]["driver"]["rules"] == []


def test_render_text_matches_cli_contract():
    text = render_text([_diag()], ["old::REPRO001::gone"], 1, "BASE")
    lines = text.splitlines()
    assert lines[0] == "src/repro/core/demo.py:3:5: REPRO001 float equality"
    assert lines[1] == "(1 grandfathered finding(s) suppressed by BASE)"
    assert lines[2] == "stale baseline entry (no longer found): old::REPRO001::gone"
    assert lines[3] == "1 new finding(s)"
    assert render_text([], [], 0, "BASE") == ""


def test_renderers_are_deterministic():
    diags = [_diag(), _diag(code="REPRO011")]
    assert render_json(diags, [], 0) == render_json(list(diags), [], 0)
    rules = [*ALL_RULES, *FLOW_PASSES]
    assert render_sarif(diags, rules) == render_sarif(list(diags), rules)
