"""The per-file findings cache: hits, invalidation, and the escape hatch."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cache import CACHE_DIR_NAME, FindingsCache, ruleset_fingerprint
from repro.analysis.cli import main
from repro.analysis.engine import Diagnostic


def _seed_repo(tmp_path: Path) -> Path:
    """A tiny repo (pyproject marker + one REPRO001 violation)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'demo'\n")
    tree = tmp_path / "repro" / "core"
    tree.mkdir(parents=True)
    (tree / "demo.py").write_text(
        '"""Demo."""\n\n__all__ = ["f"]\n\n\ndef f(x: float) -> bool:\n'
        '    """Eq. (1)."""\n    return x == 1.0\n'
    )
    return tmp_path


def _run(root: Path, *extra: str) -> int:
    return main([str(root / "repro"), "--no-baseline", *extra])


def test_cache_file_created_and_reused(tmp_path, capsys):
    root = _seed_repo(tmp_path)
    assert _run(root) == 1
    cache_file = root / CACHE_DIR_NAME / "cache.json"
    assert cache_file.is_file()
    capsys.readouterr()

    # Prove the second run is served from the cache: falsify the cached
    # findings and watch the gate go (wrongly, but observably) green.
    document = json.loads(cache_file.read_text())
    for entry in document["entries"].values():
        entry["findings"] = []
    cache_file.write_text(json.dumps(document))
    assert _run(root) == 0
    capsys.readouterr()

    # --no-cache bypasses the poisoned cache and sees the violation.
    assert _run(root, "--no-cache") == 1
    capsys.readouterr()


def test_cache_invalidated_by_file_change(tmp_path, capsys):
    root = _seed_repo(tmp_path)
    assert _run(root) == 1
    capsys.readouterr()
    cache_file = root / CACHE_DIR_NAME / "cache.json"
    document = json.loads(cache_file.read_text())
    for entry in document["entries"].values():
        entry["findings"] = []
    cache_file.write_text(json.dumps(document))

    # Rewriting the module (different size) must invalidate its entry.
    demo = root / "repro" / "core" / "demo.py"
    demo.write_text(demo.read_text() + "\n\n# trailing comment\n")
    assert _run(root) == 1
    capsys.readouterr()


def test_cache_invalidated_by_ruleset_hash(tmp_path):
    directory = tmp_path / CACHE_DIR_NAME
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    diag = Diagnostic(
        path="mod.py",
        relpath="mod.py",
        line=1,
        column=0,
        code="REPRO001",
        message="m",
        context="<module>",
    )
    cache = FindingsCache(directory, "hash-a")
    cache.store(target, [diag])
    cache.save()

    same = FindingsCache(directory, "hash-a")
    found = same.lookup(target)
    assert found is not None and found[0] == diag

    other = FindingsCache(directory, "hash-b")
    assert other.lookup(target) is None


def test_cache_corrupt_document_ignored(tmp_path):
    directory = tmp_path / CACHE_DIR_NAME
    directory.mkdir()
    (directory / "cache.json").write_text("{not json")
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    cache = FindingsCache(directory, "h")
    assert cache.lookup(target) is None
    cache.store(target, [])
    cache.save()
    assert json.loads((directory / "cache.json").read_text())["ruleset"] == "h"


def test_ruleset_fingerprint_depends_on_selection():
    assert ruleset_fingerprint(["REPRO001"]) != ruleset_fingerprint(["REPRO002"])
    assert ruleset_fingerprint(["REPRO001", "repro002"]) == ruleset_fingerprint(
        ["REPRO002", "REPRO001"]
    )
