"""The lint CLI contract: exit codes, noqa parsing, paths, baseline I/O."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cli import main
from repro.analysis.engine import (
    Diagnostic,
    format_baseline,
    load_baseline,
    repo_relative,
)

CLEAN = (
    '"""Demo module."""\n\n__all__ = ["f"]\n\n\ndef f(x: float) -> float:\n'
    '    """Eq. (1)."""\n    return x + 1.0\n'
)
DIRTY = (
    '"""Demo module."""\n\n__all__ = ["f"]\n\n\ndef f(x: float) -> bool:\n'
    '    """Eq. (1)."""\n    return x == 1.0\n'
)
DIRTY_MULTI_NOQA = DIRTY.replace(
    "return x == 1.0", "return x == 1.0  # noqa: REPRO001,REPRO011"
)
DIRTY_OTHER_NOQA = DIRTY.replace(
    "return x == 1.0", "return x == 1.0  # noqa: REPRO011"
)


def _repo(tmp_path: Path, source: str) -> Path:
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'demo'\n")
    tree = tmp_path / "repro" / "simulation"
    tree.mkdir(parents=True)
    (tree / "demo.py").write_text(source)
    return tmp_path


# ---------------------------------------------------------------- exit codes


def test_exit_0_when_clean(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    assert main([str(root / "repro"), "--no-baseline", "--no-cache"]) == 0
    assert capsys.readouterr().out == ""


def test_exit_1_on_finding(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY)
    assert main([str(root / "repro"), "--no-baseline", "--no-cache"]) == 1
    assert "REPRO001" in capsys.readouterr().out


def test_exit_2_on_unknown_select(capsys):
    assert main(["src/repro", "--select", "REPRO999", "--no-cache"]) == 2
    assert "unknown rule code" in capsys.readouterr().out


def test_exit_2_on_unknown_explain(capsys):
    assert main(["--explain", "NOPE123"]) == 2
    assert "unknown rule code" in capsys.readouterr().out


def test_exit_2_on_missing_path(capsys):
    assert main(["definitely/not/here", "--no-cache"]) == 2
    assert "path does not exist" in capsys.readouterr().out


def test_exit_codes_with_flow_and_formats(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    for fmt in ("text", "json", "sarif"):
        assert (
            main(
                [
                    str(root / "repro"),
                    "--flow",
                    "--format",
                    fmt,
                    "--no-baseline",
                    "--no-cache",
                ]
            )
            == 0
        ), fmt
        capsys.readouterr()
    dirty = _repo(tmp_path / "dirty", DIRTY)
    for fmt in ("text", "json", "sarif"):
        assert (
            main(
                [
                    str(dirty / "repro"),
                    "--flow",
                    "--format",
                    fmt,
                    "--no-baseline",
                    "--no-cache",
                ]
            )
            == 1
        ), fmt
        capsys.readouterr()


def test_flow_codes_selectable_and_explainable(capsys):
    assert main(["--explain", "repro013"]) == 0
    out = capsys.readouterr().out
    assert "REPRO013" in out and "serving" in out
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REPRO001", "REPRO010", "REPRO011", "REPRO012", "REPRO013"):
        assert code in out


# ---------------------------------------------------------------- noqa


def test_multi_code_noqa_suppresses(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY_MULTI_NOQA)
    assert main([str(root / "repro"), "--no-baseline", "--no-cache"]) == 0
    capsys.readouterr()


def test_noqa_for_other_code_does_not_suppress(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY_OTHER_NOQA)
    assert main([str(root / "repro"), "--no-baseline", "--no-cache"]) == 1
    assert "REPRO001" in capsys.readouterr().out


# ---------------------------------------------------------------- paths


def _json_findings(capsys) -> list:
    return json.loads(capsys.readouterr().out)["findings"]


def test_findings_are_invocation_directory_independent(tmp_path, capsys, monkeypatch):
    root = _repo(tmp_path, DIRTY)
    target = str((root / "repro").resolve())
    args = [target, "--no-baseline", "--no-cache", "--format", "json"]

    monkeypatch.chdir(root)
    assert main(args) == 1
    from_root = _json_findings(capsys)

    monkeypatch.chdir(root / "repro")
    assert main(args) == 1
    from_inside = _json_findings(capsys)

    assert from_root == from_inside
    assert from_root[0]["path"] == "repro/simulation/demo.py"


def test_overlapping_paths_deduped(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY)
    tree = root / "repro"
    file = tree / "simulation" / "demo.py"
    args = ["--no-baseline", "--no-cache", "--format", "json"]

    assert main([str(tree), *args]) == 1
    single = _json_findings(capsys)
    assert main([str(tree), str(file), str(tree), *args]) == 1
    overlapped = _json_findings(capsys)
    assert overlapped == single


def test_output_flag_writes_report(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY)
    report = tmp_path / "report.sarif"
    assert (
        main(
            [
                str(root / "repro"),
                "--no-baseline",
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(report),
            ]
        )
        == 1
    )
    capsys.readouterr()
    document = json.loads(report.read_text())
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]


def test_repo_relative_normalizes_against_marker(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    target = nested / "mod.py"
    target.write_text("x = 1\n")
    assert repo_relative(target) == "a/b/mod.py"


# ---------------------------------------------------------------- baseline

_component = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-."
    ),
    min_size=1,
    max_size=12,
)


@given(
    st.lists(
        st.tuples(_component, st.sampled_from(["REPRO001", "REPRO011"]), _component),
        max_size=20,
    )
)
def test_baseline_round_trip(entries):
    """format_baseline → load_baseline is the identity on fingerprints,
    including multiplicity (the baseline is a multiset)."""
    diagnostics = [
        Diagnostic(
            path=f"src/repro/{rel}.py",
            relpath=f"{rel}.py",
            line=i + 1,
            column=0,
            code=code,
            message="m",
            context=context,
        )
        for i, (rel, code, context) in enumerate(entries)
    ]
    text = format_baseline(diagnostics)
    loaded = load_baseline_from_text(text)
    assert loaded == Counter(d.fingerprint for d in diagnostics)


def load_baseline_from_text(text: str) -> Counter:
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".baseline", delete=False) as handle:
        handle.write(text)
        name = handle.name
    try:
        return load_baseline(Path(name))
    finally:
        Path(name).unlink()


def test_write_baseline_then_gate_green(tmp_path, capsys):
    root = _repo(tmp_path, DIRTY)
    baseline = root / ".theory-lint-baseline"
    assert (
        main(
            [
                str(root / "repro"),
                "--write-baseline",
                "--baseline",
                str(baseline),
                "--no-cache",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert (
        main(
            [str(root / "repro"), "--baseline", str(baseline), "--no-cache"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "grandfathered" in out


def test_stale_baseline_entry_reported(tmp_path, capsys):
    root = _repo(tmp_path, CLEAN)
    baseline = root / ".theory-lint-baseline"
    baseline.write_text("gone.py::REPRO001::f\n")
    assert (
        main([str(root / "repro"), "--baseline", str(baseline), "--no-cache"]) == 0
    )
    assert "stale baseline entry" in capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["json", "sarif"])
def test_machine_formats_parse(tmp_path, capsys, fmt):
    root = _repo(tmp_path, DIRTY)
    assert (
        main(
            [
                str(root / "repro"),
                "--no-baseline",
                "--no-cache",
                "--format",
                fmt,
            ]
        )
        == 1
    )
    json.loads(capsys.readouterr().out)
