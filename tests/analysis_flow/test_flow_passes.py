"""Each flow pass catches its seeded fixture violation — exactly.

The corpus under ``tests/analysis_fixtures/`` plants one tree per pass
(see its README); these tests pin the exact findings (code, enclosing
context, message shape) and prove the CLI gate goes red on each tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.flow import (
    ConcurrencyPass,
    ContractCoveragePass,
    DrawOrderPass,
    ProjectIndex,
    PurityPass,
    run_flow,
)

FIXTURES = Path(__file__).resolve().parent.parent / "analysis_fixtures"


def _findings(fixture: str, flow_pass):
    index = ProjectIndex.build([FIXTURES / fixture / "repro"])
    return run_flow(index=index, passes=[flow_pass])


def test_repro010_purity_fixture_exact_findings():
    findings = _findings("repro010_purity", PurityPass())
    assert [d.code for d in findings] == ["REPRO010"] * 3
    assert {d.context for d in findings} == {"fast_step"}
    assert {d.relpath for d in findings} == {"simulation/engine.py"}
    messages = sorted(d.message for d in findings)
    assert "calls scalar `respond(...)` inside a loop" in messages[0]
    assert "constructs `Contract` per element of a population loop" in messages[1]
    assert "draws `rng.normal(...)` per element inside a loop" in messages[2]


def test_repro010_columnar_fixture_exact_findings():
    """Columnar-scoped checks: lazy-view subscripts and per-element
    object attribute loads are flagged inside `*columnar*` kernels."""
    findings = _findings("repro010_columnar", PurityPass())
    assert [d.code for d in findings] == ["REPRO010"] * 3
    assert {d.context for d in findings} == {"fast_columnar_step"}
    assert {d.relpath for d in findings} == {"simulation/engine.py"}
    messages = sorted(d.message for d in findings)
    assert "indexes the lazy `.agents` view per subject" in messages[0]
    assert "reads `.effort_function` per element inside a loop" in messages[1]
    assert "reads `.params` per element inside a loop" in messages[2]


def test_repro010_columnar_checks_skip_plain_fast_kernels():
    """The object-path fixture (`fast_step`) keeps exactly its three
    generic findings: columnar checks never fire outside columnar
    kernels, where `.agents[...]` access is the legitimate path."""
    findings = _findings("repro010_purity", PurityPass())
    assert len(findings) == 3
    assert not any("columnar" in d.message for d in findings)


def test_repro010_sharedmem_fixture_exact_findings():
    """Shared-memory-scoped checks: attaching a segment or calling its
    lifecycle methods per element inside a `parallel_*` kernel's shard
    loop is flagged (the engine attaches once per worker process)."""
    findings = _findings("repro010_sharedmem", PurityPass())
    assert [d.code for d in findings] == ["REPRO010"] * 3
    assert {d.context for d in findings} == {"parallel_shard_step"}
    assert {d.relpath for d in findings} == {"simulation/parallel.py"}
    messages = sorted(d.message for d in findings)
    assert "attaches a `SharedMemory` segment per element inside a loop" in messages[0]
    assert "calls segment `.close()` per element inside a loop" in messages[1]
    assert "calls segment `.unlink()` per element inside a loop" in messages[2]


def test_repro010_sharedmem_checks_skip_nonsegment_receivers():
    """`file.close()` inside a loop in a fast kernel stays clean: the
    detach check only fires on receivers that look like segments."""
    findings = _findings("repro010_purity", PurityPass())
    assert not any("SharedMemory" in d.message for d in findings)
    assert not any("segment" in d.message for d in findings)


def test_repro011_draworder_fixture_exact_findings():
    findings = _findings("repro011_draworder", DrawOrderPass())
    assert [d.code for d in findings] == ["REPRO011"] * 2
    by_context = {d.context: d.message for d in findings}
    assert set(by_context) == {"fast_step", "fast_shuffle"}
    assert (
        "draw order ['standard_normal', 'normal'] does not match manifest "
        "['standard_normal']" in by_context["fast_step"]
    )
    assert "no entry in analysis/draw_order.toml" in by_context["fast_shuffle"]


def test_repro012_contracts_fixture_exact_findings():
    findings = _findings("repro012_contracts", ContractCoveragePass())
    assert [d.code for d in findings] == ["REPRO012"] * 4
    by_context = {}
    for d in findings:
        by_context.setdefault(d.context, []).append(d.message)
    assert sorted(by_context) == [
        "fast_solve",
        "require_orphans_agree",
        "vectorized_sweep",
    ]
    sweep_messages = " | ".join(sorted(by_context["vectorized_sweep"]))
    assert "no `legacy_sweep` reference twin" in sweep_messages
    assert "not covered by a require_*_agree equivalence contract" in sweep_messages
    assert len(by_context["vectorized_sweep"]) == 2
    assert "not covered by a require_*_agree" in by_context["fast_solve"][0]
    assert "never called from source, tests, or benchmarks" in (
        by_context["require_orphans_agree"][0]
    )


def test_repro012_test_coverage_satisfied_by_support_module():
    """fast_solve has two-path test coverage via tests/support_paths.py,
    so no test-coverage finding is emitted for it (only the missing
    contract call)."""
    findings = _findings("repro012_contracts", ContractCoveragePass())
    fast_solve = [d.message for d in findings if d.context == "fast_solve"]
    assert len(fast_solve) == 1
    assert "references both" not in fast_solve[0]


def test_repro013_concurrency_fixture_exact_findings():
    findings = _findings("repro013_concurrency", ConcurrencyPass())
    assert [d.code for d in findings] == ["REPRO013"] * 3
    by_context = {d.context: d.message for d in findings}
    assert set(by_context) == {
        "LeakyCache.get",
        "LeakyCache.put",
        "LeakyCache.clear",
    }
    assert "mutates shared attribute `self.hits`" in by_context["LeakyCache.get"]
    assert "mutates shared attribute `self._entries`" in by_context["LeakyCache.put"]
    assert "mutates shared attribute `self._entries`" in by_context["LeakyCache.clear"]
    # The correctly guarded method is clean.
    assert "LeakyCache.guarded_put" not in by_context


@pytest.mark.parametrize(
    ("fixture", "code"),
    [
        ("repro010_purity", "REPRO010"),
        ("repro010_columnar", "REPRO010"),
        ("repro010_sharedmem", "REPRO010"),
        ("repro011_draworder", "REPRO011"),
        ("repro012_contracts", "REPRO012"),
        ("repro013_concurrency", "REPRO013"),
    ],
)
def test_cli_gate_goes_red_on_each_fixture(fixture, code, capsys):
    exit_code = main(
        [
            str(FIXTURES / fixture / "repro"),
            "--flow",
            "--select",
            code,
            "--no-baseline",
            "--no-cache",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert code in captured.out


def test_flow_findings_respect_noqa(tmp_path):
    """`# noqa: REPRO013` on the flagged line suppresses a flow finding."""
    tree = tmp_path / "repro" / "serving"
    tree.mkdir(parents=True)
    (tree / "cache.py").write_text(
        "import threading\n"
        "\n"
        "\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.hits = 0\n"
        "\n"
        "    def bump(self):\n"
        "        self.hits += 1  # noqa: REPRO013\n"
        "\n"
        "    def bump2(self):\n"
        "        self.hits += 1\n"
    )
    findings = run_flow(index=ProjectIndex.build([tmp_path / "repro"]), passes=[ConcurrencyPass()])
    assert [d.context for d in findings] == ["C.bump2"]
