"""Tests for markdown report generation."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig
from repro.experiments.report import render_markdown, write_report
from repro.experiments import table2_communities


class TestRender:
    def test_renders_sections_and_checks(self, small_context):
        result = table2_communities.run(small_context)
        markdown = render_markdown([result], title="demo")
        assert "# demo" in markdown
        assert "## table2" in markdown
        assert "- [x]" in markdown
        assert "shape checks passing" in markdown

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_markdown([], title="empty")


class TestWriteReport:
    def test_writes_selected_experiments(self, small_context, tmp_path):
        out = tmp_path / "report.md"
        written = write_report(
            out,
            config=small_context.config,
            experiment_ids=["table2", "fig6"],
        )
        content = written.read_text()
        assert "## table2" in content
        assert "## fig6" in content
        assert "## fig8c" not in content

    def test_unknown_experiment_rejected(self, small_context, tmp_path):
        with pytest.raises(ExperimentError):
            write_report(
                tmp_path / "report.md",
                config=small_context.config,
                experiment_ids=["fig99"],
            )

    def test_cli_report_command(self, small_context, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli_report.md"
        # Use the already-cached small context's seed for speed.
        code = main(
            [
                "report",
                "--out",
                str(out),
                "--scale",
                "small",
                "--seed",
                str(small_context.config.seed),
                "--no-extensions",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "## table3" in out.read_text()
