"""End-to-end tests for the extension experiments."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ext_adaptive,
    ext_budget,
    ext_camouflage,
    ext_labeling,
    ext_retention,
)
from repro.experiments.runner import EXTENSIONS, run_experiment


class TestExtensionDrivers:
    def test_ext_adaptive(self, small_context):
        result = ext_adaptive.run(small_context)
        assert result.experiment_id == "ext_adaptive"
        assert result.all_checks_pass, result.format()
        assert len(result.data["adaptive_series"]) == len(
            result.data["offline_series"]
        )

    def test_ext_camouflage(self, small_context):
        result = ext_camouflage.run(small_context)
        assert result.all_checks_pass, result.format()
        attack_round = result.data["attack_round"]
        online_pay = result.data["online_pay"]
        oneshot_pay = result.data["oneshot_pay"]
        # After the flip the online policy pays the attackers less than
        # the one-shot policy does.
        post_online = sum(online_pay[attack_round + 2 :])
        post_oneshot = sum(oneshot_pay[attack_round + 2 :])
        assert post_online < post_oneshot

    def test_ext_labeling(self, small_context):
        result = ext_labeling.run(small_context)
        assert result.all_checks_pass, result.format()
        assert result.data["dynamic_accuracy"] > result.data["fixed_accuracy"]

    def test_ext_budget(self, small_context):
        result = ext_budget.run(small_context)
        assert result.all_checks_pass, result.format()
        utilities = result.data["utilities"]
        assert utilities[-1] >= utilities[0]

    def test_ext_retention(self, small_context):
        result = ext_retention.run(small_context)
        assert result.all_checks_pass, result.format()
        rates = result.data["retention_rates"]
        assert rates["floored-dynamic"] > rates["paper-dynamic"]

    def test_registry(self):
        assert set(EXTENSIONS) == {
            "ext_adaptive",
            "ext_budget",
            "ext_camouflage",
            "ext_labeling",
            "ext_retention",
        }

    def test_runner_resolves_extensions(self, small_context):
        result = run_experiment("ext_labeling", small_context.config)
        assert result.experiment_id == "ext_labeling"
