"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("table2", "table3", "fig6", "fig8c"):
            assert experiment_id in output

    def test_run_single(self, capsys):
        code = main(["run", "fig6", "--scale", "small", "--seed", "11"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Fig. 6" in output
        assert "PASS" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
