"""Tests for the shared experiment context (caching, objectives)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentConfig,
    build_context,
    clear_context_cache,
)
from repro.types import WorkerType


class TestContextCache:
    def test_same_config_returns_cached_context(self):
        config = ExperimentConfig.small(seed=123)
        first = build_context(config)
        second = build_context(config)
        assert first is second
        clear_context_cache()

    def test_different_seed_builds_fresh_context(self):
        first = build_context(ExperimentConfig.small(seed=124))
        second = build_context(ExperimentConfig.small(seed=125))
        assert first is not second
        assert first.trace.reviews[0].upvotes != second.trace.reviews[
            0
        ].upvotes or first.trace.reviews[1].upvotes != second.trace.reviews[
            1
        ].upvotes
        clear_context_cache()

    def test_clear_cache_forces_rebuild(self):
        config = ExperimentConfig.small(seed=126)
        first = build_context(config)
        clear_context_cache()
        second = build_context(config)
        assert first is not second
        # Deterministic generation: same seed, same content.
        assert first.trace.stats() == second.trace.stats()
        clear_context_cache()


class TestContextHelpers:
    def test_objective_uses_config_mu_by_default(self, small_context):
        objective = small_context.objective()
        assert objective.mu == small_context.config.mu_default
        assert small_context.objective(mu=0.7).mu == 0.7

    def test_population_cache_keyed_by_sample(self, small_context):
        small_context.invalidate_populations()
        full = small_context.population(honest_sample=30)
        again = small_context.population(honest_sample=30)
        assert full is again
        other = small_context.population(honest_sample=20)
        assert other is not full
        assert len(other.subjects_of_type(WorkerType.HONEST)) == 20
        small_context.invalidate_populations()

    def test_population_sample_larger_than_pool_uses_all(self, small_context):
        small_context.invalidate_populations()
        n_honest = len(small_context.trace.worker_ids(WorkerType.HONEST))
        population = small_context.population(honest_sample=n_honest + 1000)
        assert len(population.subjects_of_type(WorkerType.HONEST)) == n_honest
        small_context.invalidate_populations()
