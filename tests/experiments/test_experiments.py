"""End-to-end tests for every experiment driver (small scale).

These are the reproduction's acceptance tests: each driver must run and
every shape check the paper's narrative claims must pass.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments import (
    fig6_bounds,
    fig7_worker_types,
    fig8a_compensation,
    fig8b_mu_sweep,
    fig8c_baseline,
    table2_communities,
    table3_fitting,
)


class TestConfig:
    def test_scale_validated(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale="huge")

    def test_small_factory(self):
        config = ExperimentConfig.small()
        assert config.scale == "small"
        assert config.trace_config().n_reviewers < 5_000

    def test_paper_trace_config(self):
        config = ExperimentConfig()
        assert config.trace_config().n_reviewers == 19_686


class TestDrivers:
    def test_table2(self, small_context):
        result = table2_communities.run(small_context)
        assert result.experiment_id == "table2"
        assert result.all_checks_pass, result.format()
        assert result.data["n_collusive_workers"] == sum(
            small_context.config.trace_config().community_sizes
        )

    def test_table3(self, small_context):
        result = table3_fitting.run(small_context)
        assert result.all_checks_pass, result.format()
        for class_label in ("Honest", "NC-Mal", "C-Mal"):
            nors = result.data[f"nor_{class_label}"]
            assert len(nors) == 6
            assert all(value > 0 for value in nors)

    def test_fig6(self, small_context):
        result = fig6_bounds.run(small_context)
        assert result.all_checks_pass, result.format()
        assert result.data["gaps"][-1] < result.data["gaps"][0]

    def test_fig7(self, small_context):
        result = fig7_worker_types.run(small_context)
        assert result.all_checks_pass, result.format()

    def test_fig8a(self, small_context):
        result = fig8a_compensation.run(small_context)
        assert result.all_checks_pass, result.format()
        counts = list(small_context.config.fig8a_interval_counts)
        assert result.data["mean_gaps"][counts[-1]] < (
            result.data["mean_gaps"][counts[0]]
        )

    def test_fig8b(self, small_context):
        result = fig8b_mu_sweep.run(small_context)
        assert result.all_checks_pass, result.format()

    def test_fig8c(self, small_context):
        result = fig8c_baseline.run(small_context)
        assert result.all_checks_pass, result.format()
        assert result.data["margin"] > 0.0

    def test_results_render(self, small_context):
        result = table2_communities.run(small_context)
        rendered = result.format()
        assert "shape checks" in rendered
        assert "PASS" in rendered


class TestRunner:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8a",
            "fig8b",
            "fig8c",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_run_experiment_with_config(self, small_context):
        result = run_experiment("fig6", small_context.config)
        assert result.experiment_id == "fig6"
