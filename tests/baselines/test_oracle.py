"""Tests for the oracle comparators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import continuum_optimal_utility, grid_search_contract
from repro.core import ContractDesigner, DesignerConfig
from repro.errors import DesignError
from repro.types import DiscretizationGrid, WorkerParameters


class TestContinuumOracle:
    def test_optimum_at_marginal_balance(self, psi, honest_params):
        """For an honest worker the relaxation optimum sits where
        w * psi'(y) == mu * beta."""
        mu, w = 1.0, 2.0
        utility, effort = continuum_optimal_utility(
            psi, honest_params, mu, w, max_effort=0.99 * psi.max_increasing_effort
        )
        expected = psi.derivative_inverse(mu * honest_params.beta / w)
        assert effort == pytest.approx(expected, abs=0.01)

    def test_omega_lowers_pay_floor_and_raises_utility(self, psi):
        mu, w = 1.0, 1.0
        cap = 0.9 * psi.max_increasing_effort
        honest_u, _ = continuum_optimal_utility(
            psi, WorkerParameters.honest(), mu, w, cap
        )
        malicious_u, _ = continuum_optimal_utility(
            psi, WorkerParameters.malicious(omega=0.5), mu, w, cap
        )
        assert malicious_u >= honest_u

    def test_dominates_designer(self, psi, honest_params):
        utility, _ = continuum_optimal_utility(
            psi, honest_params, 1.0, 1.0, 0.95 * psi.max_increasing_effort
        )
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=30))
        result = designer.design(psi, honest_params, feedback_weight=1.0)
        assert utility >= result.requester_utility - 1e-9

    def test_validation(self, psi, honest_params):
        with pytest.raises(DesignError):
            continuum_optimal_utility(psi, honest_params, 0.0, 1.0, 1.0)
        with pytest.raises(DesignError):
            continuum_optimal_utility(psi, honest_params, 1.0, 1.0, -1.0)
        with pytest.raises(DesignError):
            continuum_optimal_utility(psi, honest_params, 1.0, 1.0, 1.0, n_grid=1)


class TestGridSearch:
    def test_finds_positive_utility_contract(self, psi, honest_params):
        grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 3)
        result = grid_search_contract(
            psi, grid, honest_params, mu=1.0, feedback_weight=1.0, pay_levels=6
        )
        assert result.requester_utility > 0.0
        assert result.n_evaluated > 0
        assert result.contract is not None

    def test_exhaustive_count(self, psi, honest_params):
        """Monotone lattice contracts == multisets of pay levels."""
        from math import comb

        grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 2)
        levels = 5
        result = grid_search_contract(
            psi, grid, honest_params, mu=1.0, feedback_weight=1.0, pay_levels=levels
        )
        assert result.n_evaluated == comb(levels + grid.n_intervals, grid.n_intervals + 1)

    def test_never_beats_continuum(self, psi, honest_params):
        grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 3)
        lattice = grid_search_contract(
            psi, grid, honest_params, mu=1.0, feedback_weight=1.0, pay_levels=8
        )
        relaxation, _ = continuum_optimal_utility(
            psi, honest_params, 1.0, 1.0, psi.max_increasing_effort * 0.99
        )
        assert lattice.requester_utility <= relaxation + 1e-9

    def test_guards(self, psi, honest_params):
        grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 3)
        with pytest.raises(DesignError):
            grid_search_contract(
                psi, grid, honest_params, 1.0, 1.0, pay_levels=1
            )
        big = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 8)
        with pytest.raises(DesignError):
            grid_search_contract(psi, big, honest_params, 1.0, 1.0)
