"""Tests for the policy comparison harness."""

from __future__ import annotations

import pytest

from repro.baselines import compare_policies
from repro.core.utility import RequesterObjective
from repro.errors import SimulationError
from repro.simulation import DynamicContractPolicy, ExclusionPolicy
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


@pytest.fixture(scope="module")
def population(request):
    return build_population(
        trace=request.getfixturevalue("small_trace"),
        clusters=request.getfixturevalue("small_clusters"),
        proxy=request.getfixturevalue("small_proxy"),
        malice_estimates=request.getfixturevalue("small_malice"),
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        honest_subset=request.getfixturevalue("small_trace").worker_ids(
            WorkerType.HONEST
        )[:50],
    )


class TestComparePolicies:
    def test_aligned_series(self, population):
        comparison = compare_policies(
            population,
            RequesterObjective(RequesterParameters(mu=1.0)),
            {
                "dynamic": DynamicContractPolicy(mu=1.0),
                "exclusion": ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0)),
            },
            n_rounds=3,
            seed=1,
        )
        assert set(comparison.ledgers) == {"dynamic", "exclusion"}
        assert comparison.utility_series["dynamic"].shape == (3,)
        assert comparison.winner() in {"dynamic", "exclusion"}

    def test_margin_antisymmetric(self, population):
        comparison = compare_policies(
            population,
            RequesterObjective(RequesterParameters(mu=1.0)),
            {
                "dynamic": DynamicContractPolicy(mu=1.0),
                "exclusion": ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0)),
            },
            n_rounds=2,
            seed=1,
        )
        assert comparison.margin("dynamic", "exclusion") == pytest.approx(
            -comparison.margin("exclusion", "dynamic")
        )

    def test_unknown_policy_name(self, population):
        comparison = compare_policies(
            population,
            RequesterObjective(RequesterParameters(mu=1.0)),
            {"dynamic": DynamicContractPolicy(mu=1.0)},
            n_rounds=1,
        )
        with pytest.raises(SimulationError):
            comparison.total("nope")

    def test_empty_policies_rejected(self, population):
        with pytest.raises(SimulationError):
            compare_policies(
                population,
                RequesterObjective(RequesterParameters(mu=1.0)),
                {},
            )
