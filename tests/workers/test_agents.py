"""Tests for the behavioural worker agents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Contract, ContractDesigner, DesignerConfig, QuadraticEffort
from repro.errors import ModelError
from repro.types import DiscretizationGrid, WorkerParameters, WorkerType
from repro.workers import CollusiveCommunity, HonestWorker, MaliciousWorker


class TestHonestWorker:
    def test_properties(self, psi):
        worker = HonestWorker("w1", psi, beta=1.5)
        assert worker.n_members == 1
        assert worker.worker_type is WorkerType.HONEST
        assert worker.params.omega == 0.0
        assert worker.params.beta == 1.5

    def test_respond_uses_true_psi(self, psi):
        """The agent best-responds with its own psi even when the
        contract embeds a different (fitted) one."""
        fitted = QuadraticEffort(r2=-0.45, r1=9.0, r0=1.0)
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=10))
        contract = designer.design(fitted, WorkerParameters.honest()).contract
        true_worker = HonestWorker("w1", psi)
        fitted_worker = HonestWorker("w2", fitted)
        assert true_worker.respond(contract).effort != pytest.approx(
            fitted_worker.respond(contract).effort
        )

    def test_realize_feedback_noise_free(self, psi):
        worker = HonestWorker("w1", psi)
        assert worker.realize_feedback(2.0) == pytest.approx(float(psi(2.0)))

    def test_realize_feedback_noisy_nonnegative(self, psi, rng):
        worker = HonestWorker("w1", psi, feedback_noise=50.0)
        values = [worker.realize_feedback(0.1, rng=rng) for _ in range(100)]
        assert min(values) >= 0.0

    def test_realize_feedback_rejects_negative_effort(self, psi):
        with pytest.raises(ModelError):
            HonestWorker("w1", psi).realize_feedback(-1.0)

    def test_empty_id_rejected(self, psi):
        with pytest.raises(ModelError):
            HonestWorker("", psi)

    def test_negative_noise_rejected(self, psi):
        with pytest.raises(ModelError):
            HonestWorker("w1", psi, feedback_noise=-0.1)


class TestMaliciousWorker:
    def test_requires_positive_omega(self, psi):
        with pytest.raises(ModelError):
            MaliciousWorker("m1", psi, omega=0.0)

    def test_properties(self, psi):
        worker = MaliciousWorker("m1", psi, omega=0.4, rating_bias=2.5)
        assert worker.worker_type is WorkerType.NONCOLLUSIVE_MALICIOUS
        assert worker.rating_bias == 2.5
        assert worker.n_members == 1

    def test_works_even_unpaid(self, psi, grid):
        """Influence motive: positive effort under a zero contract."""
        worker = MaliciousWorker("m1", psi, omega=0.5)
        contract = Contract.flat(grid, psi, pay=0.0)
        assert worker.respond(contract).effort > 0.0


class TestCollusiveCommunity:
    def test_requires_two_members(self, psi):
        with pytest.raises(ModelError):
            CollusiveCommunity("c1", ["only"], psi.community_scaled(1))

    def test_duplicate_members_deduplicated(self, psi):
        with pytest.raises(ModelError):
            CollusiveCommunity("c1", ["a", "a"], psi.community_scaled(2))

    def test_requires_positive_omega(self, psi):
        with pytest.raises(ModelError):
            CollusiveCommunity(
                "c1", ["a", "b"], psi.community_scaled(2), omega=0.0
            )

    def test_partner_count(self, psi):
        community = CollusiveCommunity(
            "c1", ["a", "b", "c"], psi.community_scaled(3)
        )
        assert community.n_members == 3
        assert community.n_partners == 2
        assert community.worker_type is WorkerType.COLLUSIVE_MALICIOUS

    def test_split_effort_even(self, psi):
        community = CollusiveCommunity(
            "c1", ["a", "b", "c"], psi.community_scaled(3)
        )
        split = community.split_effort(6.0)
        assert split == {"a": 2.0, "b": 2.0, "c": 2.0}
        with pytest.raises(ModelError):
            community.split_effort(-1.0)

    def test_respond_uses_meta_function(self, psi):
        meta = psi.community_scaled(3)
        community = CollusiveCommunity("c1", ["a", "b", "c"], meta, omega=0.3)
        solo = MaliciousWorker("m", psi, omega=0.3)
        grid = DiscretizationGrid.for_max_effort(
            0.9 * meta.max_increasing_effort, 8
        )
        contract = Contract.flat(grid, meta, pay=0.0)
        response = community.respond(contract)
        # Meta stationary effort is n times the per-member stationary.
        per_member = solo.respond(
            Contract.flat(
                DiscretizationGrid.for_max_effort(
                    0.9 * psi.max_increasing_effort, 8
                ),
                psi,
                pay=0.0,
            )
        )
        assert response.effort == pytest.approx(3 * per_member.effort)
