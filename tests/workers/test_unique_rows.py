"""`unique_rows` regression: the void-dtype view equals `np.unique(axis=0)`.

Archetype detection moved from ``np.unique(axis=0)`` (which sorts whole
float rows lexicographically, an O(n log n) pass over 7-column keys) to
a void-dtype row view uniqued as flat bytes.  Byte order is NOT value
order for doubles (negative values sort after positive ones, and -0.0
differs from +0.0 bitwise), so the helper canonicalizes signed zeros
and re-ranks by ``np.lexsort`` — these tests pin exact equality of
representatives, codes, and archetype order against the numpy baseline
so the swap can never silently renumber archetypes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workers.columnar import unique_rows


def _reference(matrix: np.ndarray):
    _, first_rows, inverse = np.unique(
        matrix, axis=0, return_index=True, return_inverse=True
    )
    return first_rows, inverse.reshape(-1)


def _assert_matches(matrix: np.ndarray) -> None:
    representatives, codes = unique_rows(matrix)
    expected_rows, expected_codes = _reference(matrix)
    assert np.array_equal(representatives, expected_rows)
    assert np.array_equal(codes, expected_codes)
    # Codes point back at value-identical rows.
    assert np.array_equal(matrix[representatives][codes], matrix)


def test_matches_numpy_on_duplicates():
    matrix = np.array(
        [
            [1.0, 2.0, 3.0],
            [1.0, 2.0, 3.0],
            [0.5, -2.0, 3.0],
            [1.0, 2.0, 3.0],
            [0.5, -2.0, 3.0],
        ]
    )
    _assert_matches(matrix)


def test_negative_values_keep_value_order():
    """Byte order sorts negative doubles after positive; the rank remap
    must restore numpy's value-lexicographic archetype numbering."""
    matrix = np.array([[-1.0, 0.0], [1.0, 0.0], [-2.0, 5.0], [1.0, 0.0]])
    _assert_matches(matrix)
    representatives, _ = unique_rows(matrix)
    ordered = matrix[representatives]
    assert np.array_equal(ordered[np.lexsort(ordered.T[::-1])], ordered)


def test_signed_zero_rows_collapse():
    """-0.0 and +0.0 differ bitwise but compare equal; one archetype."""
    matrix = np.array([[0.0, 1.0], [-0.0, 1.0]])
    representatives, codes = unique_rows(matrix)
    assert len(representatives) == 1
    assert np.array_equal(codes, [0, 0])
    _assert_matches(np.abs(matrix) * np.sign(matrix + 0.0))


def test_single_row_and_single_column():
    _assert_matches(np.array([[3.25]]))
    _assert_matches(np.array([[1.0], [2.0], [1.0]]))


@pytest.mark.parametrize("seed", range(10))
def test_matches_numpy_randomized(seed):
    rng = np.random.default_rng(seed)
    n_rows = int(rng.integers(1, 60))
    n_cols = int(rng.integers(1, 8))
    pool = rng.normal(size=(max(1, n_rows // 3), n_cols)).round(2)
    matrix = pool[rng.integers(0, pool.shape[0], size=n_rows)]
    # Sprinkle negatives and signed zeros.
    matrix = matrix * rng.choice([-1.0, 1.0, 1.0], size=matrix.shape)
    zero_mask = rng.random(matrix.shape) < 0.1
    matrix[zero_mask] = -0.0
    _assert_matches(matrix)


def test_noncontiguous_input_accepted():
    base = np.arange(24, dtype=float).reshape(4, 6)
    view = base[:, ::2]
    assert not view.flags["C_CONTIGUOUS"]
    _assert_matches(view)
