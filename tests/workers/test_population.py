"""Tests for population assembly (trace -> subproblems/agents/weights)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.utility import RequesterObjective
from repro.errors import ModelError
from repro.types import RequesterParameters, WorkerType
from repro.workers import (
    BehaviorConfig,
    build_population,
    fit_class_functions,
)


@pytest.fixture(scope="module")
def population(request):
    small_trace = request.getfixturevalue("small_trace")
    small_clusters = request.getfixturevalue("small_clusters")
    small_proxy = request.getfixturevalue("small_proxy")
    small_malice = request.getfixturevalue("small_malice")
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
    )


class TestBehaviorConfig:
    def test_defaults_valid(self):
        config = BehaviorConfig()
        assert config.beta == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ModelError):
            BehaviorConfig(beta=0.0)
        with pytest.raises(ModelError):
            BehaviorConfig(omega_noncollusive=0.0)
        with pytest.raises(ModelError):
            BehaviorConfig(feedback_noise=-1.0)


class TestClassFunctions:
    def test_fits_are_valid_effort_functions(
        self, small_trace, small_proxy, small_clusters
    ):
        functions = fit_class_functions(small_trace, small_proxy, small_clusters)
        for psi in (functions.honest, functions.noncollusive, functions.collusive_member):
            assert psi.r2 < 0.0
            assert psi.r1 > 0.0
            assert psi.r0 >= 0.0

    def test_community_function_scales(
        self, small_trace, small_proxy, small_clusters
    ):
        functions = fit_class_functions(small_trace, small_proxy, small_clusters)
        meta = functions.community_function(4)
        member = functions.collusive_member
        assert meta(4.0) == pytest.approx(4 * member(1.0))


class TestBuildPopulation:
    def test_one_subproblem_per_subject(
        self, population, small_trace, small_clusters
    ):
        n_honest = len(small_trace.worker_ids(WorkerType.HONEST))
        n_ncm = len(small_clusters.noncollusive)
        n_communities = small_clusters.n_communities
        assert len(population.subproblems) == n_honest + n_ncm + n_communities
        assert len(population.agents) == len(population.subproblems)

    def test_subjects_by_type(self, population, small_clusters):
        communities = population.subjects_of_type(WorkerType.COLLUSIVE_MALICIOUS)
        assert len(communities) == small_clusters.n_communities

    def test_community_members_recorded(self, population, small_clusters):
        for subject_id in population.subjects_of_type(
            WorkerType.COLLUSIVE_MALICIOUS
        ):
            subproblem = population.subproblem_of(subject_id)
            assert subproblem.size >= 2
            assert frozenset(subproblem.member_ids) in set(
                small_clusters.communities
            )

    def test_honest_weights_exceed_malicious(self, population):
        honest = [
            population.weights[s]
            for s in population.subjects_of_type(WorkerType.HONEST)
        ]
        malicious = [
            population.weights[s]
            for s in population.subjects_of_type(WorkerType.NONCOLLUSIVE_MALICIOUS)
        ]
        assert np.mean(honest) > np.mean(malicious)

    def test_effort_caps_positive(self, population):
        for subproblem in population.subproblems:
            assert subproblem.max_effort is not None
            assert subproblem.max_effort > 0.0

    def test_honest_subset_restriction(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        subset = small_trace.worker_ids(WorkerType.HONEST)[:10]
        population = build_population(
            trace=small_trace,
            clusters=small_clusters,
            proxy=small_proxy,
            malice_estimates=small_malice,
            objective=RequesterObjective(RequesterParameters(mu=1.0)),
            honest_subset=subset,
        )
        assert len(population.subjects_of_type(WorkerType.HONEST)) == 10

    def test_honest_subset_rejects_malicious_ids(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        bad_subset = [small_trace.malicious_ids()[0]]
        with pytest.raises(ModelError):
            build_population(
                trace=small_trace,
                clusters=small_clusters,
                proxy=small_proxy,
                malice_estimates=small_malice,
                objective=RequesterObjective(RequesterParameters(mu=1.0)),
                honest_subset=bad_subset,
            )

    def test_unknown_subject_lookup_raises(self, population):
        with pytest.raises(ModelError):
            population.subproblem_of("nobody")

    def test_agents_match_subproblem_types(self, population):
        for subproblem in population.subproblems:
            agent = population.agents[subproblem.subject_id]
            assert agent.params.worker_type is subproblem.params.worker_type
            assert agent.n_members == subproblem.size
