"""Tests for camouflaged and intermittent malicious workers."""

from __future__ import annotations

import pytest

from repro.core import Contract
from repro.errors import ModelError
from repro.types import DiscretizationGrid, WorkerType
from repro.workers import CamouflagedWorker, IntermittentWorker


class TestCamouflagedWorker:
    def test_starts_honest(self, psi):
        worker = CamouflagedWorker("spy", psi, attack_round=3)
        assert not worker.is_attacking
        assert worker.params.omega == 0.0
        assert worker.rating_bias_now == 0.0

    def test_flips_at_attack_round(self, psi):
        worker = CamouflagedWorker("spy", psi, attack_round=3, omega=0.4, rating_bias=2.0)
        worker.on_round(2)
        assert not worker.is_attacking
        worker.on_round(3)
        assert worker.is_attacking
        assert worker.params.omega == pytest.approx(0.4)
        assert worker.rating_bias_now == pytest.approx(2.0)

    def test_attack_round_zero_starts_malicious(self, psi):
        worker = CamouflagedWorker("spy", psi, attack_round=0)
        assert worker.is_attacking

    def test_behaviour_changes_best_response(self, psi):
        worker = CamouflagedWorker("spy", psi, attack_round=1, omega=0.8)
        grid = DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 8)
        contract = Contract.flat(grid, psi, pay=0.0)
        worker.on_round(0)
        camouflaged_effort = worker.respond(contract).effort
        worker.on_round(1)
        attacking_effort = worker.respond(contract).effort
        # Unpaid: honest phase exerts nothing; attack phase works for
        # influence.
        assert camouflaged_effort == pytest.approx(0.0)
        assert attacking_effort > 0.0

    def test_ground_truth_type_is_malicious(self, psi):
        assert (
            CamouflagedWorker("spy", psi).worker_type
            is WorkerType.NONCOLLUSIVE_MALICIOUS
        )

    def test_validation(self, psi):
        with pytest.raises(ModelError):
            CamouflagedWorker("spy", psi, omega=0.0)
        with pytest.raises(ModelError):
            CamouflagedWorker("spy", psi, attack_round=-1)


class TestIntermittentWorker:
    def test_cycle_phases(self, psi):
        worker = IntermittentWorker(
            "blinker", psi, honest_rounds=3, attack_rounds=2
        )
        expected = [False, False, False, True, True] * 2
        observed = []
        for round_index in range(10):
            worker.on_round(round_index)
            observed.append(worker.is_attacking)
        assert observed == expected

    def test_bias_follows_phase(self, psi):
        worker = IntermittentWorker(
            "blinker", psi, honest_rounds=1, attack_rounds=1, rating_bias=1.5
        )
        worker.on_round(0)
        assert worker.rating_bias_now == 0.0
        worker.on_round(1)
        assert worker.rating_bias_now == pytest.approx(1.5)

    def test_cycle_length(self, psi):
        worker = IntermittentWorker("blinker", psi, honest_rounds=4, attack_rounds=3)
        assert worker.cycle_length == 7

    def test_validation(self, psi):
        with pytest.raises(ModelError):
            IntermittentWorker("blinker", psi, omega=0.0)
        with pytest.raises(ModelError):
            IntermittentWorker("blinker", psi, honest_rounds=0)
        with pytest.raises(ModelError):
            IntermittentWorker("blinker", psi, attack_rounds=0)


class TestRatingDeviation:
    def test_honest_deviation_centered_on_noise(self, psi, rng):
        from repro.workers import HonestWorker

        worker = HonestWorker("h", psi)
        samples = [worker.rating_deviation(rng) for _ in range(500)]
        assert 0.1 < sum(samples) / len(samples) < 0.5

    def test_malicious_deviation_centered_on_bias(self, psi, rng):
        from repro.workers import MaliciousWorker

        worker = MaliciousWorker("m", psi, omega=0.3, rating_bias=2.0)
        samples = [worker.rating_deviation(rng) for _ in range(500)]
        assert 1.5 < sum(samples) / len(samples) < 2.5

    def test_noise_free_deviation_is_bias(self, psi):
        from repro.workers import MaliciousWorker

        worker = MaliciousWorker("m", psi, omega=0.3, rating_bias=1.2)
        worker.rating_noise = 0.0
        assert worker.rating_deviation() == pytest.approx(1.2)
