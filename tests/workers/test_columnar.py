"""ColumnarPopulation: round-trips, lazy views, archetype grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import Subproblem
from repro.core.effort import QuadraticEffort
from repro.errors import ModelError
from repro.types import WorkerParameters, WorkerType
from repro.workers import (
    CamouflagedWorker,
    CollusiveCommunity,
    HonestWorker,
    synthetic_population,
)
from repro.workers.columnar import (
    WORKER_TYPE_CODES,
    ColumnarPopulation,
    synthetic_columnar,
)
from repro.workers.population import ClassEffortFunctions, PopulationModel


def _population(n=10, seed=3, **kwargs):
    kwargs.setdefault("n_archetypes", 4)
    kwargs.setdefault("feedback_noise", 0.3)
    return synthetic_population(n_subjects=n, seed=seed, **kwargs)


def test_from_population_columns_match_objects():
    population = _population()
    columnar = ColumnarPopulation.from_population(population)
    assert columnar.n_subjects == len(population.subproblems)
    for row, subproblem in enumerate(population.subproblems):
        agent = population.agents[subproblem.subject_id]
        assert columnar.subject_id(row) == subproblem.subject_id
        assert columnar.r2[row] == subproblem.effort_function.r2
        assert columnar.r1[row] == subproblem.effort_function.r1
        assert columnar.act_r2[row] == agent.effort_function.r2
        assert columnar.beta[row] == subproblem.params.beta
        assert columnar.omega[row] == subproblem.params.omega
        assert columnar.design_weight[row] == subproblem.feedback_weight
        assert (
            columnar.eval_weight[row]
            == population.weights[subproblem.subject_id]
        )
        assert columnar.feedback_noise[row] == agent.feedback_noise
        assert columnar.rating_noise[row] == agent.rating_noise
        assert (
            WORKER_TYPE_CODES[subproblem.params.worker_type]
            == columnar.type_codes[row]
        )


def test_round_trip_preserves_population():
    population = _population()
    columnar = ColumnarPopulation.from_population(population)
    rebuilt = columnar.to_population()
    assert [s.subject_id for s in rebuilt.subproblems] == [
        s.subject_id for s in population.subproblems
    ]
    for original, copy in zip(population.subproblems, rebuilt.subproblems):
        assert original.effort_function == copy.effort_function
        assert original.params == copy.params
        assert original.feedback_weight == copy.feedback_weight
        assert original.max_effort == copy.max_effort
        assert original.member_ids == copy.member_ids
    assert rebuilt.weights == population.weights
    assert rebuilt.malice == population.malice
    for subject_id, agent in population.agents.items():
        twin = rebuilt.agents[subject_id]
        assert type(twin) is type(agent)
        assert twin.params == agent.params
        assert twin.effort_function == agent.effort_function


def test_lazy_agents_share_archetype_objects():
    columnar = ColumnarPopulation.from_population(_population())
    agents = columnar.agents
    subproblems = columnar.subproblems
    # Archetype-mates share one psi/params object pair (SoA dedup).
    by_code = {}
    for row, code in enumerate(columnar.archetype_codes.tolist()):
        subproblem = subproblems[row]
        if code in by_code:
            reference = by_code[code]
            assert subproblem.effort_function is reference.effort_function
            assert subproblem.params is reference.params
        else:
            by_code[code] = subproblem
    # The lazy mapping builds each agent once and caches it.
    subject_id = columnar.subject_id(0)
    assert agents[subject_id] is agents[subject_id]
    assert len(agents) == columnar.n_subjects
    assert set(iter(agents)) == set(columnar.subject_ids())


def test_synthetic_columnar_matches_object_builder():
    population = synthetic_population(
        n_subjects=40, n_archetypes=8, seed=11, feedback_noise=0.0
    )
    columnar = synthetic_columnar(n_subjects=40, n_archetypes=8, seed=11)
    assert columnar.n_subjects == 40
    for row, subproblem in enumerate(population.subproblems):
        assert columnar.r2[row] == subproblem.effort_function.r2
        assert columnar.r1[row] == subproblem.effort_function.r1
        assert columnar.r0[row] == subproblem.effort_function.r0
        assert columnar.beta[row] == subproblem.params.beta
        assert columnar.omega[row] == subproblem.params.omega
        assert columnar.design_weight[row] == subproblem.feedback_weight
        assert (
            WORKER_TYPE_CODES[subproblem.params.worker_type]
            == columnar.type_codes[row]
        )


def test_strategic_agents_are_rejected():
    population = _population()
    subject_id = population.subproblems[0].subject_id
    agent = population.agents[subject_id]
    population.agents[subject_id] = CamouflagedWorker(
        worker_id=subject_id,
        effort_function=agent.effort_function,
        beta=agent.params.beta,
        omega=0.5,
        rating_bias=2.0,
        attack_round=3,
    )
    with pytest.raises(ModelError, match="strategic"):
        ColumnarPopulation.from_population(population)


def test_collusive_round_trip():
    psi = QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)
    params = WorkerParameters.malicious(beta=1.0, omega=0.4, collusive=True)
    members = ("m1", "m2", "m3")
    community = CollusiveCommunity(
        community_id="c0",
        member_ids=members,
        effort_function=psi,
        beta=1.0,
        omega=0.4,
        rating_bias=2.0,
    )
    honest = HonestWorker(worker_id="h0", effort_function=psi, beta=1.2)
    subproblems = [
        Subproblem(
            subject_id="c0",
            effort_function=psi,
            params=params,
            feedback_weight=1.5,
            member_ids=members,
        ),
        Subproblem(
            subject_id="h0",
            effort_function=psi,
            params=WorkerParameters.honest(beta=1.2),
            feedback_weight=1.0,
        ),
    ]
    population = PopulationModel(
        subproblems=subproblems,
        agents={"c0": community, "h0": honest},
        weights={"c0": 1.5, "h0": 1.0},
        class_functions=ClassEffortFunctions(
            honest=psi, noncollusive=psi, collusive_member=psi
        ),
        malice={"c0": 1.0, "h0": 0.0},
    )
    columnar = ColumnarPopulation.from_population(population)
    assert int(columnar.n_members[0]) == 3
    assert int(columnar.n_members[1]) == 1
    rebuilt = columnar.to_population()
    twin = rebuilt.agents["c0"]
    assert isinstance(twin, CollusiveCommunity)
    assert twin.member_ids == members
    assert rebuilt.subproblems[0].member_ids == members
    assert (
        rebuilt.subproblems[0].params.worker_type
        is WorkerType.COLLUSIVE_MALICIOUS
    )


def test_max_effort_nan_round_trip():
    population = _population()
    assert any(s.max_effort is not None for s in population.subproblems)
    columnar = ColumnarPopulation.from_population(population)
    rebuilt = columnar.to_population()
    for original, copy in zip(population.subproblems, rebuilt.subproblems):
        assert original.max_effort == copy.max_effort


def test_archetype_grouping_is_exact():
    columnar = synthetic_columnar(n_subjects=50, n_archetypes=6, seed=2)
    codes = columnar.archetype_codes
    matrix = columnar.design_matrix()
    for code in np.unique(codes):
        rows = np.flatnonzero(codes == code)
        assert np.all(matrix[rows] == matrix[rows[0]])
    # Distinct codes differ in at least one design column.
    representatives = columnar.archetype_representatives
    for a in range(len(representatives)):
        for b in range(a + 1, len(representatives)):
            assert not np.array_equal(
                matrix[representatives[a]], matrix[representatives[b]]
            )


def test_update_design_columns_invalidates_archetypes():
    columnar = synthetic_columnar(n_subjects=20, n_archetypes=4, seed=9)
    before = columnar.archetype_codes.copy()
    weights = columnar.design_weight.copy()
    weights[3] = weights[3] + 10.0
    columnar.update_design_columns(design_weight=weights)
    after = columnar.archetype_codes
    assert columnar.design_weight[3] == weights[3]
    # Row 3 now sits in its own archetype; everyone else may re-code but
    # must keep their grouping structure.
    assert np.count_nonzero(after == after[3]) == 1
    assert before.shape == after.shape


def test_index_of_unknown_subject():
    columnar = synthetic_columnar(n_subjects=5, n_archetypes=2, seed=0)
    assert columnar.index_of(columnar.subject_id(3)) == 3
    with pytest.raises(ModelError):
        columnar.index_of("nope")
