"""Tests for the per-worker fitting option of build_population."""

from __future__ import annotations

import pytest

from repro.core.utility import RequesterObjective
from repro.errors import ModelError
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


def _build(small_trace, small_clusters, small_proxy, small_malice, **kwargs):
    return build_population(
        trace=small_trace,
        clusters=small_clusters,
        proxy=small_proxy,
        malice_estimates=small_malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        **kwargs,
    )


class TestPerWorkerFits:
    def test_prolific_workers_get_individual_functions(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        population = _build(
            small_trace,
            small_clusters,
            small_proxy,
            small_malice,
            per_worker_fits=True,
            min_reviews_for_fit=15,
        )
        class_fit = population.class_functions.honest.coefficients()
        prolific = small_trace.workers_with_min_reviews(15, WorkerType.HONEST)
        individual = 0
        for worker_id in prolific:
            subproblem = population.subproblem_of(worker_id)
            if subproblem.effort_function.coefficients() != class_fit:
                individual += 1
        # Most prolific workers should get their own fit (a few may fall
        # back on degenerate scatters).
        assert individual >= 0.7 * len(prolific)

    def test_thin_histories_fall_back_to_class_fit(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        population = _build(
            small_trace,
            small_clusters,
            small_proxy,
            small_malice,
            per_worker_fits=True,
            min_reviews_for_fit=15,
        )
        class_fit = population.class_functions.honest.coefficients()
        for worker_id in population.subjects_of_type(WorkerType.HONEST):
            if len(small_trace.reviews_of(worker_id)) < 15:
                subproblem = population.subproblem_of(worker_id)
                assert subproblem.effort_function.coefficients() == class_fit

    def test_agents_respond_with_their_individual_fit(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        population = _build(
            small_trace,
            small_clusters,
            small_proxy,
            small_malice,
            per_worker_fits=True,
        )
        for worker_id in population.subjects_of_type(WorkerType.HONEST):
            subproblem = population.subproblem_of(worker_id)
            agent = population.agents[worker_id]
            assert (
                agent.effort_function.coefficients()
                == subproblem.effort_function.coefficients()
            )

    def test_default_off_uses_class_fit_everywhere(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        population = _build(
            small_trace, small_clusters, small_proxy, small_malice
        )
        class_fit = population.class_functions.honest.coefficients()
        for worker_id in population.subjects_of_type(WorkerType.HONEST):
            assert (
                population.subproblem_of(worker_id).effort_function.coefficients()
                == class_fit
            )

    def test_min_reviews_validated(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        with pytest.raises(ModelError):
            _build(
                small_trace,
                small_clusters,
                small_proxy,
                small_malice,
                per_worker_fits=True,
                min_reviews_for_fit=2,
            )

    def test_designs_solve_with_individual_fits(
        self, small_trace, small_clusters, small_proxy, small_malice
    ):
        from repro.core.decomposition import solve_subproblems

        population = _build(
            small_trace,
            small_clusters,
            small_proxy,
            small_malice,
            per_worker_fits=True,
        )
        prolific = small_trace.workers_with_min_reviews(15, WorkerType.HONEST)
        subset = [population.subproblem_of(w) for w in prolific[:10]]
        solutions = solve_subproblems(subset, mu=1.0)
        assert all(s.result.contract is not None for s in solutions.values())
