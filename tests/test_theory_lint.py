"""The theory-lint gate: the analyzer stays clean and stays sharp.

Two halves:

* the *gate* — running the analyzer over ``src/repro`` with the
  checked-in baseline yields zero new findings (CI fails on any new
  violation);
* the *rule tests* — each REPRO rule fires on a minimal seeded
  violation and stays quiet on the compliant twin, so the gate cannot
  rot into a no-op.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, LintEngine, get_rule, load_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import filter_baseline, package_relative

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".theory-lint-baseline"

ENGINE = LintEngine(ALL_RULES)


def lint_snippet(tmp_path: Path, relpath: str, source: str):
    """Lint one synthetic module placed at a package-relative path."""
    target = tmp_path / "repro" / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return ENGINE.lint_file(target)


def codes(diagnostics) -> set:
    return {diag.code for diag in diagnostics}


class TestGate:
    def test_src_tree_has_no_new_findings(self):
        """The shipped tree is clean modulo the checked-in baseline."""
        diagnostics = ENGINE.lint_paths([SRC])
        baseline = load_baseline(BASELINE) if BASELINE.is_file() else {}
        new, _stale = filter_baseline(diagnostics, baseline)
        assert not new, "new theory-lint findings:\n" + "\n".join(
            diag.format() for diag in new
        )

    def test_baseline_has_no_stale_entries(self):
        """Fixed findings must be removed from the baseline file."""
        diagnostics = ENGINE.lint_paths([SRC])
        baseline = load_baseline(BASELINE) if BASELINE.is_file() else {}
        _new, stale = filter_baseline(diagnostics, baseline)
        assert not stale, f"stale baseline entries: {sorted(stale)}"

    def test_cli_exits_zero_on_shipped_tree(self):
        assert lint_main([str(SRC), "--baseline", str(BASELINE)]) == 0

    def test_cli_exits_nonzero_on_seeded_violation(self, tmp_path):
        """A float == on a compensation must fail the lint run."""
        bad = tmp_path / "repro" / "core" / "seeded.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            '"""Seeded violation (Eq. 6)."""\n'
            "__all__ = []\n\n\n"
            "def _check(compensation: float) -> bool:\n"
            "    return compensation == 1.0\n"
        )
        assert lint_main([str(bad), "--no-baseline"]) == 1

    def test_explain_known_and_unknown_codes(self, capsys):
        assert lint_main(["--explain", "REPRO001"]) == 0
        out = capsys.readouterr().out
        assert "REPRO001" in out and "numerics" in out
        assert lint_main(["--explain", "REPRO999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_every_rule_has_rationale_and_paper_reference(self):
        for rule in ALL_RULES:
            assert rule.summary, rule.code
            assert rule.rationale, rule.code

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("repro001") is get_rule("REPRO001")


class TestBaselineWorkflow:
    def test_write_and_reuse_baseline(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "grandfathered.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            '"""Module (Eq. 6)."""\n__all__ = []\n\n\n'
            "def _helper(pay: float) -> bool:\n    return pay != 0.5\n"
        )
        baseline_file = tmp_path / "baseline.txt"
        assert (
            lint_main([str(bad), "--write-baseline", "--baseline", str(baseline_file)])
            == 0
        )
        # With the baseline, the same tree is clean; without it, it fails.
        assert lint_main([str(bad), "--baseline", str(baseline_file)]) == 0
        assert lint_main([str(bad), "--no-baseline"]) == 1

    def test_stale_entries_are_reported_but_do_not_fail(self, tmp_path, capsys):
        clean = tmp_path / "repro" / "core" / "clean.py"
        clean.parent.mkdir(parents=True)
        clean.write_text('"""Module (Eq. 6)."""\n__all__ = []\n')
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text("core/gone.py::REPRO001::_helper\n")
        assert lint_main([str(clean), "--baseline", str(baseline_file)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out


class TestRepro001FloatEquality:
    def test_flags_float_literal_comparison(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            '"""M (Eq. 6)."""\n__all__ = []\n\n\n'
            "def _f(value: float) -> bool:\n    return value == 1.5\n",
        )
        assert "REPRO001" in codes(diags)

    def test_flags_domain_identifier_comparison(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "metrics/x.py",
            "__all__ = []\n\n\ndef _f(a: float, utility: float) -> bool:\n"
            "    return a == utility\n",
        )
        assert "REPRO001" in codes(diags)

    def test_ignores_int_string_and_enum_comparisons(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            '"""M (Eq. 6)."""\n__all__ = []\n\n\n'
            "def _f(piece: int, kind: str, wt: object) -> bool:\n"
            "    from enum import Enum\n"
            "    return piece == 0 or kind == 'a' or wt == Enum\n",
        )
        assert "REPRO001" not in codes(diags)

    def test_noqa_suppresses(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            '"""M (Eq. 6)."""\n__all__ = []\n\n\n'
            "def _f(pay: float) -> bool:\n"
            "    return pay == 1.5  # noqa: REPRO001\n",
        )
        assert "REPRO001" not in codes(diags)


class TestRepro002PaperCitation:
    def test_flags_uncited_public_function_in_core(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            '"""M."""\n__all__ = ["f"]\n\n\ndef f() -> None:\n'
            '    """Does things."""\n',
        )
        assert "REPRO002" in codes(diags)

    def test_accepts_cited_function(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            '"""M."""\n__all__ = ["f"]\n\n\ndef f() -> None:\n'
            '    """Implements Lemma 4.2."""\n',
        )
        assert "REPRO002" not in codes(diags)

    def test_does_not_apply_outside_core_and_experiments(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/x.py",
            '"""M."""\n__all__ = ["f"]\n\n\ndef f() -> None:\n'
            '    """Does things."""\n',
        )
        assert "REPRO002" not in codes(diags)


class TestRepro003MutableDefault:
    def test_flags_list_default(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/x.py",
            "__all__ = []\n\n\ndef _f(rows=[]) -> None:\n    rows.append(1)\n",
        )
        assert "REPRO003" in codes(diags)

    def test_accepts_none_default(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/x.py",
            "__all__ = []\n\n\ndef _f(rows=None) -> None:\n    pass\n",
        )
        assert "REPRO003" not in codes(diags)


class TestRepro004ModuleAll:
    def test_flags_public_module_without_all(self, tmp_path):
        diags = lint_snippet(
            tmp_path, "metrics/x.py", "def f() -> None:\n    pass\n"
        )
        assert "REPRO004" in codes(diags)

    def test_accepts_private_only_module(self, tmp_path):
        diags = lint_snippet(
            tmp_path, "metrics/x.py", "def _f() -> None:\n    pass\n"
        )
        assert "REPRO004" not in codes(diags)


class TestRepro005BareExcept:
    def test_flags_bare_except(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/x.py",
            "__all__ = []\n\n\ndef _f() -> None:\n"
            "    try:\n        pass\n    except:\n        pass\n",
        )
        assert "REPRO005" in codes(diags)

    def test_accepts_typed_except(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/x.py",
            "__all__ = []\n\n\ndef _f() -> None:\n"
            "    try:\n        pass\n    except ValueError:\n        pass\n",
        )
        assert "REPRO005" not in codes(diags)


class TestRepro006DataclassValidation:
    SOURCE = (
        '"""M (Eq. 6)."""\nfrom dataclasses import dataclass\n\n__all__ = []\n\n\n'
        "@dataclass(frozen=True)\nclass _Record:\n    beta: float\n{post}"
    )

    def test_flags_unvalidated_numeric_dataclass_in_core(self, tmp_path):
        diags = lint_snippet(tmp_path, "core/x.py", self.SOURCE.format(post=""))
        assert "REPRO006" in codes(diags)

    def test_accepts_post_init(self, tmp_path):
        post = "\n    def __post_init__(self) -> None:\n        pass\n"
        diags = lint_snippet(tmp_path, "core/x.py", self.SOURCE.format(post=post))
        assert "REPRO006" not in codes(diags)

    def test_does_not_apply_outside_core_workers(self, tmp_path):
        diags = lint_snippet(tmp_path, "metrics/x.py", self.SOURCE.format(post=""))
        assert "REPRO006" not in codes(diags)


class TestRepro007RngDeterminism:
    def test_flags_global_numpy_rng_in_simulation(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "simulation/x.py",
            "import numpy as np\n\n__all__ = []\n\n\n"
            "def _f() -> float:\n    return float(np.random.normal())\n",
        )
        assert "REPRO007" in codes(diags)

    def test_flags_stdlib_global_rng(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "data/synthetic.py",
            "import random\n\n__all__ = []\n\n\n"
            "def _f() -> float:\n    return random.random()\n",
        )
        assert "REPRO007" in codes(diags)

    def test_accepts_seeded_generator(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "simulation/x.py",
            "import numpy as np\n\n__all__ = []\n\n\n"
            "def _f(seed: int) -> float:\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return float(rng.normal())\n",
        )
        assert "REPRO007" not in codes(diags)


class TestRepro008Annotations:
    def test_flags_unannotated_public_function(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "metrics/x.py",
            '__all__ = ["f"]\n\n\ndef f(x):\n    return x\n',
        )
        assert "REPRO008" in codes(diags)

    def test_accepts_annotated_function_and_skips_private(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "metrics/x.py",
            '__all__ = ["f"]\n\n\ndef f(x: int) -> int:\n    return x\n\n\n'
            "def _g(y):\n    return y\n",
        )
        assert "REPRO008" not in codes(diags)


class TestRepro009ObsDiscipline:
    def test_flags_print_in_serving(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "serving/x.py",
            'def f() -> None:\n    print("served")\n',
        )
        assert "REPRO009" in codes(diags)

    def test_flags_wall_clock_in_core(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            "import time\n\n\ndef f() -> float:\n    return time.time()\n",
        )
        assert "REPRO009" in codes(diags)

    def test_flags_wall_clock_in_simulation(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "simulation/x.py",
            "import time\n\n\ndef f() -> float:\n    return time.time()\n",
        )
        assert "REPRO009" in codes(diags)

    def test_cli_modules_exempt(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "serving/cli.py",
            'def f() -> None:\n    print("allowed at the boundary")\n',
        )
        assert "REPRO009" not in codes(diags)

    def test_other_packages_exempt(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "experiments/x.py",
            'def f() -> None:\n    print("figures narrate progress")\n',
        )
        assert "REPRO009" not in codes(diags)

    def test_monotonic_clocks_accepted(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            "core/x.py",
            "import time\n\n\ndef f() -> float:\n"
            "    return time.perf_counter() + time.process_time()\n",
        )
        assert "REPRO009" not in codes(diags)


class TestEngineMechanics:
    def test_package_relative_strips_src_prefix(self):
        assert (
            package_relative(Path("src/repro/core/bounds.py")) == "core/bounds.py"
        )

    def test_syntax_error_becomes_diagnostic(self, tmp_path):
        target = tmp_path / "repro" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(:\n")
        diags = ENGINE.lint_file(target)
        assert [diag.code for diag in diags] == ["REPRO000"]

    def test_fingerprint_is_line_independent(self, tmp_path):
        source = (
            '"""M (Eq. 6)."""\n__all__ = []\n\n\n'
            "def _f(pay: float) -> bool:\n    return pay == 1.5\n"
        )
        first = lint_snippet(tmp_path, "core/a.py", source)
        shifted = lint_snippet(tmp_path, "core/b.py", "# comment\n" * 7 + source)
        assert first[0].fingerprint.split("::")[1:] == (
            shifted[0].fingerprint.split("::")[1:]
        )
        assert first[0].line != shifted[0].line


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
