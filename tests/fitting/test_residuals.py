"""Tests for the goodness-of-fit measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FitError
from repro.fitting import fit_polynomial, norm_of_residual, r_squared, residuals, rmse


def _identity(x):
    return x


class TestResiduals:
    def test_residual_vector(self):
        res = residuals(_identity, [1.0, 2.0], [1.5, 1.0])
        assert res == pytest.approx([0.5, -1.0])

    def test_shape_mismatch(self):
        with pytest.raises(FitError):
            residuals(_identity, [1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(FitError):
            residuals(_identity, [], [])


class TestNorms:
    def test_norm_of_residual_is_l2(self):
        nor = norm_of_residual(_identity, [0.0, 0.0], [3.0, 4.0])
        assert nor == pytest.approx(5.0)

    def test_rmse_relation(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [0.5, 0.5, 2.5, 3.5]
        nor = norm_of_residual(_identity, x, y)
        assert rmse(_identity, x, y) == pytest.approx(nor / np.sqrt(len(x)))

    def test_perfect_fit_zero(self):
        assert norm_of_residual(_identity, [1.0, 2.0], [1.0, 2.0]) == 0.0


class TestRSquared:
    def test_perfect_fit(self):
        assert r_squared(_identity, [1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_mean_model_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        mean = float(y.mean())
        assert r_squared(lambda x: np.full_like(x, mean), [0, 1, 2], y) == (
            pytest.approx(0.0)
        )

    def test_constant_target_perfect(self):
        assert r_squared(lambda x: np.full_like(np.asarray(x, float), 2.0),
                         [0, 1], [2.0, 2.0]) == 1.0

    def test_constant_target_bad_model(self):
        assert r_squared(_identity, [0.0, 1.0], [2.0, 2.0]) == 0.0

    def test_fitted_model_r2_high_on_structured_data(self, rng):
        x = rng.uniform(0, 10, 100)
        y = 2 * x + 1 + rng.normal(0, 0.1, 100)
        model = fit_polynomial(x, y, order=1)
        assert r_squared(model, x, y) > 0.99
