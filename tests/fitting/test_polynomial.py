"""Tests for the polynomial least-squares substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.fitting import PolynomialModel, fit_polynomial


class TestFit:
    def test_recovers_exact_quadratic(self):
        x = np.linspace(0, 10, 50)
        y = -0.5 * x**2 + 3.0 * x + 1.0
        model = fit_polynomial(x, y, order=2)
        r2, r1, r0 = model.unscaled_coefficients()
        assert r2 == pytest.approx(-0.5, abs=1e-8)
        assert r1 == pytest.approx(3.0, abs=1e-7)
        assert r0 == pytest.approx(1.0, abs=1e-7)

    def test_matches_numpy_polyfit(self, rng):
        x = rng.uniform(0, 20, size=200)
        y = 0.3 * x**3 - 2 * x + rng.normal(0, 1, size=200)
        ours = fit_polynomial(x, y, order=3)
        reference = np.polyfit(x, y, deg=3)
        assert np.allclose(ours.unscaled_coefficients(), reference, rtol=1e-5, atol=1e-7)

    def test_order_zero_is_mean(self):
        y = [1.0, 2.0, 3.0, 6.0]
        model = fit_polynomial([0, 1, 2, 3], y, order=0)
        assert model(17.0) == pytest.approx(np.mean(y))

    def test_evaluation_scalar_and_array(self):
        model = fit_polynomial([0, 1, 2], [1, 2, 5], order=2)
        scalar = model(1.5)
        array = model(np.array([1.5, 2.0]))
        assert isinstance(scalar, float)
        assert array[0] == pytest.approx(scalar)

    def test_derivative_at(self):
        x = np.linspace(0, 5, 30)
        y = 2.0 * x**2 - x + 4.0
        model = fit_polynomial(x, y, order=2)
        assert model.derivative_at(1.0) == pytest.approx(2 * 2 * 1.0 - 1.0, abs=1e-6)

    def test_rescaling_conditioning_high_order(self):
        """Order-6 fit over large abscissae must stay accurate thanks to
        the internal rescaling."""
        x = np.linspace(1.0, 1000.0, 400)
        y = 1e-12 * x**4 + x
        model = fit_polynomial(x, y, order=6)
        predictions = model(x)
        assert np.max(np.abs(predictions - y)) < 1e-3 * np.max(np.abs(y))


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(FitError):
            fit_polynomial([1, 2, 3], [1, 2], order=1)

    def test_too_few_points(self):
        with pytest.raises(FitError):
            fit_polynomial([1, 2], [1, 2], order=2)

    def test_negative_order(self):
        with pytest.raises(FitError):
            fit_polynomial([1, 2, 3], [1, 2, 3], order=-1)

    def test_nonfinite_rejected(self):
        with pytest.raises(FitError):
            fit_polynomial([1, 2, np.inf], [1, 2, 3], order=1)
        with pytest.raises(FitError):
            fit_polynomial([1, 2, 3], [1, np.nan, 3], order=1)

    def test_2d_rejected(self):
        with pytest.raises(FitError):
            fit_polynomial(np.ones((2, 2)), np.ones((2, 2)), order=1)

    def test_model_validation(self):
        with pytest.raises(FitError):
            PolynomialModel(coefficients=())
        with pytest.raises(FitError):
            PolynomialModel(coefficients=(np.nan,))
        with pytest.raises(FitError):
            PolynomialModel(coefficients=(1.0,), scale=0.0)


@given(
    coefficients=st.lists(
        st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=4
    ),
    n_points=st.integers(min_value=10, max_value=60),
)
@settings(max_examples=100, deadline=None)
def test_property_exact_recovery_of_noiseless_polynomials(coefficients, n_points):
    """Fitting a noiseless polynomial of matching order recovers it."""
    order = len(coefficients) - 1
    x = np.linspace(0.5, 10.0, n_points)
    truth = np.zeros_like(x)
    for coefficient in coefficients:
        truth = truth * x + coefficient
    model = fit_polynomial(x, truth, order=order)
    predictions = model(x)
    scale = max(1.0, float(np.max(np.abs(truth))))
    assert np.max(np.abs(predictions - truth)) <= 1e-6 * scale


@given(
    n_points=st.integers(min_value=12, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_property_higher_order_never_increases_residual(n_points, seed):
    """Nested least squares: a higher-order fit's SSR cannot exceed a
    lower-order one's on the same data."""
    generator = np.random.default_rng(seed)
    x = generator.uniform(0, 10, size=n_points)
    y = generator.normal(0, 1, size=n_points) + 0.2 * x
    residuals = []
    for order in (1, 2, 3):
        model = fit_polynomial(x, y, order=order)
        residuals.append(float(np.sum((model(x) - y) ** 2)))
    assert residuals[1] <= residuals[0] + 1e-8
    assert residuals[2] <= residuals[1] + 1e-8
