"""Tests for the Table III order sweep and selection rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FitError
from repro.fitting import TABLE_III_ORDERS, select_order, sweep_orders


class TestSweep:
    def test_sweep_covers_requested_orders(self, rng):
        x = rng.uniform(0, 10, 100)
        y = -0.2 * x**2 + 2 * x + rng.normal(0, 0.5, 100)
        sweep = sweep_orders(x, y)
        assert set(sweep.models) == set(TABLE_III_ORDERS)
        assert set(sweep.nors) == set(TABLE_III_ORDERS)

    def test_nor_row_order(self, rng):
        x = rng.uniform(0, 10, 50)
        y = x + rng.normal(0, 0.1, 50)
        sweep = sweep_orders(x, y, orders=(1, 2))
        row = sweep.nor_row(orders=(2, 1))
        assert row == (sweep.nors[2], sweep.nors[1])

    def test_nor_row_missing_order(self, rng):
        x = rng.uniform(0, 10, 50)
        sweep = sweep_orders(x, x, orders=(1, 2))
        with pytest.raises(FitError):
            sweep.nor_row(orders=(1, 5))

    def test_nor_nonincreasing_with_order(self, rng):
        x = rng.uniform(0, 10, 200)
        y = np.sin(x) + rng.normal(0, 0.2, 200)
        sweep = sweep_orders(x, y)
        row = sweep.nor_row()
        assert all(b <= a + 1e-9 for a, b in zip(row, row[1:]))

    def test_empty_orders_rejected(self, rng):
        with pytest.raises(FitError):
            sweep_orders([1, 2, 3], [1, 2, 3], orders=())


class TestSelection:
    def test_quadratic_data_selects_quadratic(self, rng):
        x = rng.uniform(0, 10, 2000)
        y = -0.3 * x**2 + 4 * x + 1 + rng.normal(0, 1.0, 2000)
        assert select_order(x, y) == 2

    def test_linear_data_selects_linear(self, rng):
        x = rng.uniform(0, 10, 2000)
        y = 2 * x + rng.normal(0, 1.0, 2000)
        assert select_order(x, y) == 1

    def test_tolerance_zero_returns_best(self, rng):
        x = rng.uniform(0, 10, 100)
        y = x**2 + rng.normal(0, 0.1, 100)
        sweep = sweep_orders(x, y)
        assert sweep.selected_order(tolerance=0.0) == sweep.best_order

    def test_negative_tolerance_rejected(self, rng):
        x = rng.uniform(0, 10, 100)
        sweep = sweep_orders(x, x)
        with pytest.raises(FitError):
            sweep.selected_order(tolerance=-0.1)

    def test_perfect_fit_handled(self):
        """Zero-NoR best fits must not divide by zero in the rule."""
        x = np.linspace(0, 5, 30)
        y = 2 * x + 1
        sweep = sweep_orders(x, y, orders=(1, 2))
        assert sweep.selected_order() == 1
