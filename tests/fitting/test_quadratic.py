"""Tests for the concave-constrained quadratic fit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuadraticEffort
from repro.errors import FitError
from repro.fitting import fit_concave_quadratic


class TestUnconstrainedPath:
    def test_recovers_valid_quadratic(self, rng):
        truth = QuadraticEffort(r2=-0.4, r1=3.0, r0=1.0)
        x = rng.uniform(0, 3.0, 500)
        y = truth(x) + rng.normal(0, 0.05, 500)
        fitted = fit_concave_quadratic(x, y)
        assert fitted.r2 == pytest.approx(truth.r2, rel=0.1)
        assert fitted.r1 == pytest.approx(truth.r1, rel=0.05)
        assert fitted.r0 == pytest.approx(truth.r0, abs=0.15)


class TestRepairPaths:
    def test_convex_data_clamped_to_concave(self, rng):
        x = rng.uniform(0, 5, 200)
        y = 0.5 * x**2 + x  # convex
        fitted = fit_concave_quadratic(x, y)
        assert fitted.r2 < 0.0
        assert fitted.r1 > 0.0

    def test_decreasing_data_gets_positive_slope_floor(self, rng):
        x = rng.uniform(0, 5, 200)
        y = -2.0 * x + 10.0  # decreasing
        fitted = fit_concave_quadratic(x, y)
        assert fitted.r1 > 0.0

    def test_negative_intercept_clamped(self, rng):
        x = rng.uniform(1, 5, 200)
        y = 2.0 * x - 5.0  # intercept -5
        fitted = fit_concave_quadratic(x, y)
        assert fitted.r0 >= 0.0

    def test_linear_data_yields_usable_effort_function(self, rng):
        x = rng.uniform(0, 5, 300)
        y = 1.5 * x + 0.5 + rng.normal(0, 0.05, 300)
        fitted = fit_concave_quadratic(x, y)
        # Valid by construction and nearly linear over the data range.
        assert fitted.max_increasing_effort > x.max()
        predictions = fitted(x)
        assert np.corrcoef(predictions, y)[0, 1] > 0.99


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(FitError):
            fit_concave_quadratic([1.0, 2.0], [1.0, 2.0])

    def test_negative_efforts_rejected(self):
        with pytest.raises(FitError):
            fit_concave_quadratic([-1.0, 0.0, 1.0], [0.0, 1.0, 2.0])

    def test_degenerate_x_rejected(self):
        with pytest.raises(FitError):
            fit_concave_quadratic([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_bad_floors_rejected(self):
        with pytest.raises(FitError):
            fit_concave_quadratic([0, 1, 2], [0, 1, 2], min_curvature=0.0)
        with pytest.raises(FitError):
            fit_concave_quadratic([0, 1, 2], [0, 1, 2], min_slope=-1.0)


@given(
    r2=st.floats(min_value=-1.0, max_value=1.0),
    r1=st.floats(min_value=-2.0, max_value=5.0),
    r0=st.floats(min_value=-2.0, max_value=5.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_property_always_returns_valid_effort_function(r2, r1, r0, seed):
    """Whatever the data's shape, the result satisfies the paper's
    assumptions (r2 < 0, r1 > 0, r0 >= 0)."""
    generator = np.random.default_rng(seed)
    x = generator.uniform(0, 4, 50)
    y = r2 * x**2 + r1 * x + r0 + generator.normal(0, 0.2, 50)
    fitted = fit_concave_quadratic(x, y)
    assert fitted.r2 < 0.0
    assert fitted.r1 > 0.0
    assert fitted.r0 >= 0.0
