"""Tests for malice-probability estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Product, Review, ReviewTrace, Reviewer
from repro.errors import EstimationError
from repro.estimation import DeviationMaliceEstimator, OracleMaliceEstimator
from repro.types import WorkerType


@pytest.fixture()
def trace() -> ReviewTrace:
    products = [
        Product(product_id=f"p{i}", true_quality=3.0, expert_score=3.0)
        for i in range(6)
    ]
    reviewers = [
        Reviewer(reviewer_id="saint", worker_type=WorkerType.HONEST),
        Reviewer(reviewer_id="shill", worker_type=WorkerType.NONCOLLUSIVE_MALICIOUS),
        Reviewer(reviewer_id="idle", worker_type=WorkerType.HONEST),
    ]
    reviews = [
        Review("r1", "saint", "p0", 3.1, 100, 1),
        Review("r2", "saint", "p1", 2.9, 100, 1),
        Review("r3", "saint", "p2", 3.0, 100, 1),
        Review("r4", "shill", "p3", 5.0, 100, 1),
        Review("r5", "shill", "p4", 5.0, 100, 1),
        Review("r6", "shill", "p5", 4.8, 100, 1),
    ]
    return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)


class TestDeviationEstimator:
    def test_separates_honest_from_biased(self, trace):
        estimates = DeviationMaliceEstimator().estimate(trace)
        assert estimates["saint"] < 0.3
        assert estimates["shill"] > 0.6

    def test_idle_worker_gets_prior(self, trace):
        estimator = DeviationMaliceEstimator(prior=0.123)
        assert estimator.estimate(trace)["idle"] == pytest.approx(0.123)

    def test_estimates_bounded(self, trace):
        estimates = DeviationMaliceEstimator().estimate(trace)
        assert all(0.0 <= value <= 1.0 for value in estimates.values())

    def test_shrinkage_pulls_toward_prior(self):
        """One extreme review moves e_mal far less than five do."""
        products = [
            Product(product_id=f"p{i}", true_quality=3.0, expert_score=3.0)
            for i in range(5)
        ]
        def build(n_reviews):
            reviewers = [
                Reviewer(reviewer_id="w", worker_type=WorkerType.HONEST)
            ]
            reviews = [
                Review(f"r{i}", "w", f"p{i}", 5.0, 100, 0)
                for i in range(n_reviews)
            ]
            return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)

        estimator = DeviationMaliceEstimator(prior=0.1, shrinkage_reviews=2.0)
        one = estimator.estimate(build(1))["w"]
        five = estimator.estimate(build(5))["w"]
        assert one < five

    def test_invalid_parameters(self):
        with pytest.raises(EstimationError):
            DeviationMaliceEstimator(honest_deviation=2.0, malicious_deviation=1.0)
        with pytest.raises(EstimationError):
            DeviationMaliceEstimator(prior=1.5)
        with pytest.raises(EstimationError):
            DeviationMaliceEstimator(steepness=0.0)

    def test_on_synthetic_trace_separation(self, small_trace, small_malice):
        """On the full synthetic trace the estimator separates the
        planted classes in aggregate."""
        honest, malicious = [], []
        for worker_id, reviewer in small_trace.reviewers.items():
            (malicious if reviewer.is_malicious else honest).append(
                small_malice[worker_id]
            )
        assert np.mean(malicious) > np.mean(honest) + 0.3


class TestOracleEstimator:
    def test_reads_labels(self, trace):
        estimates = OracleMaliceEstimator().estimate(trace)
        assert estimates["shill"] == pytest.approx(0.95)
        assert estimates["saint"] == pytest.approx(0.02)

    def test_custom_levels(self, trace):
        estimates = OracleMaliceEstimator(certainty=0.8, honest_floor=0.1).estimate(
            trace
        )
        assert estimates["shill"] == pytest.approx(0.8)
        assert estimates["saint"] == pytest.approx(0.1)

    def test_invalid_levels(self):
        with pytest.raises(EstimationError):
            OracleMaliceEstimator(certainty=0.5, honest_floor=0.6)
        with pytest.raises(EstimationError):
            OracleMaliceEstimator(certainty=1.5)
