"""Tests for expertise / effort-proxy estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Product, Review, ReviewTrace, Reviewer
from repro.errors import EstimationError
from repro.estimation import EffortProxy, estimate_expertise
from repro.types import WorkerType


@pytest.fixture()
def trace() -> ReviewTrace:
    products = [
        Product(product_id=f"p{i}", true_quality=3.0, expert_score=3.0)
        for i in range(4)
    ]
    reviewers = [
        Reviewer(reviewer_id="star", worker_type=WorkerType.HONEST),
        Reviewer(reviewer_id="novice", worker_type=WorkerType.HONEST),
        Reviewer(reviewer_id="idle", worker_type=WorkerType.HONEST),
    ]
    reviews = [
        Review("r1", "star", "p0", 3.0, 400, 10),
        Review("r2", "star", "p1", 3.0, 600, 14),
        Review("r3", "novice", "p2", 3.0, 200, 2),
        Review("r4", "novice", "p3", 3.0, 200, 4),
    ]
    return ReviewTrace(products=products, reviewers=reviewers, reviews=reviews)


class TestExpertise:
    def test_mean_upvotes(self, trace):
        expertise = estimate_expertise(trace)
        assert expertise["star"] == pytest.approx(12.0)
        assert expertise["novice"] == pytest.approx(3.0)

    def test_idle_worker_zero(self, trace):
        assert estimate_expertise(trace)["idle"] == 0.0


class TestEffortProxy:
    def test_from_trace_normalizers(self, trace):
        proxy = EffortProxy.from_trace(trace)
        assert proxy.mean_expertise == pytest.approx((12.0 + 3.0) / 2)
        assert proxy.mean_length == pytest.approx((400 + 600 + 200 + 200) / 4)

    def test_effort_formula(self, trace):
        proxy = EffortProxy.from_trace(trace)
        effort = proxy.effort_of("star", 400)
        expected = (12.0 / proxy.mean_expertise) * (400 / proxy.mean_length)
        assert effort == pytest.approx(expected)

    def test_effort_monotone_in_length_and_expertise(self, trace):
        proxy = EffortProxy.from_trace(trace)
        assert proxy.effort_of("star", 500) > proxy.effort_of("star", 100)
        assert proxy.effort_of("star", 300) > proxy.effort_of("novice", 300)

    def test_unknown_worker_rejected(self, trace):
        proxy = EffortProxy.from_trace(trace)
        with pytest.raises(EstimationError):
            proxy.effort_of("ghost", 100)

    def test_nonpositive_length_rejected(self, trace):
        proxy = EffortProxy.from_trace(trace)
        with pytest.raises(EstimationError):
            proxy.effort_of("star", 0)

    def test_worker_points_alignment(self, trace):
        proxy = EffortProxy.from_trace(trace)
        efforts, upvotes = proxy.worker_points(trace, "star")
        assert efforts.shape == upvotes.shape == (2,)
        assert upvotes.tolist() == [10.0, 14.0]

    def test_class_points_one_per_worker(self, trace):
        proxy = EffortProxy.from_trace(trace)
        efforts, feedbacks = proxy.class_points(trace, ["star", "novice", "idle"])
        # idle has no reviews and is skipped.
        assert efforts.shape == (2,)
        assert feedbacks.tolist() == [12.0, 3.0]

    def test_empty_trace_rejected(self):
        empty = ReviewTrace(products=[], reviewers=[], reviews=[])
        with pytest.raises(EstimationError):
            EffortProxy.from_trace(empty)
