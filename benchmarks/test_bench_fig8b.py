"""Bench: Fig. 8b — decomposed subproblem solving across the mu sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import solve_subproblems
from repro.experiments import fig8b_mu_sweep
from repro.types import WorkerType


def test_bench_fig8b_experiment(benchmark, context):
    """Time the full Fig. 8b driver (three mu values)."""
    result = benchmark(fig8b_mu_sweep.run, context)
    assert result.all_checks_pass, result.format()


@pytest.mark.parametrize("mu", [1.0, 0.8])
def test_bench_fig8b_population_solve(benchmark, context, mu):
    """Time one full-population decomposed solve at a single mu.

    The candidate cache makes same-class subproblems nearly free, which
    is exactly the Section IV-B decomposition payoff being measured.
    """
    population = context.population()
    solutions = benchmark(solve_subproblems, population.subproblems, mu)
    honest = [
        solutions[s].per_member_compensation
        for s in population.subjects_of_type(WorkerType.HONEST)
    ]
    collusive = [
        solutions[s].per_member_compensation
        for s in population.subjects_of_type(WorkerType.COLLUSIVE_MALICIOUS)
    ]
    assert np.mean(honest) > np.mean(collusive)
