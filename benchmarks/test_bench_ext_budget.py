"""Bench: budget-feasible selection (MCKP) over a solved population."""

from __future__ import annotations

import pytest

from repro.core.budget import budgeted_selection
from repro.core.decomposition import solve_subproblems
from repro.experiments import ext_budget


def test_bench_ext_budget_experiment(benchmark, context):
    """Time the full budget-frontier experiment."""
    result = benchmark.pedantic(
        lambda: ext_budget.run(context), rounds=2, iterations=1
    )
    assert result.all_checks_pass, result.format()


def test_bench_mckp_solve(benchmark, context):
    """Time one MCKP solve over the whole population's options."""
    population = context.population()
    solutions = solve_subproblems(population.subproblems, mu=1.0)
    unconstrained_pay = sum(
        s.result.response.compensation for s in solutions.values()
    )

    design = benchmark(budgeted_selection, solutions, 0.5 * unconstrained_pay)
    assert design.total_cost <= 0.5 * unconstrained_pay + 1e-6
    assert design.total_utility > 0.0
