"""Bench: Table III — polynomial order sweep per worker class."""

from __future__ import annotations

import pytest

from repro.experiments import table3_fitting
from repro.fitting import sweep_orders
from repro.types import WorkerType


def test_bench_table3_experiment(benchmark, context):
    """Time the full Table III driver (three class sweeps)."""
    result = benchmark(table3_fitting.run, context)
    assert result.all_checks_pass, result.format()


def test_bench_table3_honest_sweep(benchmark, context):
    """Time one order-1..6 sweep over the honest class points."""
    efforts, feedbacks = context.proxy.class_points(
        context.trace, context.trace.worker_ids(WorkerType.HONEST)
    )
    sweep = benchmark(sweep_orders, efforts, feedbacks)
    row = sweep.nor_row()
    assert all(b <= a + 1e-9 for a, b in zip(row, row[1:]))
