"""Bench: Fig. 8a — per-worker fits + designs vs the Lemma 4.3 floor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ContractDesigner, DesignerConfig
from repro.experiments import fig8a_compensation
from repro.fitting import fit_concave_quadratic
from repro.types import WorkerParameters, WorkerType


def test_bench_fig8a_experiment(benchmark, context):
    """Time the full Fig. 8a driver (per-worker fit + 3 grid sweeps)."""
    result = benchmark(fig8a_compensation.run, context)
    assert result.all_checks_pass, result.format()


@pytest.mark.parametrize("n_intervals", [10, 20, 40])
def test_bench_fig8a_per_worker_design(benchmark, context, n_intervals):
    """Time fit + design for one long-history honest worker."""
    worker_id = context.trace.workers_with_min_reviews(
        context.config.fig8a_min_reviews, WorkerType.HONEST
    )[0]
    efforts, upvotes = context.proxy.worker_points(context.trace, worker_id)
    params = WorkerParameters.honest(beta=1.0)

    def fit_and_design():
        psi = fit_concave_quadratic(efforts, upvotes)
        designer = ContractDesigner(
            mu=1.0, config=DesignerConfig(n_intervals=n_intervals)
        )
        cap = 1.25 * float(np.percentile(efforts, 99))
        return designer.design(psi, params, feedback_weight=1.0, max_effort=cap)

    result = benchmark(fit_and_design)
    assert result.hired
