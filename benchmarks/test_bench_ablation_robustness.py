"""Ablation: nominal vs pessimistic-curve (robust) contract design.

Quantifies the knife-edge finding of :mod:`repro.core.sensitivity`: the
paper's minimal-slope contract loses ~all utility under a 10% adverse
misfit of the fitted effort curve, while the robust variant holds a
guaranteed level at a bounded nominal premium.  Also times both (the
robust design is one extra designer call plus a replay grid).
"""

from __future__ import annotations

import pytest

from repro.core import misfit_sweep, robust_design

_CURVATURES = (0.8, 0.9, 1.0, 1.1, 1.2)
_SLOPES = (0.9, 1.0, 1.1)


def test_bench_nominal_design_under_misfit(benchmark, psi, honest_params):
    """Time the misfit sweep of the nominal design; record fragility."""
    report = benchmark(
        misfit_sweep,
        psi,
        honest_params,
        1.0,
        1.0,
        _CURVATURES,
        _SLOPES,
    )
    assert report.max_degradation() > 0.5
    benchmark.extra_info["nominal_utility"] = report.nominal_utility
    benchmark.extra_info["worst_case"] = report.worst_case().requester_utility


def test_bench_robust_design(benchmark, psi, honest_params):
    """Time the robust design; assert it dominates nominal worst case."""
    result, guaranteed = benchmark(
        robust_design,
        psi,
        honest_params,
        1.0,
        1.0,
        _CURVATURES,
        _SLOPES,
    )
    report = misfit_sweep(
        psi,
        honest_params,
        curvature_factors=_CURVATURES,
        slope_factors=_SLOPES,
    )
    assert guaranteed > report.worst_case().requester_utility
    # The robustness premium is bounded: the guaranteed level retains a
    # substantial fraction of the nominal optimum.
    assert guaranteed >= 0.5 * report.nominal_utility
    benchmark.extra_info["guaranteed_utility"] = guaranteed
