"""Benchmarks and speedup gates for the vectorized candidate sweep.

The fast path's pitch is quantitative (O(K) shared-prefix batching vs
the legacy per-candidate O(K^2)-and-worse sweep), so the thresholds are
asserted, not just reported:

* the vectorized sweep is >= 3x faster than the legacy sweep at
  ``K = 100`` on the reference effort function (measured headroom is
  two orders of magnitude; the gate is deliberately conservative for
  noisy CI runners),
* a cold-cache end-to-end design pass over a synthetic population is
  >= 1.5x faster with the fast path on than forced off,
* both paths agree to :mod:`repro.numerics` tolerance on everything the
  gate measures (equivalence is re-asserted here so a speedup can never
  be bought with a wrong answer).

The gate test also writes a ``BENCH_sweep.json`` artifact (path
overridable via ``REPRO_BENCH_OUT``) with the measured timings so CI
runs leave a machine-readable record (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import solve_subproblems
from repro.core.sweep import legacy_sweep, require_sweeps_agree, vectorized_sweep
from repro.serving.workload import synthetic_subproblems
from repro.types import DiscretizationGrid

_GATE_K = 100
_GATE_SPEEDUP = 3.0
_E2E_SPEEDUP = 1.5
_N_SUBJECTS = 120
_N_ARCHETYPES = 24
_SEED = 11


def _gate_grid(psi, n_intervals: int) -> DiscretizationGrid:
    return DiscretizationGrid.for_max_effort(
        0.95 * psi.max_increasing_effort, n_intervals
    )


def _best_of(callable_, repeats: int = 3) -> float:
    """Best-of-N wall time: robust to one-off scheduler hiccups."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_bench_sweep_vectorized(benchmark, psi, honest_params):
    """Time the vectorized sweep at the gate size."""
    grid = _gate_grid(psi, _GATE_K)
    pairs, stats = benchmark(vectorized_sweep, psi, grid, honest_params)
    assert stats.fastpath
    assert len(pairs) == _GATE_K


def test_bench_sweep_legacy(benchmark, psi, honest_params):
    """Time the legacy per-candidate sweep at the gate size."""
    grid = _gate_grid(psi, _GATE_K)
    pairs, stats = benchmark(legacy_sweep, psi, grid, honest_params)
    assert not stats.fastpath
    assert len(pairs) == _GATE_K


def test_bench_sweep_vectorized_k20(benchmark, psi, grid, honest_params):
    """Time the vectorized sweep at the default experiment grid size."""
    pairs, _ = benchmark(vectorized_sweep, psi, grid, honest_params)
    assert len(pairs) == grid.n_intervals


def test_sweep_speedup_gates(psi, honest_params, monkeypatch, bench_history):
    """The ISSUE acceptance gates, asserted on one measured run."""
    grid = _gate_grid(psi, _GATE_K)

    # Equivalence first: a speedup never excuses a wrong answer.
    fast_pairs, _ = vectorized_sweep(psi, grid, honest_params)
    legacy_pairs, _ = legacy_sweep(psi, grid, honest_params)
    require_sweeps_agree(fast_pairs, legacy_pairs)

    # Gate 1: microbenchmark speedup at K = 100.
    fast_elapsed = _best_of(lambda: vectorized_sweep(psi, grid, honest_params))
    legacy_elapsed = _best_of(lambda: legacy_sweep(psi, grid, honest_params))
    sweep_speedup = legacy_elapsed / fast_elapsed
    assert sweep_speedup >= _GATE_SPEEDUP, (
        f"vectorized sweep only {sweep_speedup:.1f}x faster than legacy at "
        f"K={_GATE_K}; gate is {_GATE_SPEEDUP}x"
    )

    # Gate 2: cold-cache end-to-end design pass over a population (the
    # Fig. 8b-style workload shape: many subjects, shared archetypes).
    workload = synthetic_subproblems(
        n_subjects=_N_SUBJECTS, n_archetypes=_N_ARCHETYPES, seed=_SEED
    )

    def solve_all() -> None:
        solve_subproblems(workload, mu=1.0)

    monkeypatch.setenv("REPRO_FASTPATH", "1")
    e2e_fast = _best_of(solve_all)
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    e2e_legacy = _best_of(solve_all)
    e2e_speedup = e2e_legacy / e2e_fast
    assert e2e_speedup >= _E2E_SPEEDUP, (
        f"end-to-end cold-cache design pass only {e2e_speedup:.2f}x faster "
        f"with the fast path; gate is {_E2E_SPEEDUP}x"
    )

    artifact = {
        "gate_k": _GATE_K,
        "sweep_fast_seconds": fast_elapsed,
        "sweep_legacy_seconds": legacy_elapsed,
        "sweep_speedup": sweep_speedup,
        "e2e_subjects": _N_SUBJECTS,
        "e2e_fast_seconds": e2e_fast,
        "e2e_legacy_seconds": e2e_legacy,
        "e2e_speedup": e2e_speedup,
        "gates": {"sweep": _GATE_SPEEDUP, "end_to_end": _E2E_SPEEDUP},
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", "BENCH_sweep.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
    bench_history(
        "sweep",
        {"sweep_speedup": sweep_speedup, "e2e_speedup": e2e_speedup},
        directions={"sweep_speedup": "higher", "e2e_speedup": "higher"},
    )
