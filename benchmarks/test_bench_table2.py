"""Bench: Table II — collusive-community clustering.

Regenerates the community-size distribution (small scale) and times the
Section IV-A pipeline at the paper's full malicious-population size on a
synthetic target map with the exact Table II community structure.
"""

from __future__ import annotations

import pytest

from repro.collusion import cluster_collusive_workers, community_size_table
from repro.data.synthetic import PAPER_COMMUNITY_SIZES
from repro.experiments import table2_communities


def test_bench_table2_experiment(benchmark, context):
    """Time the full Table II driver (clustering + bucketing)."""
    result = benchmark(table2_communities.run, context)
    assert result.all_checks_pass, result.format()


def _paper_scale_targets():
    """A worker -> targets map with the paper's exact structure: 47
    communities per PAPER_COMMUNITY_SIZES plus 1,312 non-collusive
    malicious workers, each on private products."""
    targets = {}
    product = 0
    worker = 0
    for size in PAPER_COMMUNITY_SIZES:
        anchor = f"p{product}"
        product += 1
        for _ in range(size):
            extra = f"p{product}"
            product += 1
            targets[f"w{worker}"] = [anchor, extra]
            worker += 1
    for _ in range(1_312):
        targets[f"w{worker}"] = [f"p{product}", f"p{product + 1}"]
        product += 2
        worker += 1
    return targets


def test_bench_table2_clustering_paper_scale(benchmark):
    """Time clustering over the full 1,524-worker malicious population."""
    targets = _paper_scale_targets()
    clusters = benchmark(cluster_collusive_workers, targets)
    assert clusters.n_communities == 47
    assert clusters.n_collusive_workers == 212
    assert len(clusters.noncollusive) == 1_312
    table = community_size_table(clusters)
    assert table.counts[2] == PAPER_COMMUNITY_SIZES.count(2)
