"""Benchmarks and throughput gates for the contract-serving engine.

The serving layer's pitch is quantitative, so the acceptance thresholds
are asserted, not just reported, on a >= 200-worker synthetic population
with realistic archetype clustering:

* pooled (dedup + cache) serving sustains >= 2x the serial designs/s
  over a multi-round run,
* the warm-cache hit rate is >= 90%,
* serial, pooled and cached paths produce byte-identical contracts.

The population solves every archetype fresh on the serial path each
round (a requester without the serving layer re-runs the full design
pass per round), while the serving path amortizes: round one pays for
one solve per unique fingerprint, later rounds are cache lookups.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import pytest

from repro.core import solve_subproblems
from repro.core.designer import DesignerConfig
from repro.serving import (
    ContractCache,
    LoadGenerator,
    ServingStats,
    ShardRouter,
    SolverPool,
    pool_target,
    router_target,
    synthetic_request_batches,
)
from repro.serving.workload import synthetic_subproblems

_N_SUBJECTS = 240
_N_ARCHETYPES = 24
_N_ROUNDS = 3
_SEED = 11

# Cluster gate: the workload's unique-archetype count deliberately
# exceeds one process's cache capacity, so a single process thrashes
# its LRU while four shards, each owning ~1/4 of the fingerprints via
# consistent hashing, together hold the whole working set warm.  That
# partitioned-aggregate-cache effect is the cluster's honest win on a
# single-core runner, where raw process fan-out adds no CPU.  The
# finer design grid (n_intervals=80) prices a cache miss at a few
# milliseconds, so the comparison measures solve amortization rather
# than pipe overhead.
_CLUSTER_SUBJECTS = 192
_CLUSTER_ARCHETYPES = 96
_SHARD_CACHE = 32
_CLUSTER_REQUESTS = 480
_CLUSTER_BATCH = 48
_CLUSTER_INTERVALS = 80
_CLUSTER_SEED = 13


@pytest.fixture(scope="module")
def serving_workload():
    return synthetic_subproblems(
        n_subjects=_N_SUBJECTS, n_archetypes=_N_ARCHETYPES, seed=_SEED
    )


def _compensation_bytes(solutions):
    return {
        subject_id: pickle.dumps(solution.result.contract.compensations)
        for subject_id, solution in solutions.items()
    }


def test_bench_serving_serial_round(benchmark, serving_workload):
    """Time one full serial design pass over the population."""
    solutions = benchmark(solve_subproblems, serving_workload, 1.0)
    assert len(solutions) == _N_SUBJECTS


def test_bench_serving_pooled_cold(benchmark, serving_workload):
    """Time one deduped (cold-cache) serving pass."""

    def solve_cold():
        with SolverPool(n_workers=0) as pool:
            return pool.solve(serving_workload)

    solutions = benchmark(solve_cold)
    assert len(solutions) == _N_SUBJECTS


def test_bench_serving_cached_warm(benchmark, serving_workload):
    """Time one warm-cache serving pass (steady-state marketplace round)."""
    with SolverPool(n_workers=0, cache=ContractCache()) as pool:
        pool.solve(serving_workload)  # prime the cache
        solutions = benchmark(pool.solve, serving_workload)
    assert len(solutions) == _N_SUBJECTS


def test_serving_throughput_hit_rate_and_equivalence(serving_workload):
    """The ISSUE acceptance gates, asserted on one multi-round run."""
    # Serial baseline: a fresh full design pass per round.
    started = time.perf_counter()
    for _ in range(_N_ROUNDS):
        serial_solutions = solve_subproblems(serving_workload, mu=1.0)
    serial_elapsed = time.perf_counter() - started
    serial_throughput = _N_ROUNDS * _N_SUBJECTS / serial_elapsed

    # Serving path: same rounds through the pool with dedup + cache.
    stats = ServingStats()
    cache = ContractCache()
    with SolverPool(n_workers=0, cache=cache, stats=stats) as pool:
        started = time.perf_counter()
        for round_index in range(_N_ROUNDS):
            pooled_solutions, diagnostics = pool.solve_with_diagnostics(
                serving_workload
            )
            if round_index == 0:
                cold_solutions = pooled_solutions
        pooled_elapsed = time.perf_counter() - started
    pooled_throughput = _N_ROUNDS * _N_SUBJECTS / pooled_elapsed

    # Gate 1: >= 2x serial throughput over the run.
    assert pooled_throughput >= 2.0 * serial_throughput, (
        f"pooled {pooled_throughput:.0f} designs/s < 2x serial "
        f"{serial_throughput:.0f} designs/s"
    )

    # Gate 2: warm rounds answer >= 90% of unique lookups from the cache.
    warm_hits = sum(1 for d in diagnostics.values() if d.cache_hit)
    assert warm_hits / _N_SUBJECTS >= 0.9
    assert stats.hit_rate >= (_N_ROUNDS - 1) / _N_ROUNDS - 1e-9

    # Gate 3: serial, cold-pooled and warm-cached contracts are
    # byte-identical.
    serial_bytes = _compensation_bytes(serial_solutions)
    assert _compensation_bytes(cold_solutions) == serial_bytes
    assert _compensation_bytes(pooled_solutions) == serial_bytes


def test_serving_process_pool_equivalence(serving_workload):
    """The multi-process path returns the same bytes as the serial path.

    Kept separate from the throughput gate: on single-core CI runners
    process fan-out adds pickling overhead without adding cores, so the
    speedup gate is carried by dedup + cache (the archetype structure),
    not by raw process parallelism.
    """
    subset = serving_workload[:60]
    serial_bytes = _compensation_bytes(solve_subproblems(subset, mu=1.0))
    with SolverPool(n_workers=2) as pool:
        pooled_bytes = _compensation_bytes(pool.solve(subset))
    assert pooled_bytes == serial_bytes


@pytest.fixture(scope="module")
def cluster_workload():
    return synthetic_subproblems(
        n_subjects=_CLUSTER_SUBJECTS,
        n_archetypes=_CLUSTER_ARCHETYPES,
        seed=_CLUSTER_SEED,
    )


def test_cluster_throughput_latency_and_equivalence(
    cluster_workload, bench_history
):
    """The ISSUE cluster gate: 4 shards >= 2x one process, p99 via obs.

    Both sides replay the *same* pre-drawn request batches through the
    closed-loop :class:`LoadGenerator` with the same concurrency and the
    same per-process cache capacity, and both get one full priming pass
    first.  The single process still thrashes (working set > capacity);
    the shards' partitioned caches stay warm.  The baseline is the raw
    :class:`SolverPool` -- a *stricter* bar than ``ContractServer``,
    which adds asyncio batching overhead on top of the same pool.

    Latency quantiles come from the :mod:`repro.obs` histogram the load
    generator publishes into (``Histogram.quantile``), and the measured
    numbers land in ``BENCH_cluster.json`` (path overridable via
    ``REPRO_BENCH_OUT``).
    """
    batches = synthetic_request_batches(
        cluster_workload,
        n_requests=_CLUSTER_REQUESTS,
        batch_size=_CLUSTER_BATCH,
        seed=_CLUSTER_SEED,
    )
    config = DesignerConfig(n_intervals=_CLUSTER_INTERVALS)

    with SolverPool(
        n_workers=0,
        config=config,
        cache=ContractCache(capacity=_SHARD_CACHE),
    ) as pool:
        pool.solve(cluster_workload)  # prime; still thrashes by design
        single = LoadGenerator(
            pool_target(pool), concurrency=4, namespace="bench_single"
        ).run(batches)

    with ShardRouter(
        n_shards=4,
        config=config,
        cache_capacity=_SHARD_CACHE,
        supervise_interval=0.0,
    ) as router:
        router.solve_designs(cluster_workload)  # each shard warms its slice
        cluster = LoadGenerator(
            router_target(router), concurrency=4, namespace="bench_cluster"
        ).run(batches)

        # Equivalence: the cluster's contracts are byte-identical to
        # serial solving of the same population.
        serial_bytes = _compensation_bytes(
            solve_subproblems(cluster_workload, mu=1.0, config=config)
        )
        designs, _ = router.solve_designs(cluster_workload)
        for subproblem, design in zip(cluster_workload, designs):
            assert (
                pickle.dumps(design.contract.compensations)
                == serial_bytes[subproblem.subject_id]
            )

    assert single.errors == 0, single.error_samples
    assert cluster.errors == 0, cluster.error_samples
    assert single.requests == cluster.requests == _CLUSTER_REQUESTS

    speedup = cluster.throughput_rps / single.throughput_rps
    assert speedup >= 2.0, (
        f"4-shard cluster {cluster.throughput_rps:.0f} req/s is only "
        f"{speedup:.2f}x the single process "
        f"{single.throughput_rps:.0f} req/s; gate is 2.0x"
    )
    # Sanity on the obs-derived quantiles the artifact reports.
    assert 0.0 < cluster.p50_s <= cluster.p99_s

    artifact = {
        "subjects": _CLUSTER_SUBJECTS,
        "archetypes": _CLUSTER_ARCHETYPES,
        "shard_cache_capacity": _SHARD_CACHE,
        "requests": _CLUSTER_REQUESTS,
        "batch_size": _CLUSTER_BATCH,
        "n_intervals": _CLUSTER_INTERVALS,
        "single_process": single.snapshot(),
        "cluster_4_shards": cluster.snapshot(),
        "speedup": speedup,
        "gates": {"throughput": 2.0},
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", "BENCH_cluster.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
    bench_history(
        "cluster",
        {
            "speedup": speedup,
            "throughput_rps": cluster.throughput_rps,
            "p50_s": cluster.p50_s,
            "p99_s": cluster.p99_s,
        },
        directions={
            "speedup": "higher",
            "throughput_rps": "higher",
            "p50_s": "lower",
            "p99_s": "lower",
        },
    )
