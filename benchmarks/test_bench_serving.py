"""Benchmarks and throughput gates for the contract-serving engine.

The serving layer's pitch is quantitative, so the acceptance thresholds
are asserted, not just reported, on a >= 200-worker synthetic population
with realistic archetype clustering:

* pooled (dedup + cache) serving sustains >= 2x the serial designs/s
  over a multi-round run,
* the warm-cache hit rate is >= 90%,
* serial, pooled and cached paths produce byte-identical contracts.

The population solves every archetype fresh on the serial path each
round (a requester without the serving layer re-runs the full design
pass per round), while the serving path amortizes: round one pays for
one solve per unique fingerprint, later rounds are cache lookups.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core import solve_subproblems
from repro.serving import ContractCache, ServingStats, SolverPool
from repro.serving.workload import synthetic_subproblems

_N_SUBJECTS = 240
_N_ARCHETYPES = 24
_N_ROUNDS = 3
_SEED = 11


@pytest.fixture(scope="module")
def serving_workload():
    return synthetic_subproblems(
        n_subjects=_N_SUBJECTS, n_archetypes=_N_ARCHETYPES, seed=_SEED
    )


def _compensation_bytes(solutions):
    return {
        subject_id: pickle.dumps(solution.result.contract.compensations)
        for subject_id, solution in solutions.items()
    }


def test_bench_serving_serial_round(benchmark, serving_workload):
    """Time one full serial design pass over the population."""
    solutions = benchmark(solve_subproblems, serving_workload, 1.0)
    assert len(solutions) == _N_SUBJECTS


def test_bench_serving_pooled_cold(benchmark, serving_workload):
    """Time one deduped (cold-cache) serving pass."""

    def solve_cold():
        with SolverPool(n_workers=0) as pool:
            return pool.solve(serving_workload)

    solutions = benchmark(solve_cold)
    assert len(solutions) == _N_SUBJECTS


def test_bench_serving_cached_warm(benchmark, serving_workload):
    """Time one warm-cache serving pass (steady-state marketplace round)."""
    with SolverPool(n_workers=0, cache=ContractCache()) as pool:
        pool.solve(serving_workload)  # prime the cache
        solutions = benchmark(pool.solve, serving_workload)
    assert len(solutions) == _N_SUBJECTS


def test_serving_throughput_hit_rate_and_equivalence(serving_workload):
    """The ISSUE acceptance gates, asserted on one multi-round run."""
    # Serial baseline: a fresh full design pass per round.
    started = time.perf_counter()
    for _ in range(_N_ROUNDS):
        serial_solutions = solve_subproblems(serving_workload, mu=1.0)
    serial_elapsed = time.perf_counter() - started
    serial_throughput = _N_ROUNDS * _N_SUBJECTS / serial_elapsed

    # Serving path: same rounds through the pool with dedup + cache.
    stats = ServingStats()
    cache = ContractCache()
    with SolverPool(n_workers=0, cache=cache, stats=stats) as pool:
        started = time.perf_counter()
        for round_index in range(_N_ROUNDS):
            pooled_solutions, diagnostics = pool.solve_with_diagnostics(
                serving_workload
            )
            if round_index == 0:
                cold_solutions = pooled_solutions
        pooled_elapsed = time.perf_counter() - started
    pooled_throughput = _N_ROUNDS * _N_SUBJECTS / pooled_elapsed

    # Gate 1: >= 2x serial throughput over the run.
    assert pooled_throughput >= 2.0 * serial_throughput, (
        f"pooled {pooled_throughput:.0f} designs/s < 2x serial "
        f"{serial_throughput:.0f} designs/s"
    )

    # Gate 2: warm rounds answer >= 90% of unique lookups from the cache.
    warm_hits = sum(1 for d in diagnostics.values() if d.cache_hit)
    assert warm_hits / _N_SUBJECTS >= 0.9
    assert stats.hit_rate >= (_N_ROUNDS - 1) / _N_ROUNDS - 1e-9

    # Gate 3: serial, cold-pooled and warm-cached contracts are
    # byte-identical.
    serial_bytes = _compensation_bytes(serial_solutions)
    assert _compensation_bytes(cold_solutions) == serial_bytes
    assert _compensation_bytes(pooled_solutions) == serial_bytes


def test_serving_process_pool_equivalence(serving_workload):
    """The multi-process path returns the same bytes as the serial path.

    Kept separate from the throughput gate: on single-core CI runners
    process fan-out adds pickling overhead without adding cores, so the
    speedup gate is carried by dedup + cache (the archetype structure),
    not by raw process parallelism.
    """
    subset = serving_workload[:60]
    serial_bytes = _compensation_bytes(solve_subproblems(subset, mu=1.0))
    with SolverPool(n_workers=2) as pool:
        pooled_bytes = _compensation_bytes(pool.solve(subset))
    assert pooled_bytes == serial_bytes
