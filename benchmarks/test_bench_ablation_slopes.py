"""Ablation: Eq. (39) minimal-slope recursion vs naive mid-window slopes.

The paper builds each Case III slope just above the *constraint floor*
of Eq. (38) — the smallest slope keeping the worker's per-piece optimal
utility increasing toward the target — while the obvious alternative
places each slope mid-window.  Neither choice dominates pointwise (the
Eq. 38 floor depends on the previous slope and can sit above the window
midpoint), so this ablation reports both and asserts what does hold:

* both constructions are valid (monotone, worker lands on target);
* the recursion satisfies Eq. (38) with exactly its designed epsilon
  slack, i.e. it is the *minimal* choice for its own constraint;
* the resulting requester utilities agree to within 2% — the selection
  step, not the slope placement, carries the algorithm's value.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Contract,
    ContractDesigner,
    DesignerConfig,
    build_candidate,
    case_thresholds,
    solve_best_response,
)
from repro.core.utility import per_worker_utility
from repro.types import WorkerParameters


def _naive_slopes(psi, grid, params, target):
    """Mid-window Case III slopes up to ``target``, flat beyond."""
    slopes = []
    for piece in range(1, grid.n_intervals + 1):
        if piece <= target:
            window = case_thresholds(psi, grid, piece, params.beta, params.omega)
            slopes.append(max(0.5 * (window.lower + window.upper), 0.0))
        else:
            slopes.append(0.0)
    return slopes


def _naive_design(psi, grid, params, mu, feedback_weight):
    """Full naive designer: mid-window candidates + the same selection."""
    best_utility, best = None, None
    for target in range(1, grid.n_intervals + 1):
        contract = Contract.from_feedback_slopes(
            grid, psi, _naive_slopes(psi, grid, params, target)
        )
        response = solve_best_response(contract, params)
        utility = per_worker_utility(
            feedback_weight, response.feedback, response.compensation, mu
        )
        if best_utility is None or utility > best_utility:
            best_utility, best = utility, (contract, response)
    return best_utility, best


def test_bench_ablation_recursion_slopes(benchmark, psi, grid, honest_params):
    """Time the paper's designer; verify the Eq. (38) floor property."""
    config = DesignerConfig(n_intervals=grid.n_intervals, delta=grid.delta)

    def paper_design():
        return ContractDesigner(mu=1.0, config=config).design(
            psi, honest_params, feedback_weight=1.0
        )

    result = benchmark(paper_design)
    assert result.hired
    # Minimality against its own constraint: each slope equals the
    # Eq. (38) floor plus exactly the designed epsilon (Eq. 40).
    target = grid.n_intervals // 2
    candidate = build_candidate(psi, grid, honest_params, target)
    beta, omega = honest_params.beta, honest_params.omega
    previous_gain = beta / psi.derivative(0.0)
    for piece in range(1, target + 1):
        slope_left = psi.derivative((piece - 1) * grid.delta)
        floor = beta * beta / (previous_gain * slope_left * slope_left) - omega
        slope = candidate.slopes[piece - 1]
        epsilon = candidate.epsilons[piece - 1]
        assert slope == pytest.approx(floor + epsilon, rel=1e-9)
        previous_gain = slope + omega
    benchmark.extra_info["requester_utility"] = result.requester_utility
    benchmark.extra_info["compensation"] = result.compensation


def test_bench_ablation_naive_slopes(benchmark, psi, grid, honest_params):
    """Time the naive mid-window designer; utilities nearly tie."""
    naive_utility, (naive_contract, naive_response) = benchmark(
        _naive_design, psi, grid, honest_params, 1.0, 1.0
    )
    paper = ContractDesigner(
        mu=1.0,
        config=DesignerConfig(n_intervals=grid.n_intervals, delta=grid.delta),
    ).design(psi, honest_params, feedback_weight=1.0)
    assert naive_utility > 0.0
    assert naive_contract.as_feedback_function().is_monotone_nondecreasing()
    # Neither heuristic dominates; they land within 2% of each other.
    assert abs(paper.requester_utility - naive_utility) <= 0.02 * abs(naive_utility)
    benchmark.extra_info["requester_utility"] = naive_utility
    benchmark.extra_info["compensation"] = naive_response.compensation
