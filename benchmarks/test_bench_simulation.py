"""Benchmarks and speedup gate for the vectorized round engine.

The fast round kernel's pitch is quantitative, so the threshold is
asserted, not just reported: a 1,000-subject, 200-round, re-design-
every-round simulation must run >= 5x faster through ``fast_step`` +
delta-aware redesign than through the legacy per-subject loop with full
re-solves — *and* the two ledgers must be bit-identical
(``require_ledgers_agree`` uses exact equality; a speedup can never be
bought with a wrong answer).  Measured headroom is well over an order
of magnitude; the gate is deliberately conservative for CI runners.

The gate test writes a ``BENCH_simulation.json`` artifact (path
overridable via ``REPRO_BENCH_OUT``) so CI runs leave a machine-readable
record (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.utility import RequesterObjective
from repro.simulation import (
    DynamicContractPolicy,
    MarketplaceSimulation,
    require_ledgers_agree,
)
from repro.workers import synthetic_population

_GATE_SPEEDUP = 5.0
_N_SUBJECTS = 1000
_N_ARCHETYPES = 16
_N_ROUNDS = 200
_SEED = 0
_FEEDBACK_NOISE = 0.3


def _build(fast: bool, n_subjects: int = _N_SUBJECTS,
           lagged: bool = False) -> MarketplaceSimulation:
    population = synthetic_population(
        n_subjects,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    return MarketplaceSimulation(
        population,
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=fast),
        seed=_SEED,
        redesign_every=1,
        lagged_payment=lagged,
        fast_rounds=fast,
    )


def test_bench_fast_rounds(benchmark):
    """Time the fast engine on a mid-sized slice of the gate workload."""
    def run():
        return _build(True, n_subjects=300).run(30)

    ledger = benchmark(run)
    assert ledger.n_rounds == 30
    assert all(record.n_dirty == 0 for record in ledger.records[1:])


def test_bench_legacy_rounds(benchmark):
    """Time the legacy engine on the same slice, for the ratio record."""
    def run():
        return _build(False, n_subjects=300).run(30)

    ledger = benchmark(run)
    assert ledger.n_rounds == 30


def test_simulation_speedup_gate(bench_history):
    """The ISSUE acceptance gate, asserted on one measured run each."""
    started = time.perf_counter()
    fast_ledger = _build(True).run(_N_ROUNDS)
    fast_seconds = time.perf_counter() - started

    started = time.perf_counter()
    legacy_ledger = _build(False).run(_N_ROUNDS)
    legacy_seconds = time.perf_counter() - started

    # Equivalence first: bit-identical ledgers, fast vs legacy.
    require_ledgers_agree(fast_ledger, legacy_ledger)
    # Delta redesign over the static population: zero re-solves after
    # round 0, full reuse every redesign round.
    assert fast_ledger.records[0].n_dirty == _N_SUBJECTS
    for record in fast_ledger.records[1:]:
        assert record.n_dirty == 0
        assert record.reuse_rate == 1.0

    speedup = legacy_seconds / fast_seconds
    assert speedup >= _GATE_SPEEDUP, (
        f"fast round engine only {speedup:.1f}x faster than legacy at "
        f"{_N_SUBJECTS} subjects x {_N_ROUNDS} rounds; gate is "
        f"{_GATE_SPEEDUP}x"
    )

    artifact = {
        "n_subjects": _N_SUBJECTS,
        "n_archetypes": _N_ARCHETYPES,
        "n_rounds": _N_ROUNDS,
        "redesign_every": 1,
        "fast_seconds": fast_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": speedup,
        "mean_reuse_rate": fast_ledger.mean_reuse_rate(),
        "gates": {"simulation": _GATE_SPEEDUP},
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", "BENCH_simulation.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
    bench_history(
        "simulation",
        {
            "speedup": speedup,
            "mean_reuse_rate": fast_ledger.mean_reuse_rate(),
        },
        directions={"speedup": "higher", "mean_reuse_rate": "higher"},
    )


def test_lagged_payment_ledgers_bit_identical():
    """Eq. (1) timing included: seeded lagged runs agree bit for bit."""
    fast = _build(True, n_subjects=300, lagged=True).run(40)
    legacy = _build(False, n_subjects=300, lagged=True).run(40)
    require_ledgers_agree(fast, legacy)


def test_fast_engine_in_check_mode(monkeypatch):
    """Every fast round self-verifies under REPRO_CHECK_INVARIANTS=1."""
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    ledger = _build(True, n_subjects=200, lagged=True).run(10)
    assert ledger.n_rounds == 10
    assert all(record.n_dirty == 0 for record in ledger.records[1:])
