"""Ablation: the designer vs brute-force oracles (near-optimality cost).

Times the algorithm against (a) the exhaustive lattice search on a tiny
instance and (b) the continuous-relaxation scan, quantifying how much
utility the O(m^2) construction gives up for its speed.
"""

from __future__ import annotations

import pytest

from repro.baselines import continuum_optimal_utility, grid_search_contract
from repro.core import ContractDesigner, DesignerConfig
from repro.types import DiscretizationGrid


@pytest.fixture(scope="module")
def tiny_grid(psi):
    return DiscretizationGrid.for_max_effort(0.9 * psi.max_increasing_effort, 4)


def test_bench_oracle_grid_search(benchmark, psi, tiny_grid, honest_params):
    """Time the exponential lattice oracle (m=4, 10 pay levels)."""
    result = benchmark(
        grid_search_contract,
        psi,
        tiny_grid,
        honest_params,
        1.0,
        1.0,
        10,
    )
    assert result.requester_utility > 0.0


def test_bench_designer_vs_grid_oracle(benchmark, psi, tiny_grid, honest_params):
    """Time the designer at the same resolution; compare utilities."""
    config = DesignerConfig(n_intervals=4, delta=tiny_grid.delta)

    def design():
        return ContractDesigner(mu=1.0, config=config).design(
            psi, honest_params, feedback_weight=1.0
        )

    ours = benchmark(design)
    oracle = grid_search_contract(psi, tiny_grid, honest_params, 1.0, 1.0, 10)
    # Near-optimality: within 30% of the unconstrained lattice optimum
    # even at this very coarse resolution (the gap closes as m grows;
    # see tests/core/test_designer.py::TestNearOptimality).
    assert ours.requester_utility >= 0.7 * oracle.requester_utility


def test_bench_continuum_oracle(benchmark, psi, honest_params):
    """Time the dense continuum scan used as the convergence target."""
    utility, effort = benchmark(
        continuum_optimal_utility,
        psi,
        honest_params,
        1.0,
        1.0,
        0.95 * psi.max_increasing_effort,
    )
    assert utility > 0.0
    assert effort > 0.0
