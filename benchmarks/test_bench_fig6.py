"""Bench: Fig. 6 — utility-vs-resolution sweep with Theorem 4.1 bounds."""

from __future__ import annotations

import pytest

from repro.core import ContractDesigner, DesignerConfig
from repro.experiments import fig6_bounds
from repro.experiments.fig6_bounds import FIG6_EFFORT_FUNCTION
from repro.types import WorkerParameters


def test_bench_fig6_experiment(benchmark, context):
    """Time the full Fig. 6 sweep (m = 2..40)."""
    result = benchmark(fig6_bounds.run, context)
    assert result.all_checks_pass, result.format()


@pytest.mark.parametrize("n_intervals", [10, 20, 40])
def test_bench_fig6_single_design(benchmark, n_intervals):
    """Time one contract design at the paper's mu = 10 setting.

    A fresh designer per round keeps the candidate cache cold, so the
    timing reflects the O(m^2) candidate sweep itself.
    """
    params = WorkerParameters.honest(beta=1.0)

    def design():
        designer = ContractDesigner(
            mu=10.0, config=DesignerConfig(n_intervals=n_intervals)
        )
        return designer.design(FIG6_EFFORT_FUNCTION, params, feedback_weight=1.0)

    result = benchmark(design)
    assert result.hired
    assert result.bounds.is_consistent
