"""Benchmarks and gates for the columnar (structure-of-arrays) engine.

Two quantitative claims back the columnar path, and both are asserted:

* **Speed** — at 100k subjects, stepping a ``ColumnarPopulation``
  through ``fast_columnar_step`` into a ``StreamingLedger`` must be
  >= 3x faster than the object fast path on the identical workload,
  while the streamed utility series stays bit-identical to the eager
  ledger's.  Measured headroom is ~35x; the gate is deliberately
  conservative for CI runners.
* **Memory** — a 1M-subject, multi-round run (a 10x scale model of the
  10M-subject target) must stay under a hard RSS ceiling, checked in a
  subprocess via ``getrusage``.  The object path allocates per-subject
  agents, subproblems, and outcome dataclasses and blows through the
  same ceiling well before 1M subjects; the columnar path holds eight
  float64 columns plus running aggregates.

The gate test writes a ``BENCH_columnar.json`` artifact (path
overridable via ``REPRO_BENCH_OUT``) so CI runs leave a
machine-readable record (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.utility import RequesterObjective
from repro.simulation import (
    DynamicContractPolicy,
    MarketplaceSimulation,
    StreamingLedger,
)
from repro.workers import synthetic_population
from repro.workers.columnar import synthetic_columnar

_GATE_SPEEDUP = 3.0
_N_SUBJECTS = 100_000
_N_ARCHETYPES = 16
_N_ROUNDS = 3
_SEED = 0
_FEEDBACK_NOISE = 0.3
_MILLION = 1_000_000
_RSS_CEILING_MB = 1024.0


def _columnar_simulation(n_subjects: int, ledger: StreamingLedger):
    population = synthetic_columnar(
        n_subjects,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    return MarketplaceSimulation(
        population,
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=True),
        seed=_SEED,
        fast_rounds=True,
        ledger=ledger,
    )


def _object_simulation(n_subjects: int):
    population = synthetic_population(
        n_subjects,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    return MarketplaceSimulation(
        population,
        RequesterObjective(),
        DynamicContractPolicy(mu=1.0, delta=True),
        seed=_SEED,
        fast_rounds=True,
    )


def test_bench_columnar_rounds(benchmark):
    """Time the columnar engine on a mid-sized slice of the gate load."""

    def run():
        ledger = StreamingLedger()
        _columnar_simulation(20_000, ledger).run(_N_ROUNDS)
        return ledger

    ledger = benchmark(run)
    assert ledger.n_rounds == _N_ROUNDS


def test_columnar_speedup_gate(bench_history):
    """The ISSUE acceptance gate: >= 3x at 100k subjects, bit-identical.

    Construction stays outside the timed region on both sides — the
    claim under test is round stepping, and building 100k worker
    objects would otherwise dominate the object side's clock.
    """
    streaming = StreamingLedger()
    columnar_sim = _columnar_simulation(_N_SUBJECTS, streaming)
    started = time.perf_counter()
    columnar_sim.run(_N_ROUNDS)
    columnar_seconds = time.perf_counter() - started

    object_sim = _object_simulation(_N_SUBJECTS)
    started = time.perf_counter()
    eager = object_sim.run(_N_ROUNDS)
    object_seconds = time.perf_counter() - started

    # Equivalence first: a speedup can never be bought with a wrong
    # answer.  The streamed reductions are bit-identical to the eager
    # ledger's (same seed, same pinned draw order, same cumsum bits).
    assert np.array_equal(streaming.utility_series(), eager.utility_series())
    assert streaming.total_utility() == eager.total_utility()
    assert streaming.n_rounds == eager.n_rounds == _N_ROUNDS

    speedup = object_seconds / columnar_seconds
    assert speedup >= _GATE_SPEEDUP, (
        f"columnar engine only {speedup:.1f}x faster than the object "
        f"fast path at {_N_SUBJECTS} subjects x {_N_ROUNDS} rounds; "
        f"gate is {_GATE_SPEEDUP}x"
    )

    rss_mb = _million_subject_rss_mb()
    assert rss_mb <= _RSS_CEILING_MB, (
        f"1M-subject columnar run peaked at {rss_mb:.0f} MB RSS; "
        f"ceiling is {_RSS_CEILING_MB:.0f} MB"
    )

    artifact = {
        "n_subjects": _N_SUBJECTS,
        "n_archetypes": _N_ARCHETYPES,
        "n_rounds": _N_ROUNDS,
        "columnar_seconds": columnar_seconds,
        "object_seconds": object_seconds,
        "speedup": speedup,
        "million_subject_rss_mb": rss_mb,
        "gates": {
            "columnar_speedup": _GATE_SPEEDUP,
            "rss_ceiling_mb": _RSS_CEILING_MB,
        },
    }
    out_path = os.environ.get("REPRO_BENCH_OUT", "BENCH_columnar.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
    bench_history(
        "columnar",
        {"speedup": speedup, "million_subject_rss_mb": rss_mb},
        directions={
            "speedup": "higher",
            "million_subject_rss_mb": "lower",
        },
    )


_RSS_SCRIPT = """
import resource
from repro.core.utility import RequesterObjective
from repro.simulation import (
    DynamicContractPolicy, MarketplaceSimulation, StreamingLedger,
)
from repro.workers.columnar import synthetic_columnar

population = synthetic_columnar(
    {n_subjects}, n_archetypes={n_archetypes}, seed={seed},
    feedback_noise={feedback_noise},
)
ledger = StreamingLedger()
MarketplaceSimulation(
    population,
    RequesterObjective(),
    DynamicContractPolicy(mu=1.0, delta=True),
    seed={seed},
    fast_rounds=True,
    ledger=ledger,
).run(2)
assert ledger.n_rounds == 2
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _million_subject_rss_mb() -> float:
    """Peak RSS (MB) of a 1M-subject, 2-round run in a fresh process.

    A subprocess keeps the measurement honest: ``ru_maxrss`` is a
    process-lifetime high-water mark, so measuring in the test process
    would report whatever earlier tests peaked at.
    """
    script = _RSS_SCRIPT.format(
        n_subjects=_MILLION,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    completed = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    ru_maxrss_kb = float(completed.stdout.strip().splitlines()[-1])
    return ru_maxrss_kb / 1024.0
