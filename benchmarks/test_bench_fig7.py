"""Bench: Fig. 7 — per-class effort/feedback aggregation."""

from __future__ import annotations

from repro.experiments import fig7_worker_types
from repro.types import WorkerType


def test_bench_fig7_experiment(benchmark, context):
    """Time the Fig. 7 driver (trace-wide per-class aggregation)."""
    result = benchmark(fig7_worker_types.run, context)
    assert result.all_checks_pass, result.format()


def test_bench_fig7_class_aggregates(benchmark, context):
    """Time the underlying aggregation primitive on its own."""
    aggregates = benchmark(context.trace.class_aggregates)
    assert aggregates[WorkerType.COLLUSIVE_MALICIOUS]["mean_feedback"] > (
        aggregates[WorkerType.HONEST]["mean_feedback"]
    )
