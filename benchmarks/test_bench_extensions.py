"""Benches for the extension experiments (adaptive, camouflage, labeling)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_adaptive, ext_camouflage, ext_labeling


def test_bench_ext_adaptive(benchmark, context):
    """Time the adaptive-vs-offline convergence experiment."""
    def run():
        result = ext_adaptive.run(context)
        context.invalidate_populations()
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.all_checks_pass, result.format()


def test_bench_ext_camouflage(benchmark, context):
    """Time the camouflaged-attacker experiment."""
    def run():
        result = ext_camouflage.run(context)
        context.invalidate_populations()
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.all_checks_pass, result.format()


def test_bench_ext_labeling(benchmark, context):
    """Time the classification-extension experiment."""
    result = benchmark.pedantic(
        lambda: ext_labeling.run(context), rounds=2, iterations=1
    )
    assert result.all_checks_pass, result.format()


def test_bench_ext_retention(benchmark, context):
    """Time the retention experiment (three policies x 10 rounds)."""
    from repro.experiments import ext_retention

    def run():
        result = ext_retention.run(context)
        context.invalidate_populations()
        return result

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.all_checks_pass, result.format()
