"""Shared fixtures for the benchmark harness.

Benchmarks run the same experiment drivers as the tests, at the small
(structurally identical) scale so a full ``pytest benchmarks/
--benchmark-only`` sweep stays in CI-friendly territory; the trace
generator itself is additionally benchmarked at full paper scale.
"""

from __future__ import annotations

import pytest

from repro.core import QuadraticEffort
from repro.core.utility import RequesterObjective
from repro.experiments import ExperimentConfig, build_context
from repro.types import DiscretizationGrid, RequesterParameters, WorkerParameters


@pytest.fixture(scope="session")
def context():
    """The small-scale experiment context shared by all benchmarks."""
    return build_context(ExperimentConfig.small(seed=11))


@pytest.fixture(scope="session")
def psi() -> QuadraticEffort:
    return QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)


@pytest.fixture(scope="session")
def grid(psi) -> DiscretizationGrid:
    return DiscretizationGrid.for_max_effort(0.95 * psi.max_increasing_effort, 20)


@pytest.fixture(scope="session")
def honest_params() -> WorkerParameters:
    return WorkerParameters.honest(beta=1.0)


@pytest.fixture(scope="session")
def objective() -> RequesterObjective:
    return RequesterObjective(RequesterParameters(mu=1.0))
