"""Shared fixtures for the benchmark harness.

Benchmarks run the same experiment drivers as the tests, at the small
(structurally identical) scale so a full ``pytest benchmarks/
--benchmark-only`` sweep stays in CI-friendly territory; the trace
generator itself is additionally benchmarked at full paper scale.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Callable, Dict, Mapping, Optional

import pytest

from repro.core import QuadraticEffort
from repro.core.utility import RequesterObjective
from repro.experiments import ExperimentConfig, build_context
from repro.obs.bench_history import HISTORY_ENV, BenchRecord, append_history
from repro.types import DiscretizationGrid, RequesterParameters, WorkerParameters

#: The signature gate tests use to log their headline numbers.
HistoryRecorder = Callable[..., None]


@pytest.fixture(scope="session")
def bench_history() -> HistoryRecorder:
    """A recorder appending gate results to the benchmark trajectory.

    Gates call ``bench_history(gate, metrics, directions=...)`` after
    their assertions pass; each call appends one schema-validated
    record to the file named by ``REPRO_BENCH_HISTORY``.  With the
    variable unset (local runs) the recorder is a no-op, so gates can
    log unconditionally.
    """

    def record(
        gate: str,
        metrics: Mapping[str, float],
        directions: Optional[Mapping[str, str]] = None,
        meta: Optional[Mapping[str, str]] = None,
    ) -> None:
        path = os.environ.get(HISTORY_ENV)
        if not path:
            return
        annotations: Dict[str, str] = {"python": platform.python_version()}
        sha = os.environ.get("GITHUB_SHA")
        if sha:
            annotations["sha"] = sha
        annotations.update(dict(meta or {}))
        append_history(
            path,
            BenchRecord(
                gate=gate,
                metrics={k: float(v) for k, v in metrics.items()},
                recorded_unix=time.time(),
                directions=dict(directions or {}),
                meta=annotations,
            ),
        )

    return record


@pytest.fixture(scope="session")
def context():
    """The small-scale experiment context shared by all benchmarks."""
    return build_context(ExperimentConfig.small(seed=11))


@pytest.fixture(scope="session")
def psi() -> QuadraticEffort:
    return QuadraticEffort(r2=-0.5, r1=10.0, r0=1.0)


@pytest.fixture(scope="session")
def grid(psi) -> DiscretizationGrid:
    return DiscretizationGrid.for_max_effort(0.95 * psi.max_increasing_effort, 20)


@pytest.fixture(scope="session")
def honest_params() -> WorkerParameters:
    return WorkerParameters.honest(beta=1.0)


@pytest.fixture(scope="session")
def objective() -> RequesterObjective:
    return RequesterObjective(RequesterParameters(mu=1.0))
