"""Bench: population assembly (fits + weights + subproblems)."""

from __future__ import annotations

import pytest

from repro.core.utility import RequesterObjective
from repro.types import RequesterParameters, WorkerType
from repro.workers import build_population


def _build(context, **kwargs):
    return build_population(
        trace=context.trace,
        clusters=context.clusters,
        proxy=context.proxy,
        malice_estimates=context.malice,
        objective=RequesterObjective(RequesterParameters(mu=1.0)),
        **kwargs,
    )


def test_bench_population_class_fits(benchmark, context):
    """Time assembly with class-level effort functions (the default)."""
    population = benchmark(_build, context)
    assert len(population.subproblems) > 0


def test_bench_population_per_worker_fits(benchmark, context):
    """Time assembly with Fig. 8a-style per-worker fits enabled."""
    population = benchmark(_build, context, per_worker_fits=True)
    class_fit = population.class_functions.honest.coefficients()
    individual = sum(
        1
        for worker_id in population.subjects_of_type(WorkerType.HONEST)
        if population.subproblem_of(worker_id).effort_function.coefficients()
        != class_fit
    )
    assert individual > 0
