"""Ablation: the Eq. (5) penalty terms (kappa, gamma).

Fig. 8b's compensation ordering (honest > NC-Mal > C-Mal) is driven by
the weight penalties ``kappa * e_mal`` and ``gamma * A_i``.  This
ablation re-runs the decomposed design with the penalties disabled and
verifies they are load-bearing for the collusive discount specifically:
without ``gamma``, communities keep their weight advantage from boosted
feedback and the ordering weakens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposition import solve_subproblems
from repro.core.utility import RequesterObjective
from repro.types import FeedbackWeightParameters, RequesterParameters, WorkerType
from repro.workers import build_population


def _mean_pay_by_type(population, solutions):
    means = {}
    for worker_type in WorkerType:
        subject_ids = population.subjects_of_type(worker_type)
        means[worker_type] = float(
            np.mean([solutions[s].per_member_compensation for s in subject_ids])
        )
    return means


def _population_with(context, weight_params):
    objective = RequesterObjective(
        RequesterParameters(mu=1.0, weight_params=weight_params)
    )
    from repro.workers import build_population as build

    population = build(
        trace=context.trace,
        clusters=context.clusters,
        proxy=context.proxy,
        malice_estimates=context.malice,
        objective=objective,
    )
    return population


def test_bench_ablation_paper_penalties(benchmark, context):
    """Time the design with the paper's kappa = gamma = 0.1."""
    population = _population_with(
        context,
        FeedbackWeightParameters(rho=1.0, kappa=0.1, gamma=0.1, min_deviation=0.1),
    )

    solutions = benchmark(solve_subproblems, population.subproblems, 1.0)
    means = _mean_pay_by_type(population, solutions)
    assert (
        means[WorkerType.HONEST]
        > means[WorkerType.NONCOLLUSIVE_MALICIOUS]
        > means[WorkerType.COLLUSIVE_MALICIOUS]
    )
    benchmark.extra_info["cm_per_member_pay"] = means[
        WorkerType.COLLUSIVE_MALICIOUS
    ]


def test_bench_ablation_no_penalties(benchmark, context):
    """Time the design with kappa = gamma = 0; verify the penalties are
    what pushes collusive pay down."""
    with_penalties = _population_with(
        context,
        FeedbackWeightParameters(rho=1.0, kappa=0.1, gamma=0.1, min_deviation=0.1),
    )
    without = _population_with(
        context,
        FeedbackWeightParameters(rho=1.0, kappa=0.0, gamma=0.0, min_deviation=0.1),
    )

    solutions_without = benchmark(solve_subproblems, without.subproblems, 1.0)
    solutions_with = solve_subproblems(with_penalties.subproblems, mu=1.0)

    means_with = _mean_pay_by_type(with_penalties, solutions_with)
    means_without = _mean_pay_by_type(without, solutions_without)
    # Removing the penalties raises what collusive communities earn.
    assert (
        means_without[WorkerType.COLLUSIVE_MALICIOUS]
        >= means_with[WorkerType.COLLUSIVE_MALICIOUS]
    )
    # Honest pay is essentially unaffected (their e_mal is small and
    # they have no partners).
    assert means_without[WorkerType.HONEST] == pytest.approx(
        means_with[WorkerType.HONEST], rel=0.05
    )
    benchmark.extra_info["cm_pay_without_penalties"] = means_without[
        WorkerType.COLLUSIVE_MALICIOUS
    ]
    benchmark.extra_info["cm_pay_with_penalties"] = means_with[
        WorkerType.COLLUSIVE_MALICIOUS
    ]
