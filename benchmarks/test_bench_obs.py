"""Observability overhead gates.

The tracer's contract is that *disabled* instrumentation is free enough
to leave compiled into the hot path permanently.  A naive A/B wall-clock
comparison of a full solve with tracing on vs off is too noisy to gate
on (the solve itself varies by more than the overhead), so the gate is
deterministic instead: measure the per-call cost of the disabled span
machinery directly, project it onto the span count an instrumented
solve actually emits, and require the projection to stay under 3% of
the measured solve time.
"""

from __future__ import annotations

import timeit

import pytest

from repro.core import ContractDesigner, DesignerConfig
from repro.obs.trace import Tracer

OVERHEAD_BUDGET = 0.03
_CALLS = 50_000


def _disabled_span_cost_s() -> float:
    """Mean seconds per disabled instrumentation site.

    Every span site on the per-solve hot path (``core.design``,
    ``core.candidate_sweep``, ``core.candidate_build``, ``core.select``)
    guards with ``get_tracer().enabled`` before touching the span
    machinery, so the disabled cost per site is one global lookup plus
    one attribute branch — exactly what this probe measures.
    """
    from repro.obs.trace import get_tracer, set_tracer

    previous = set_tracer(Tracer(enabled=False))

    def probe() -> None:
        tracer = get_tracer()
        if tracer.enabled:  # pragma: no cover - tracer is disabled
            raise AssertionError

    try:
        # Best of several repeats: the *capability* cost, insulated
        # from scheduler noise inflating a single run.
        best = min(timeit.repeat(probe, number=_CALLS, repeat=5))
    finally:
        set_tracer(previous)
    return best / _CALLS


def _spans_per_solve(psi, honest_params) -> int:
    """How many spans one designer solve emits when tracing is on."""
    tracer = Tracer(enabled=True)
    from repro.obs.trace import set_tracer

    previous = set_tracer(tracer)
    try:
        designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=20))
        designer.design(psi, honest_params, feedback_weight=1.0)
    finally:
        set_tracer(previous)
    return len(tracer.spans())


def _solve_time_s(psi, honest_params) -> float:
    """Seconds per untraced designer solve (global tracer disabled)."""
    designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=20))

    def solve() -> None:
        designer.design(psi, honest_params, feedback_weight=1.0)

    best = min(timeit.repeat(solve, number=20, repeat=3))
    return best / 20


def test_disabled_overhead_under_budget(psi, honest_params, bench_history):
    """Projected disabled-tracing cost of a solve stays under 3%."""
    per_span = _disabled_span_cost_s()
    n_spans = _spans_per_solve(psi, honest_params)
    solve = _solve_time_s(psi, honest_params)
    assert n_spans > 0
    projected = per_span * n_spans
    ratio = projected / solve
    assert ratio < OVERHEAD_BUDGET, (
        f"disabled tracing projects to {ratio:.2%} of a solve "
        f"({per_span * 1e9:.0f} ns/span x {n_spans} spans vs "
        f"{solve * 1e3:.2f} ms solve); budget is {OVERHEAD_BUDGET:.0%}"
    )
    bench_history(
        "obs_overhead",
        {"overhead_ratio": ratio, "ns_per_span": per_span * 1e9},
        directions={"overhead_ratio": "lower", "ns_per_span": "lower"},
    )


def test_bench_disabled_span_entry(benchmark):
    """Raw cost of the disabled span path (nanoseconds per call)."""
    tracer = Tracer(enabled=False)

    def enter_exit() -> None:
        with tracer.span("bench", K=20):
            pass

    benchmark(enter_exit)


def test_bench_enabled_span_entry(benchmark):
    """Raw cost of an enabled span (bounded buffer, no CPU sampling)."""
    tracer = Tracer(enabled=True, max_spans=1024)
    tracer.profile_cpu = False

    def enter_exit() -> None:
        with tracer.span("bench", K=20):
            pass

    benchmark(enter_exit)


def test_bench_traced_solve(benchmark, psi, honest_params):
    """A full designer solve with tracing enabled (for the curious)."""
    from repro.obs.trace import set_tracer

    tracer = Tracer(enabled=True, max_spans=4096)
    tracer.profile_cpu = False
    previous = set_tracer(tracer)
    designer = ContractDesigner(mu=1.0, config=DesignerConfig(n_intervals=20))
    try:
        benchmark(
            lambda: designer.design(psi, honest_params, feedback_weight=1.0)
        )
    finally:
        set_tracer(previous)
