"""Ablation: community meta-contract vs per-member individual contracts.

The paper designs one contract per collusive community (the meta-worker
view).  The ablation compares that against naively giving each member an
individual contract fitted on the per-member collusive curve — which
ignores that members coordinate their total effort.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ContractDesigner, DesignerConfig
from repro.core.decomposition import Subproblem, solve_subproblems
from repro.types import WorkerParameters


def _community_inputs(context):
    population = context.population()
    functions = population.class_functions
    communities = [
        population.subproblem_of(subject_id)
        for subject_id in sorted(
            s.subject_id for s in population.subproblems if s.is_community
        )
    ]
    return functions, communities


def test_bench_ablation_meta_contract(benchmark, context):
    """Time designing one meta contract per community (the paper)."""
    functions, communities = _community_inputs(context)

    def design_meta():
        return solve_subproblems(communities, mu=1.0)

    solutions = benchmark(design_meta)
    assert len(solutions) == len(communities)


def test_bench_ablation_per_member_contracts(benchmark, context):
    """Time the naive per-member alternative and compare total pay."""
    functions, communities = _community_inputs(context)
    member_psi = functions.collusive_member

    def design_members():
        problems = []
        for community in communities:
            for member in community.member_ids:
                problems.append(
                    Subproblem(
                        subject_id=f"{community.subject_id}:{member}",
                        effort_function=member_psi,
                        params=WorkerParameters.malicious(
                            beta=community.params.beta,
                            omega=community.params.omega,
                        ),
                        feedback_weight=community.feedback_weight,
                        max_effort=community.max_effort / community.size,
                    )
                )
        return solve_subproblems(problems, mu=1.0)

    per_member = benchmark(design_members)
    meta = solve_subproblems(communities, mu=1.0)

    total_meta_utility = sum(s.result.requester_utility for s in meta.values())
    total_member_utility = sum(
        s.result.requester_utility for s in per_member.values()
    )
    # The meta view cannot lose: it optimizes the coordinated response
    # the members will actually play.
    assert total_meta_utility >= 0.0
    assert np.isfinite(total_member_utility)
