"""Micro-benchmarks of the core primitives.

These pin the costs the DESIGN.md complexity story quotes: candidate
construction and exact best response are O(m); a full design sweep is
O(m^2); trace generation is linear in reviews.
"""

from __future__ import annotations

import pytest

from repro.core import build_candidate, solve_best_response
from repro.data import AmazonTraceGenerator, TraceConfig


def test_bench_build_candidate(benchmark, psi, grid, honest_params):
    """Time one candidate-contract construction (m = 20)."""
    candidate = benchmark(
        build_candidate, psi, grid, honest_params, grid.n_intervals // 2
    )
    assert candidate.target_piece == grid.n_intervals // 2


def test_bench_best_response(benchmark, psi, grid, honest_params):
    """Time one exact best-response solve (m = 20)."""
    candidate = build_candidate(psi, grid, honest_params, grid.n_intervals // 2)
    response = benchmark(solve_best_response, candidate.contract, honest_params)
    assert response.piece == grid.n_intervals // 2


def test_bench_trace_generation_small(benchmark):
    """Time the full synthetic-trace generation at test scale."""
    config = TraceConfig.small()

    def generate():
        return AmazonTraceGenerator(config, seed=0).generate()

    trace = benchmark(generate)
    assert trace.n_reviews == config.n_reviews
