"""Bench: Fig. 8c — dynamic contract vs exclude-all-malicious baseline."""

from __future__ import annotations

from repro.baselines import compare_policies
from repro.experiments import fig8c_baseline
from repro.simulation import DynamicContractPolicy, ExclusionPolicy


def test_bench_fig8c_experiment(benchmark, context):
    """Time the full Fig. 8c driver (two simulated policies)."""
    result = benchmark(fig8c_baseline.run, context)
    assert result.all_checks_pass, result.format()


def test_bench_fig8c_single_round_pair(benchmark, context):
    """Time one aligned dynamic-vs-exclusion round pair."""
    population = context.population(honest_sample=100)
    objective = context.objective()

    def run_pair():
        return compare_policies(
            population,
            objective,
            {
                "dynamic": DynamicContractPolicy(mu=1.0),
                "exclusion": ExclusionPolicy(inner=DynamicContractPolicy(mu=1.0)),
            },
            n_rounds=1,
            seed=0,
        )

    comparison = benchmark(run_pair)
    assert comparison.total("dynamic") >= comparison.total("exclusion")
