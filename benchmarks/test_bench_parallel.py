"""Benchmarks and gates for the sharded parallel round engine.

Two quantitative claims back the parallel tier, and both are asserted:

* **Throughput** — at 1M subjects on 4 workers, sharded
  ``parallel_columnar_step`` rounds must be >= 3x faster than the
  sequential ``fast_columnar_step`` on the identical workload, while
  staying bit-identical (checked by ``require_parallel_steps_agree``
  inside the measurement subprocess).  The gate runs in a fresh
  subprocess so the RSS high-water mark is honest, and skips on
  machines with fewer than 4 cores — shard processes without cores to
  run on measure the scheduler, not the engine.
* **Payload** — the columnar wire frame shipped to cluster shards must
  be >= 5x smaller than the pickled ``Subproblem`` list + fingerprint
  payload it replaces, at the 16-archetype batch shape the round engine
  produces.  This gate is pure serialization and runs everywhere.

Both gates merge their numbers into a ``BENCH_parallel.json`` artifact
(path overridable via ``REPRO_BENCH_OUT``) so CI runs leave one
machine-readable record, and append to the bench-history trajectory.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serving.cluster.codec import columnar_frame, frame_to_json
from repro.serving.fingerprint import subproblem_fingerprint
from repro.serving.workload import synthetic_subproblems
from repro.simulation import DynamicContractPolicy
from repro.simulation.parallel import ParallelRoundEngine, parallel_columnar_step
from repro.workers.columnar import synthetic_columnar

_GATE_SPEEDUP = 3.0
_GATE_PAYLOAD_SHRINK = 5.0
_MIN_CORES = 4
_N_WORKERS = 4
_MILLION = 1_000_000
_N_ARCHETYPES = 16
_N_ROUNDS = 2
_SEED = 0
_FEEDBACK_NOISE = 0.3
_RSS_CEILING_MB = 2048.0
_PAYLOAD_SUBJECTS = 5_000


def _update_artifact(update: dict) -> None:
    """Merge gate metrics into the shared BENCH_parallel.json artifact."""
    out_path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_parallel.json"))
    artifact: dict = {}
    if out_path.is_file():
        try:
            artifact = json.loads(out_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            artifact = {}
    artifact.update(update)
    artifact.setdefault("gates", {}).update(update.get("gates", {}))
    out_path.write_text(json.dumps(artifact, indent=2), encoding="utf-8")


def test_bench_parallel_round(benchmark):
    """Time one sharded round at a mid-size slice (pool built outside)."""
    columnar = synthetic_columnar(
        20_000,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    assignment = DynamicContractPolicy(mu=1.0, delta=False).contracts_columnar(
        columnar
    )
    import numpy as np

    excluded = np.zeros(columnar.n_subjects, dtype=bool)
    previous = np.zeros(columnar.n_subjects)
    rng = np.random.default_rng(_SEED)
    with ParallelRoundEngine(columnar, n_workers=2) as engine:
        result = benchmark(
            lambda: parallel_columnar_step(
                columnar, assignment, excluded, previous, False, rng, engine
            )
        )
    assert result.active.any()


def test_parallel_payload_gate(bench_history):
    """Frame payloads are >= 5x smaller than pickled object batches.

    Measures the actual bytes a shard pipe (pickle) and the HTTP hop
    (JSON) would carry for the same n-subject, K-archetype batch.
    """
    subproblems = synthetic_subproblems(
        n_subjects=_PAYLOAD_SUBJECTS, n_archetypes=_N_ARCHETYPES, seed=_SEED
    )
    fingerprints = [subproblem_fingerprint(s) for s in subproblems]
    frame = columnar_frame(subproblems, fingerprints)

    object_payload = len(pickle.dumps((list(subproblems), fingerprints)))
    frame_payload = len(pickle.dumps(frame))
    shrink = object_payload / frame_payload
    assert shrink >= _GATE_PAYLOAD_SHRINK, (
        f"columnar frame only {shrink:.1f}x smaller than the pickled "
        f"object batch at {_PAYLOAD_SUBJECTS} subjects x "
        f"{_N_ARCHETYPES} archetypes; gate is {_GATE_PAYLOAD_SHRINK}x"
    )

    object_json = len(
        json.dumps(
            [
                {
                    "subject_id": s.subject_id,
                    "fingerprint": fingerprint,
                }
                for s, fingerprint in zip(subproblems, fingerprints)
            ]
        )
    )
    frame_json = len(json.dumps(frame_to_json(frame)))
    # The JSON frame must beat even a *minimal* per-subject JSON list
    # (ids + fingerprints alone, no model fields).
    assert frame_json < object_json

    _update_artifact(
        {
            "payload_subjects": _PAYLOAD_SUBJECTS,
            "payload_archetypes": _N_ARCHETYPES,
            "object_payload_bytes": object_payload,
            "frame_payload_bytes": frame_payload,
            "payload_shrink": shrink,
            "frame_json_bytes": frame_json,
            "gates": {"payload_shrink": _GATE_PAYLOAD_SHRINK},
        }
    )
    bench_history(
        "parallel",
        {"payload_shrink": shrink, "frame_payload_bytes": frame_payload},
        directions={
            "payload_shrink": "higher",
            "frame_payload_bytes": "lower",
        },
    )


_STEP_SCRIPT = """
import json
import resource
import time

import numpy as np

from repro.simulation import DynamicContractPolicy
from repro.simulation.engine import fast_columnar_step
from repro.simulation.parallel import (
    ParallelRoundEngine,
    parallel_columnar_step,
    require_parallel_steps_agree,
)
from repro.workers.columnar import synthetic_columnar

n_subjects = {n_subjects}
n_workers = {n_workers}
n_rounds = {n_rounds}

columnar = synthetic_columnar(
    n_subjects, n_archetypes={n_archetypes}, seed={seed},
    feedback_noise={feedback_noise},
)
assignment = DynamicContractPolicy(mu=1.0, delta=False).contracts_columnar(
    columnar
)
excluded = np.zeros(n_subjects, dtype=bool)

sequential_previous = np.zeros(n_subjects)
rng = np.random.default_rng({seed})
started = time.perf_counter()
sequential_results = [
    fast_columnar_step(
        columnar, assignment, excluded, sequential_previous, True, rng
    )
    for _ in range(n_rounds)
]
sequential_seconds = time.perf_counter() - started

parallel_previous = np.zeros(n_subjects)
rng = np.random.default_rng({seed})
with ParallelRoundEngine(columnar, n_workers=n_workers) as engine:
    started = time.perf_counter()
    parallel_results = [
        parallel_columnar_step(
            columnar, assignment, excluded, parallel_previous, True, rng,
            engine,
        )
        for _ in range(n_rounds)
    ]
    parallel_seconds = time.perf_counter() - started

for produced, reference in zip(parallel_results, sequential_results):
    require_parallel_steps_agree(produced, reference)
assert np.array_equal(parallel_previous, sequential_previous)

print(json.dumps({{
    "sequential_seconds": sequential_seconds,
    "parallel_seconds": parallel_seconds,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}}))
"""


def _run_step_subprocess(n_subjects: int, n_workers: int) -> dict:
    """Run the timed sequential-vs-parallel comparison in a fresh process."""
    script = _STEP_SCRIPT.format(
        n_subjects=n_subjects,
        n_workers=n_workers,
        n_rounds=_N_ROUNDS,
        n_archetypes=_N_ARCHETYPES,
        seed=_SEED,
        feedback_noise=_FEEDBACK_NOISE,
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    completed = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_parallel_equivalence_subprocess_smoke():
    """The measurement script itself stays bit-exact at smoke scale.

    Runs everywhere (including single-core machines) so the speedup
    gate's harness — shm segment, fork pool, contract replay — is
    exercised in CI even when the gate skips.
    """
    report = _run_step_subprocess(n_subjects=20_000, n_workers=2)
    assert report["sequential_seconds"] > 0.0
    assert report["parallel_seconds"] > 0.0


def test_parallel_speedup_gate(bench_history):
    """The ISSUE acceptance gate: >= 3x at 1M subjects on 4 workers,
    bit-identical, under a hard RSS ceiling."""
    cores = os.cpu_count() or 1
    if cores < _MIN_CORES:
        pytest.skip(
            f"parallel speedup gate needs >= {_MIN_CORES} cores, "
            f"machine has {cores}"
        )
    started = time.perf_counter()
    report = _run_step_subprocess(n_subjects=_MILLION, n_workers=_N_WORKERS)
    wall_seconds = time.perf_counter() - started

    speedup = report["sequential_seconds"] / report["parallel_seconds"]
    rss_mb = report["ru_maxrss_kb"] / 1024.0
    assert speedup >= _GATE_SPEEDUP, (
        f"parallel engine only {speedup:.1f}x faster than the sequential "
        f"kernel at {_MILLION} subjects x {_N_ROUNDS} rounds on "
        f"{_N_WORKERS} workers; gate is {_GATE_SPEEDUP}x"
    )
    assert rss_mb <= _RSS_CEILING_MB, (
        f"1M-subject parallel run peaked at {rss_mb:.0f} MB RSS; "
        f"ceiling is {_RSS_CEILING_MB:.0f} MB"
    )

    _update_artifact(
        {
            "n_subjects": _MILLION,
            "n_workers": _N_WORKERS,
            "n_rounds": _N_ROUNDS,
            "sequential_seconds": report["sequential_seconds"],
            "parallel_seconds": report["parallel_seconds"],
            "speedup": speedup,
            "rss_mb": rss_mb,
            "harness_wall_seconds": wall_seconds,
            "gates": {
                "parallel_speedup": _GATE_SPEEDUP,
                "rss_ceiling_mb": _RSS_CEILING_MB,
            },
        }
    )
    bench_history(
        "parallel",
        {"speedup": speedup, "rss_mb": rss_mb},
        directions={"speedup": "higher", "rss_mb": "lower"},
    )
