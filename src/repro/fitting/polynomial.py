"""Least-squares polynomial fitting (the Section IV-B substrate).

The paper fits workers' observed (effort, feedback) pairs with
polynomials of orders 1 through 6 and compares their norm of residual
(Table III).  We implement the fit from first principles — a scaled
Vandermonde design matrix solved with ``numpy.linalg.lstsq`` — rather
than calling ``numpy.polyfit``, both to keep the substrate self-contained
and so tests can cross-check the two implementations against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import FitError
from ..numerics import is_zero

__all__ = ["PolynomialModel", "fit_polynomial"]


@dataclass(frozen=True)
class PolynomialModel:
    """A fitted polynomial ``sum_j coeffs[j] * x**(order - j)``.

    Coefficients are stored highest degree first (the paper's
    ``(r2, r1, r0)`` convention for quadratics).

    Attributes:
        coefficients: highest-degree-first coefficients, length
            ``order + 1``.
        scale: the abscissa scaling applied before solving (for
            conditioning); evaluation undoes it transparently.
    """

    coefficients: Tuple[float, ...]
    scale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.coefficients) < 1:
            raise FitError("a polynomial needs at least one coefficient")
        if not np.isfinite(self.coefficients).all():
            raise FitError(f"non-finite coefficients: {self.coefficients!r}")
        if self.scale <= 0.0:
            raise FitError(f"scale must be positive, got {self.scale!r}")

    @property
    def order(self) -> int:
        """Degree of the polynomial."""
        return len(self.coefficients) - 1

    def __call__(self, x):
        """Evaluate at a scalar or numpy array (Horner's rule)."""
        scaled = np.asarray(x, dtype=float) / self.scale
        result = np.zeros_like(scaled)
        for coefficient in self.coefficients:
            result = result * scaled + coefficient
        if np.ndim(x) == 0:
            return float(result)
        return result

    def unscaled_coefficients(self) -> Tuple[float, ...]:
        """Coefficients in the original (unscaled) abscissa.

        ``p(x) = sum_j c_j * (x / s)**d_j  =  sum_j (c_j / s**d_j) * x**d_j``
        """
        order = self.order
        return tuple(
            coefficient / self.scale ** (order - index)
            for index, coefficient in enumerate(self.coefficients)
        )

    def derivative_at(self, x: float) -> float:
        """First derivative evaluated at ``x``."""
        scaled = x / self.scale
        order = self.order
        total = 0.0
        for index, coefficient in enumerate(self.coefficients[:-1]):
            degree = order - index
            total += degree * coefficient * scaled ** (degree - 1)
        return total / self.scale


def fit_polynomial(
    x: Sequence[float],
    y: Sequence[float],
    order: int,
    rescale: bool = True,
) -> PolynomialModel:
    """Least-squares fit of a degree-``order`` polynomial.

    Args:
        x: abscissae (e.g. effort levels).
        y: ordinates (e.g. feedback values).
        order: polynomial degree, ``>= 0``.
        rescale: divide abscissae by their max magnitude before building
            the Vandermonde matrix; ill-conditioning at order 6 over raw
            effort magnitudes is otherwise severe.

    Returns:
        The fitted :class:`PolynomialModel`.

    Raises:
        FitError: on shape mismatch, too few points, or a degenerate
            design matrix.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 1 or y_arr.ndim != 1:
        raise FitError("x and y must be one-dimensional")
    if x_arr.shape != y_arr.shape:
        raise FitError(
            f"x ({x_arr.shape}) and y ({y_arr.shape}) must have the same length"
        )
    if order < 0:
        raise FitError(f"order must be >= 0, got {order!r}")
    if x_arr.size < order + 1:
        raise FitError(
            f"need at least {order + 1} points for an order-{order} fit, "
            f"got {x_arr.size}"
        )
    if not np.isfinite(x_arr).all() or not np.isfinite(y_arr).all():
        raise FitError("x and y must be finite")

    scale = float(np.max(np.abs(x_arr))) if rescale else 1.0
    if is_zero(scale):
        scale = 1.0
    scaled = x_arr / scale
    # Vandermonde with columns x^order, ..., x^1, 1 (highest degree first).
    design = np.vander(scaled, N=order + 1, increasing=False)
    solution, _, rank, _ = np.linalg.lstsq(design, y_arr, rcond=None)
    if rank < order + 1 and np.unique(x_arr).size > order:
        raise FitError(
            f"design matrix is rank deficient (rank {rank} < {order + 1})"
        )
    return PolynomialModel(coefficients=tuple(float(c) for c in solution), scale=scale)
