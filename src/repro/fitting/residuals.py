"""Goodness-of-fit measures: norm of residual (NoR), RMSE, R².

Table III compares fits via the *norm of residual* — the Euclidean norm
of the residual vector, the quantity MATLAB's basic-fitting tool reports
and evidently what the authors used ("a lower norm signifies a better
fit").
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import FitError
from ..numerics import is_zero

__all__ = ["norm_of_residual", "rmse", "r_squared", "residuals"]


def residuals(
    model: Callable[[np.ndarray], np.ndarray],
    x: Sequence[float],
    y: Sequence[float],
) -> np.ndarray:
    """Residual vector ``y - model(x)``."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise FitError(
            f"x ({x_arr.shape}) and y ({y_arr.shape}) must have the same length"
        )
    if x_arr.size == 0:
        raise FitError("residuals need at least one point")
    predicted = np.asarray(model(x_arr), dtype=float)
    return y_arr - predicted


def norm_of_residual(
    model: Callable[[np.ndarray], np.ndarray],
    x: Sequence[float],
    y: Sequence[float],
) -> float:
    """The Table III metric: ``||y - model(x)||_2``."""
    return float(np.linalg.norm(residuals(model, x, y)))


def rmse(
    model: Callable[[np.ndarray], np.ndarray],
    x: Sequence[float],
    y: Sequence[float],
) -> float:
    """Root-mean-square error, ``NoR / sqrt(n)``."""
    res = residuals(model, x, y)
    return float(math.sqrt(float(np.mean(res * res))))


def r_squared(
    model: Callable[[np.ndarray], np.ndarray],
    x: Sequence[float],
    y: Sequence[float],
) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``.

    Degenerate (constant-``y``) data returns 1.0 for a perfect fit and
    0.0 otherwise, rather than dividing by zero.
    """
    res = residuals(model, x, y)
    y_arr = np.asarray(y, dtype=float)
    total = float(np.sum((y_arr - y_arr.mean()) ** 2))
    explained_error = float(np.sum(res * res))
    if is_zero(total):
        return 1.0 if is_zero(explained_error) else 0.0
    return 1.0 - explained_error / total
