"""Model selection across polynomial orders (the Table III sweep).

Section IV-B fits polynomial orders 1..6 to each worker class, compares
norms of residual, and — because the NoRs are nearly identical while
complexity grows — settles on quadratics.  This module reproduces that
sweep and encodes the paper's selection rule: pick the lowest order
whose NoR is within a tolerance of the best order's NoR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import FitError
from .polynomial import PolynomialModel, fit_polynomial
from .residuals import norm_of_residual

__all__ = ["OrderSweep", "sweep_orders", "select_order"]

#: The polynomial orders Table III compares.
TABLE_III_ORDERS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)

#: Column labels, in the paper's order.
TABLE_III_LABELS: Dict[int, str] = {
    1: "linear",
    2: "quad",
    3: "cubic",
    4: "4th",
    5: "5th",
    6: "6th",
}


@dataclass(frozen=True)
class OrderSweep:
    """Fits and NoRs across polynomial orders for one dataset.

    Attributes:
        models: fitted model per order.
        nors: norm of residual per order.
    """

    models: Dict[int, PolynomialModel]
    nors: Dict[int, float]

    def nor_row(self, orders: Sequence[int] = TABLE_III_ORDERS) -> Tuple[float, ...]:
        """NoRs in the requested column order (a Table III row)."""
        missing = [order for order in orders if order not in self.nors]
        if missing:
            raise FitError(f"sweep has no fits for orders {missing!r}")
        return tuple(self.nors[order] for order in orders)

    @property
    def best_order(self) -> int:
        """The order with the strictly smallest NoR."""
        return min(self.nors, key=lambda order: (self.nors[order], order))

    def selected_order(self, tolerance: float = 0.02) -> int:
        """The paper's rule: lowest order within ``tolerance`` of the best.

        ``tolerance`` is relative: an order qualifies when its NoR is at
        most ``(1 + tolerance)`` times the best NoR.  Table III's NoRs
        differ by well under 2% across orders, which is why the paper
        picks the quadratic ("considering the complexity of the
        functions").
        """
        if tolerance < 0.0:
            raise FitError(f"tolerance must be >= 0, got {tolerance!r}")
        best = self.nors[self.best_order]
        ceiling = best * (1.0 + tolerance) if best > 0.0 else tolerance
        for order in sorted(self.nors):
            if self.nors[order] <= ceiling:
                return order
        return self.best_order


def sweep_orders(
    x: Sequence[float],
    y: Sequence[float],
    orders: Sequence[int] = TABLE_III_ORDERS,
) -> OrderSweep:
    """Fit every order and record its NoR.

    Args:
        x: effort levels.
        y: feedback values.
        orders: polynomial orders to try (defaults to Table III's 1..6).
    """
    if not orders:
        raise FitError("at least one order is required")
    models: Dict[int, PolynomialModel] = {}
    nors: Dict[int, float] = {}
    for order in orders:
        model = fit_polynomial(x, y, order=order)
        models[order] = model
        nors[order] = norm_of_residual(model, x, y)
    return OrderSweep(models=models, nors=nors)


def select_order(
    x: Sequence[float],
    y: Sequence[float],
    orders: Sequence[int] = TABLE_III_ORDERS,
    tolerance: float = 0.02,
) -> int:
    """Run the sweep and apply the paper's selection rule in one call."""
    return sweep_orders(x, y, orders=orders).selected_order(tolerance=tolerance)
