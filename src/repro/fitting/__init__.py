"""Effort-function fitting (Section IV-B / Table III of the paper)."""

from .polynomial import PolynomialModel, fit_polynomial
from .quadratic import fit_concave_quadratic
from .residuals import norm_of_residual, r_squared, residuals, rmse
from .selection import (
    TABLE_III_LABELS,
    TABLE_III_ORDERS,
    OrderSweep,
    select_order,
    sweep_orders,
)

__all__ = [
    "PolynomialModel",
    "fit_polynomial",
    "fit_concave_quadratic",
    "norm_of_residual",
    "r_squared",
    "residuals",
    "rmse",
    "TABLE_III_LABELS",
    "TABLE_III_ORDERS",
    "OrderSweep",
    "select_order",
    "sweep_orders",
]
