"""Concave-constrained quadratic fits producing valid effort functions.

The contract designer needs effort functions that satisfy the paper's
standing assumptions: concave (``r2 < 0``), increasing at zero effort
(``r1 > 0``) and with non-negative baseline feedback (``r0 >= 0``).  An
unconstrained least-squares quadratic over noisy per-worker data can
violate any of them, so this module fits with repair: start from the
unconstrained solution, then clamp each offending coefficient in turn
and re-solve the remaining ones — each re-solve is again a plain
least-squares problem, so the result stays the constrained optimum for
the coefficients still free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.effort import QuadraticEffort
from ..errors import FitError
from .polynomial import fit_polynomial

__all__ = ["fit_concave_quadratic"]


def fit_concave_quadratic(
    x: Sequence[float],
    y: Sequence[float],
    min_curvature: float = None,
    min_slope: float = None,
) -> QuadraticEffort:
    """Fit ``psi(y) = r2*y^2 + r1*y + r0`` with the paper's constraints.

    Args:
        x: effort levels (non-negative).
        y: feedback values.
        min_curvature: smallest admissible ``|r2|``; defaults to a scale
            set by the data (``y_span / x_span**2 * 1e-3``) so a nearly
            linear cloud still produces a usable concave function.
        min_slope: smallest admissible ``r1``; defaults analogously to
            ``y_span / x_span * 1e-3``.

    Returns:
        A valid :class:`~repro.core.effort.QuadraticEffort`.

    Raises:
        FitError: when fewer than three points are given or the data is
            degenerate (no effort spread).
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.size < 3:
        raise FitError(f"need at least 3 points for a quadratic fit, got {x_arr.size}")
    if np.any(x_arr < 0.0):
        raise FitError("effort levels must be non-negative")
    x_span = float(x_arr.max() - x_arr.min())
    if x_span <= 0.0:
        raise FitError("effort levels are all identical; cannot fit a quadratic")
    y_span = float(max(y_arr.max() - y_arr.min(), abs(y_arr).max(), 1.0))
    if min_curvature is None:
        min_curvature = 1e-3 * y_span / (x_span * x_span)
    if min_slope is None:
        min_slope = 1e-3 * y_span / x_span
    if min_curvature <= 0.0 or min_slope <= 0.0:
        raise FitError("min_curvature and min_slope must be positive")

    model = fit_polynomial(x_arr, y_arr, order=2)
    r2, r1, r0 = model.unscaled_coefficients()

    if r2 > -min_curvature:
        # Curvature violated: pin r2 and re-solve (r1, r0) by least squares.
        r2 = -min_curvature
        r1, r0 = _refit_linear(x_arr, y_arr - r2 * x_arr * x_arr)
    if r1 < min_slope:
        # Slope violated: pin r1 too and re-solve the intercept alone.
        r1 = min_slope
        r0 = float(np.mean(y_arr - r2 * x_arr * x_arr - r1 * x_arr))
    if r0 < 0.0:
        r0 = 0.0
    return QuadraticEffort(r2=float(r2), r1=float(r1), r0=float(r0))


def _refit_linear(x: np.ndarray, target: np.ndarray):
    """Least-squares ``target ~ r1*x + r0``."""
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    return float(slope), float(intercept)
