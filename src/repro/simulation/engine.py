"""The round-based crowdsourcing marketplace simulation.

Each round realizes one iteration of the Stackelberg game over the whole
population (Section III: "each iteration of the game represents the
completion of one task"):

1. the requester's policy posts (or re-posts) contracts;
2. every non-excluded agent best-responds with an effort using its
   *true* effort function;
3. the platform realizes noisy feedback for that effort;
4. the contract pays out on the *realized* feedback (this is the
   quality-contingent ``c^t = f(q^{t-1})`` coupling — workers are paid
   what their observed feedback earns, not what they hoped for);
5. the requester books ``sum_i w_i q_i - mu * sum_i c_i``.

Excluded subjects (the Fig. 8c baseline) neither get paid nor have
their feedback counted — they are outside the system.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.sweep import fastpath_enabled
from ..core.utility import RequesterObjective
from ..errors import SimulationError
from ..obs.trace import get_tracer
from ..workers.population import PopulationModel
from .ledger import RoundRecord, SimulationLedger, SubjectRoundOutcome
from .policies import PaymentPolicy

__all__ = ["MarketplaceSimulation"]


class MarketplaceSimulation:
    """Drives a population through repeated task rounds.

    Args:
        population: the assembled worker population.
        objective: the requester's parameters (``mu``, Eq. 5 weights).
        policy: the payment policy under test.
        seed: seed for the feedback-noise generator.
        redesign_every: re-run the policy every this many rounds; 1
            re-designs each round (fully dynamic), larger values model a
            requester that amortizes design cost.
        lagged_payment: pay round ``t`` on round ``t-1``'s realized
            feedback — the paper's literal ``c^t = f(q^{t-1})`` timing
            (Eq. 1).  Round 0 pays the contract's zero-feedback value.
            The default (False) settles each round on its own feedback,
            which has the same steady state and simpler accounting.
    """

    def __init__(
        self,
        population: PopulationModel,
        objective: RequesterObjective,
        policy: PaymentPolicy,
        seed: int = 0,
        redesign_every: int = 1,
        lagged_payment: bool = False,
    ) -> None:
        if redesign_every < 1:
            raise SimulationError(
                f"redesign_every must be >= 1, got {redesign_every!r}"
            )
        self.population = population
        self.objective = objective
        self.policy = policy
        self.redesign_every = redesign_every
        self.lagged_payment = lagged_payment
        self._previous_feedback: Dict[str, float] = {}
        self._rng = np.random.default_rng(seed)
        self.ledger = SimulationLedger()
        self._contracts: Optional[Dict[str, object]] = None
        self._excluded = None
        # Subjects that have left the marketplace for good (populated by
        # retention-aware subclasses; the base engine never adds here).
        self._departed: set = set()

    def run(self, n_rounds: int) -> SimulationLedger:
        """Simulate ``n_rounds`` task rounds and return the ledger."""
        if n_rounds < 1:
            raise SimulationError(f"n_rounds must be >= 1, got {n_rounds!r}")
        for _ in range(n_rounds):
            self.step()
        return self.ledger

    def step(self) -> RoundRecord:
        """Simulate one round and return its record."""
        tracer = get_tracer()
        round_index = self.ledger.n_rounds
        with tracer.span("simulation.round", round_index=round_index) as span:
            record = self._step_traced(round_index, tracer, span)
        self.ledger.append(record)
        self.policy.observe(record)
        return record

    def _step_traced(self, round_index, tracer, span) -> RoundRecord:
        """One round's work, run inside the ``simulation.round`` span."""
        # Strategic agents may change behaviour between rounds; inform
        # them before the requester re-designs, so this round's contracts
        # face this round's behaviour.
        for agent in self.population.agents.values():
            agent.on_round(round_index)
        design_ms: Optional[float] = None
        if self._contracts is None or round_index % self.redesign_every == 0:
            design_start = tracer.clock()
            self._contracts = self.policy.contracts(self.population)
            self._excluded = self.policy.excluded_subjects(self.population)
            design_ms = (tracer.clock() - design_start) * 1e3
            # Which Section IV-C sweep engine priced this round's
            # contracts (REPRO_FASTPATH routing, see repro.core.sweep).
            span.set("fastpath", fastpath_enabled())
        policy_weights = self.policy.current_weights(self.population)

        outcomes: Dict[str, SubjectRoundOutcome] = {}
        benefit = 0.0
        total_compensation = 0.0
        for subproblem in self.population.subproblems:
            subject_id = subproblem.subject_id
            agent = self.population.agents[subject_id]
            # Utility is always booked with the reference (population)
            # weight; the policy's belief is recorded for diagnostics
            # but cannot inflate the score.
            evaluation_weight = self.population.weights[subject_id]
            believed = (
                policy_weights.get(subject_id)
                if policy_weights is not None
                else None
            )
            excluded = (
                subject_id in self._excluded
                or subject_id in self._departed
                or subject_id not in self._contracts
            )
            if excluded:
                outcomes[subject_id] = SubjectRoundOutcome(
                    subject_id=subject_id,
                    worker_type=subproblem.params.worker_type,
                    effort=0.0,
                    feedback=0.0,
                    compensation=0.0,
                    feedback_weight=evaluation_weight,
                    excluded=True,
                    n_members=agent.n_members,
                    policy_weight=believed,
                )
                continue
            diagnostics = self.policy.solve_diagnostics(subject_id)
            contract = self._contracts[subject_id]
            response = agent.respond(contract)
            realized = agent.realize_feedback(response.effort, rng=self._rng)
            if self.lagged_payment:
                # Eq. (1): this round's pay rewards last round's feedback.
                pay = contract.pay_for_feedback(
                    self._previous_feedback.get(subject_id, 0.0)
                )
                self._previous_feedback[subject_id] = realized
            else:
                pay = contract.pay_for_feedback(realized)
            realized_worker_utility = (
                pay
                + agent.params.omega * realized
                - agent.params.beta * response.effort
            )
            outcome = SubjectRoundOutcome(
                subject_id=subject_id,
                worker_type=subproblem.params.worker_type,
                effort=response.effort,
                feedback=realized,
                compensation=pay,
                feedback_weight=evaluation_weight,
                excluded=False,
                n_members=agent.n_members,
                rating_deviation=agent.rating_deviation(rng=self._rng),
                policy_weight=believed,
                worker_utility=realized_worker_utility,
                fingerprint=(
                    diagnostics.fingerprint if diagnostics is not None else None
                ),
                cache_hit=(
                    diagnostics.cache_hit if diagnostics is not None else None
                ),
            )
            outcomes[subject_id] = outcome
            benefit += outcome.requester_value
            total_compensation += pay

        record = RoundRecord(
            round_index=round_index,
            outcomes=outcomes,
            benefit=benefit,
            total_compensation=total_compensation,
            utility=self.objective.params.utility(benefit, total_compensation),
            design_ms=design_ms,
            span_id=span.span_id or None,
        )
        span.set("n_subjects", len(outcomes))
        span.set("n_excluded", sum(1 for o in outcomes.values() if o.excluded))
        span.set("utility", record.utility)
        if design_ms is not None:
            span.set("design_ms", design_ms)
        return record
