"""The round-based crowdsourcing marketplace simulation.

Each round realizes one iteration of the Stackelberg game over the whole
population (Section III: "each iteration of the game represents the
completion of one task"):

1. the requester's policy posts (or re-posts) contracts;
2. every non-excluded agent best-responds with an effort using its
   *true* effort function;
3. the platform realizes noisy feedback for that effort;
4. the contract pays out on the *realized* feedback (this is the
   quality-contingent ``c^t = f(q^{t-1})`` coupling — workers are paid
   what their observed feedback earns, not what they hoped for);
5. the requester books ``sum_i w_i q_i - mu * sum_i c_i``.

Excluded subjects (the Fig. 8c baseline) neither get paid nor have
their feedback counted — they are outside the system.

Two interchangeable round kernels drive step 2-5: :func:`legacy_step`,
the reference per-subject Python loop, and :func:`fast_step`, a batched
kernel that dedups best responses across archetypes, caches each
contract's Eq. (6) pay function, realizes the whole population's noise
from one structured generator draw, and reduces with NumPy — while
emitting per-subject outcomes *bit-identical* to the loop.
:func:`require_steps_agree` is the executable equivalence contract
(mirroring ``repro.core.sweep.require_sweeps_agree``); under
``REPRO_CHECK_INVARIANTS=1`` every fast round is cross-verified against
a legacy replay from the same generator state.

The RNG draw order is pinned (and regression-tested): subjects in
``population.subproblems`` order; per subject, the feedback-noise draw
comes first, then the rating-deviation draw; zero-noise agents and
excluded subjects consume nothing.  See docs/PERFORMANCE.md.

A third routing exists for :class:`~repro.workers.columnar.ColumnarPopulation`
state: :func:`fast_columnar_step` runs the same four stages straight on
the population's contiguous columns — archetype dedup via ``np.unique``
over packed integer keys, zero per-subject Python objects on the hot
path — and :func:`legacy_columnar_step` is its escape hatch, forwarding
the lazy object views through :func:`legacy_step`.  Both consume the
identical pinned draw stream, so the equivalence contracts above apply
unchanged; pair the columnar engine with a
:class:`~repro.simulation.streaming.StreamingLedger` and a 10M-subject
round runs in bounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
    cast,
)

import numpy as np

from ..analysis.invariants import InvariantViolation, invariants_enabled
from ..core.contract import Contract
from ..core.piecewise import PiecewiseLinear
from ..core.sweep import fastpath_enabled
from ..core.utility import RequesterObjective
from ..errors import SimulationError
from ..numerics import ABS_TOL
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..serving.cache import LRUCache
from ..serving.pool import ContractAssignment
from ..workers.base import ResponseCache, WorkerAgent, respond_batch
from ..workers.columnar import (
    WORKER_TYPE_ORDER,
    ColumnarPopulation,
    ColumnarResponseCache,
)
from ..workers.population import PopulationModel
from .ledger import RoundRecord, SimulationLedger, SubjectRoundOutcome
from .policies import PaymentPolicy
from .streaming import StreamingLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel -> engine)
    from .parallel import ParallelRoundEngine

__all__ = [
    "ColumnarStepResult",
    "MarketplaceSimulation",
    "PaymentCache",
    "StepOutcomes",
    "fast_columnar_step",
    "fast_step",
    "legacy_columnar_step",
    "legacy_step",
    "require_ledgers_agree",
    "require_steps_agree",
]

#: Default bound on cached pay functions per simulation.  Keys are one
#: per contract *group* (fast path) or posted-contract code (columnar
#: path), so even adaptive runs sit far below this; the bound exists so
#: a long run cycling through many distinct contracts cannot grow the
#: cache without limit.
PAYMENT_CACHE_CAPACITY = 4096


class PaymentCache(LRUCache):
    """Bounded cache of each posted contract's Eq. (6) feedback->pay
    function, keyed per subject/contract group.

    ``Contract.pay_for_feedback`` rebuilds the interpolant on every
    call; entries here are validated by contract identity first and by
    ``Contract.content_key()`` second, so a re-designed subject can
    never pay off a stale schedule while a delta-reused schedule rebuilt
    as a new (value-equal) object still hits.  Backed by the generic
    serving LRU so long adaptive runs stay bounded; evictions are
    counted under ``simulation.payment_cache.evictions``.
    """

    def __init__(self, capacity: int = PAYMENT_CACHE_CAPACITY) -> None:
        super().__init__(
            capacity=capacity,
            eviction_counter=get_registry().counter(
                "simulation.payment_cache.evictions",
                help="pay functions evicted from round-engine payment caches",
            ),
        )


@dataclass(frozen=True)
class StepOutcomes:
    """What one round's population pass produced (either kernel).

    Attributes:
        outcomes: per-subject outcomes in ``population.subproblems``
            order.
        benefit: the realized ``sum_i w_i q_i`` over active subjects.
        total_compensation: total pay over active subjects.
    """

    outcomes: Dict[str, SubjectRoundOutcome]
    benefit: float
    total_compensation: float


def legacy_step(
    population: PopulationModel,
    contracts: Dict[str, Contract],
    excluded_ids: Set[str],
    policy: PaymentPolicy,
    policy_weights: Optional[Dict[str, float]],
    previous_feedback: Dict[str, float],
    lagged_payment: bool,
    rng: np.random.Generator,
) -> StepOutcomes:
    """The reference per-subject round loop (Section III, Eq. 1).

    One scalar pass per subject: best response, feedback realization,
    payment, utility booking.  This is the oracle the fast kernel is
    verified against; it consumes generator draws in the pinned order
    documented at module level.
    """
    outcomes: Dict[str, SubjectRoundOutcome] = {}
    benefit = 0.0
    total_compensation = 0.0
    for subproblem in population.subproblems:
        subject_id = subproblem.subject_id
        agent = population.agents[subject_id]
        # Utility is always booked with the reference (population)
        # weight; the policy's belief is recorded for diagnostics
        # but cannot inflate the score.
        evaluation_weight = population.weights[subject_id]
        believed = (
            policy_weights.get(subject_id)
            if policy_weights is not None
            else None
        )
        if subject_id in excluded_ids or subject_id not in contracts:
            outcomes[subject_id] = SubjectRoundOutcome(
                subject_id=subject_id,
                worker_type=subproblem.params.worker_type,
                effort=0.0,
                feedback=0.0,
                compensation=0.0,
                feedback_weight=evaluation_weight,
                excluded=True,
                n_members=agent.n_members,
                policy_weight=believed,
            )
            continue
        diagnostics = policy.solve_diagnostics(subject_id)
        contract = contracts[subject_id]
        response = agent.respond(contract)
        realized = agent.realize_feedback(response.effort, rng=rng)
        if lagged_payment:
            # Eq. (1): this round's pay rewards last round's feedback.
            pay = contract.pay_for_feedback(
                previous_feedback.get(subject_id, 0.0)
            )
            previous_feedback[subject_id] = realized
        else:
            pay = contract.pay_for_feedback(realized)
        realized_worker_utility = (
            pay
            + agent.params.omega * realized
            - agent.params.beta * response.effort
        )
        outcome = SubjectRoundOutcome(
            subject_id=subject_id,
            worker_type=subproblem.params.worker_type,
            effort=response.effort,
            feedback=realized,
            compensation=pay,
            feedback_weight=evaluation_weight,
            excluded=False,
            n_members=agent.n_members,
            rating_deviation=agent.rating_deviation(rng=rng),
            policy_weight=believed,
            worker_utility=realized_worker_utility,
            fingerprint=(
                diagnostics.fingerprint if diagnostics is not None else None
            ),
            cache_hit=(
                diagnostics.cache_hit if diagnostics is not None else None
            ),
        )
        outcomes[subject_id] = outcome
        benefit += outcome.requester_value
        total_compensation += pay
    return StepOutcomes(
        outcomes=outcomes,
        benefit=benefit,
        total_compensation=total_compensation,
    )


def _payment_function(
    contract: Contract, subject_id: str, cache: Optional[PaymentCache]
) -> PiecewiseLinear:
    """The contract's posted Eq. (6) pay function, cached per subject.

    Entries are validated by object identity first (free) and by
    :meth:`Contract.content_key` second: delta-redesign reuse rebuilds
    value-equal contract objects for unchanged subjects, and keying on
    ``is`` alone would silently rebuild every pay interpolant each
    round.  A content hit refreshes the stored object so later rounds
    hit on identity again.
    """
    if cache is not None:
        entry = cache.get(subject_id)
        if entry is not None:
            cached_contract, function = entry
            if cached_contract is contract:
                return function
            if cached_contract.content_key() == contract.content_key():
                cache.put(subject_id, (contract, function))
                return function
    function = contract.as_feedback_function()
    if cache is not None:
        cache.put(subject_id, (contract, function))
    return function


def fast_step(
    population: PopulationModel,
    contracts: Dict[str, Contract],
    excluded_ids: Set[str],
    policy: PaymentPolicy,
    policy_weights: Optional[Dict[str, float]],
    previous_feedback: Dict[str, float],
    lagged_payment: bool,
    rng: np.random.Generator,
    response_cache: Optional[ResponseCache] = None,
    payment_cache: Optional[PaymentCache] = None,
) -> StepOutcomes:
    """The batched population round kernel (bit-identical to the loop).

    Four vectorized stages over the stacked active subjects:

    1. best responses via :func:`repro.workers.base.respond_batch` —
       one Eq. (30) solve per distinct (class, contract, psi, params)
       archetype, optionally carried across rounds in
       ``response_cache``;
    2. population-wide noise from structured generator draws in the
       pinned per-subject order (feedback draw, then rating draw),
       realized through the workers' batch entry points;
    3. payments via each contract's cached pay function and
       ``PiecewiseLinear.batch`` (one ``batch_locate`` per distinct
       contract), honoring the Eq. (1) lag when requested;
    4. benefit/compensation reduced with a NumPy cumulative sum, whose
       left-to-right accumulation reproduces the legacy ``+=`` bits.
    """
    excluded_outcomes: Dict[str, SubjectRoundOutcome] = {}
    active_ids: List[str] = []
    agents: List[WorkerAgent] = []
    evaluation_weights: List[float] = []
    for subproblem in population.subproblems:
        subject_id = subproblem.subject_id
        agent = population.agents[subject_id]
        evaluation_weight = population.weights[subject_id]
        if subject_id in excluded_ids or subject_id not in contracts:
            excluded_outcomes[subject_id] = SubjectRoundOutcome(
                subject_id=subject_id,
                worker_type=subproblem.params.worker_type,
                effort=0.0,
                feedback=0.0,
                compensation=0.0,
                feedback_weight=evaluation_weight,
                excluded=True,
                n_members=agent.n_members,
                policy_weight=(
                    policy_weights.get(subject_id)
                    if policy_weights is not None
                    else None
                ),
            )
            continue
        active_ids.append(subject_id)
        agents.append(agent)
        evaluation_weights.append(evaluation_weight)

    n_active = len(active_ids)
    posted = [contracts[subject_id] for subject_id in active_ids]
    responses = respond_batch(agents, posted, cache=response_cache)
    efforts = np.array([response.effort for response in responses])
    # Recompute the expectation through each agent's true psi exactly as
    # the scalar realize_feedback does (the response's own feedback field
    # is numerically equal, but bit-identity is the contract here).
    expected = np.array(
        [
            float(agent.effort_function(response.effort))
            for agent, response in zip(agents, responses)
        ]
    )

    # Structured noise: one standard-normal block in the pinned draw
    # order, scattered back to per-subject feedback/rating slots.  A
    # scalar Generator.normal(0, s) is exactly s * standard_normal(), so
    # this consumes and applies the identical stream.
    feedback_scales = np.zeros(n_active)
    feedback_draws = np.zeros(n_active)
    rating_scales = np.zeros(n_active)
    rating_draws = np.zeros(n_active)
    scales: List[float] = []
    feedback_slots: List[Tuple[int, int]] = []
    rating_slots: List[Tuple[int, int]] = []
    for index, agent in enumerate(agents):
        if agent.needs_feedback_draw:
            feedback_slots.append((index, len(scales)))
            scales.append(agent.feedback_noise)
        if agent.needs_rating_draw:
            rating_slots.append((index, len(scales)))
            scales.append(agent.rating_noise)
    if scales:
        draws = rng.standard_normal(len(scales))
        for index, slot in feedback_slots:
            feedback_scales[index] = scales[slot]
            feedback_draws[index] = draws[slot]
        for index, slot in rating_slots:
            rating_scales[index] = scales[slot]
            rating_draws[index] = draws[slot]

    realized = WorkerAgent.realize_feedback_batch(
        expected, feedback_scales, feedback_draws
    )
    biases = np.array([agent.rating_bias_now for agent in agents])
    rating_deviations = WorkerAgent.rating_deviation_batch(
        biases, rating_scales, rating_draws
    )

    # Payments: group by posted contract object (archetype sharing makes
    # these few) and evaluate each group's pay schedule in one batch.
    if lagged_payment:
        basis = np.array(
            [previous_feedback.get(subject_id, 0.0) for subject_id in active_ids]
        )
    else:
        basis = realized
    pay = np.zeros(n_active)
    contract_groups: Dict[int, List[int]] = {}
    for index, contract in enumerate(posted):
        contract_groups.setdefault(id(contract), []).append(index)
    for indices in contract_groups.values():
        representative = indices[0]
        pay_function = _payment_function(
            posted[representative], active_ids[representative], payment_cache
        )
        selector = np.asarray(indices, dtype=np.intp)
        pay[selector] = pay_function.batch(basis[selector])
    if lagged_payment:
        for subject_id, value in zip(active_ids, realized):
            previous_feedback[subject_id] = float(value)

    omegas = np.array([agent.params.omega for agent in agents])
    betas = np.array([agent.params.beta for agent in agents])
    worker_utilities = pay + omegas * realized - betas * efforts

    if n_active:
        # cumsum accumulates strictly left to right, matching the bits
        # of the legacy loop's sequential `+=` (np.sum pairwise-splits).
        benefit = float(
            np.cumsum(np.asarray(evaluation_weights) * realized)[-1]
        )
        total_compensation = float(np.cumsum(pay)[-1])
    else:
        benefit = 0.0
        total_compensation = 0.0

    index_of = {subject_id: i for i, subject_id in enumerate(active_ids)}
    outcomes: Dict[str, SubjectRoundOutcome] = {}
    for subproblem in population.subproblems:
        subject_id = subproblem.subject_id
        excluded_outcome = excluded_outcomes.get(subject_id)
        if excluded_outcome is not None:
            outcomes[subject_id] = excluded_outcome
            continue
        index = index_of[subject_id]
        diagnostics = policy.solve_diagnostics(subject_id)
        outcomes[subject_id] = SubjectRoundOutcome(
            subject_id=subject_id,
            worker_type=subproblem.params.worker_type,
            effort=float(efforts[index]),
            feedback=float(realized[index]),
            compensation=float(pay[index]),
            feedback_weight=evaluation_weights[index],
            excluded=False,
            n_members=agents[index].n_members,
            rating_deviation=float(rating_deviations[index]),
            policy_weight=(
                policy_weights.get(subject_id)
                if policy_weights is not None
                else None
            ),
            worker_utility=float(worker_utilities[index]),
            fingerprint=(
                diagnostics.fingerprint if diagnostics is not None else None
            ),
            cache_hit=(
                diagnostics.cache_hit if diagnostics is not None else None
            ),
        )
    return StepOutcomes(
        outcomes=outcomes,
        benefit=benefit,
        total_compensation=total_compensation,
    )


@dataclass(frozen=True)
class ColumnarStepResult:
    """One columnar round's realized columns (population row order).

    The columnar twin of :class:`StepOutcomes`: per-subject results stay
    as contiguous arrays instead of outcome objects, so a 10M-subject
    round costs eight arrays, not ten million dataclasses.  Excluded
    rows hold zeros (matching the object path's excluded outcomes).

    Attributes:
        active: per-subject participation mask; ``False`` rows were
            excluded (by policy, mask, or a missing contract).
        efforts: realized best-response efforts.
        feedback: realized (noisy) feedback.
        compensation: realized pay.
        rating_deviation: realized rating deviations.
        worker_utility: realized per-subject worker utility.
        benefit: the realized ``sum_i w_i q_i`` over active subjects.
        total_compensation: total pay over active subjects.
    """

    active: np.ndarray
    efforts: np.ndarray
    feedback: np.ndarray
    compensation: np.ndarray
    rating_deviation: np.ndarray
    worker_utility: np.ndarray
    benefit: float
    total_compensation: float


def fast_columnar_step(
    population: ColumnarPopulation,
    assignment: ContractAssignment,
    excluded_mask: np.ndarray,
    previous_feedback: np.ndarray,
    lagged_payment: bool,
    rng: np.random.Generator,
    response_cache: Optional[ColumnarResponseCache] = None,
    payment_cache: Optional[PaymentCache] = None,
) -> ColumnarStepResult:
    """The structure-of-arrays round kernel (bit-identical to the loop).

    The same four stages as :func:`fast_step`, but sourced from the
    population's columns with zero per-subject Python objects:

    1. best responses via
       :meth:`~repro.workers.columnar.ColumnarPopulation.respond_unique`
       — one Eq. (30) solve per distinct (contract, behaviour archetype)
       pair, found with ``np.unique`` over a packed integer key;
    2. population noise from one structured generator draw in the
       pinned per-subject order (feedback slot, then rating slot;
       zero-noise rows consume nothing), realized through the workers'
       batch entry points;
    3. payments grouped by contract *code* (the archetype table index),
       one ``PiecewiseLinear.batch`` per distinct posted contract;
    4. benefit/compensation reduced with a NumPy cumulative sum whose
       left-to-right accumulation reproduces the legacy ``+=`` bits.

    Args:
        population: the columnar population store.
        assignment: archetype contract table plus per-subject codes
            (code ``-1`` means "no contract": the subject is excluded).
        excluded_mask: per-subject exclusion mask (policy + departures).
        previous_feedback: per-subject previous-round feedback column;
            mutated in place when ``lagged_payment`` is set, exactly as
            the object path mutates its feedback dict.
        lagged_payment: pay this round on last round's feedback (Eq. 1).
        rng: the round's noise generator (pinned draw order).
        response_cache: optional cross-round best-response cache keyed
            by (contract code, response archetype), identity-validated.
        payment_cache: optional cross-round pay-function cache keyed by
            contract code, content-validated.
    """
    codes = assignment.codes
    n_subjects = population.n_subjects
    active = ~np.asarray(excluded_mask, dtype=bool) & (codes >= 0)
    rows = np.flatnonzero(active)
    efforts = np.zeros(n_subjects)
    feedback = np.zeros(n_subjects)
    compensation = np.zeros(n_subjects)
    rating_deviation = np.zeros(n_subjects)
    worker_utility = np.zeros(n_subjects)
    if rows.size == 0:
        return ColumnarStepResult(
            active=active,
            efforts=efforts,
            feedback=feedback,
            compensation=compensation,
            rating_deviation=rating_deviation,
            worker_utility=worker_utility,
            benefit=0.0,
            total_compensation=0.0,
        )

    active_codes = codes[rows]
    best_efforts, expected = population.respond_unique(
        assignment.contracts, active_codes, rows, cache=response_cache
    )

    # Structured noise: the scalar path asks each agent whether it
    # consumes a draw (not is_zero(noise)); the columnar predicate is
    # the exact complement of that tolerance check.  Draw slots are laid
    # out per active subject — feedback first, then rating — so one
    # standard-normal block consumes the identical pinned stream.
    feedback_noise = population.feedback_noise[rows]
    rating_noise = population.rating_noise[rows]
    needs_feedback = np.abs(feedback_noise) > ABS_TOL
    needs_rating = np.abs(rating_noise) > ABS_TOL
    counts = needs_feedback.astype(np.int64) + needs_rating.astype(np.int64)
    offsets = np.cumsum(counts) - counts
    total_draws = int(offsets[-1] + counts[-1])
    feedback_draws = np.zeros(rows.size)
    rating_draws = np.zeros(rows.size)
    feedback_scales = np.where(needs_feedback, feedback_noise, 0.0)
    rating_scales = np.where(needs_rating, rating_noise, 0.0)
    if total_draws:
        draws = rng.standard_normal(total_draws)
        feedback_draws[needs_feedback] = draws[offsets[needs_feedback]]
        rating_positions = offsets + needs_feedback.astype(np.int64)
        rating_draws[needs_rating] = draws[rating_positions[needs_rating]]
    realized = WorkerAgent.realize_feedback_batch(
        expected, feedback_scales, feedback_draws
    )
    rating_active = WorkerAgent.rating_deviation_batch(
        population.rating_bias[rows], rating_scales, rating_draws
    )

    # Payments: one batch evaluation per distinct contract code.  The
    # pay function is elementwise per subject, so the grouping scheme
    # cannot perturb bits relative to the object path's id() groups.
    if lagged_payment:
        basis = previous_feedback[rows]
    else:
        basis = realized
    pay = np.zeros(rows.size)
    for code in np.unique(active_codes).tolist():
        contract = assignment.contracts[int(code)]
        pay_function = _payment_function(
            contract, f"@contract:{int(code)}", payment_cache
        )
        selector = active_codes == code
        pay[selector] = pay_function.batch(basis[selector])
    if lagged_payment:
        previous_feedback[rows] = realized

    utilities = (
        pay
        + population.omega[rows] * realized
        - population.beta[rows] * best_efforts
    )
    # cumsum accumulates strictly left to right, matching the bits of
    # the legacy loop's sequential `+=` (np.sum pairwise-splits).
    benefit = float(np.cumsum(population.eval_weight[rows] * realized)[-1])
    total_compensation = float(np.cumsum(pay)[-1])

    efforts[rows] = best_efforts
    feedback[rows] = realized
    compensation[rows] = pay
    rating_deviation[rows] = rating_active
    worker_utility[rows] = utilities
    return ColumnarStepResult(
        active=active,
        efforts=efforts,
        feedback=feedback,
        compensation=compensation,
        rating_deviation=rating_deviation,
        worker_utility=worker_utility,
        benefit=benefit,
        total_compensation=total_compensation,
    )


def legacy_columnar_step(
    population: ColumnarPopulation,
    assignment: ContractAssignment,
    excluded_mask: np.ndarray,
    policy: PaymentPolicy,
    policy_weights: Optional[Dict[str, float]],
    previous_feedback: Dict[str, float],
    lagged_payment: bool,
    rng: np.random.Generator,
) -> StepOutcomes:
    """The columnar escape hatch: the reference loop over lazy views.

    Materializes the assignment back to a per-subject contract mapping
    and runs :func:`legacy_step` over the population's object views —
    the generator is consumed by the callee, in the same pinned order.
    This is the oracle :func:`fast_columnar_step` is verified against.
    """
    contracts = assignment.to_mapping(population)
    excluded_ids = {
        population.subject_id(int(row))
        for row in np.flatnonzero(np.asarray(excluded_mask, dtype=bool))
    }
    return legacy_step(
        cast(PopulationModel, population),
        contracts,
        excluded_ids,
        policy,
        policy_weights,
        previous_feedback,
        lagged_payment,
        rng,
    )


def _materialize_columnar(
    population: ColumnarPopulation,
    result: ColumnarStepResult,
    policy: PaymentPolicy,
    policy_weights: Optional[Dict[str, float]],
) -> StepOutcomes:
    """Expand a columnar round back to per-subject outcome objects.

    Off the hot path: used when the engine feeds an eager
    :class:`SimulationLedger` (small populations) and by the
    ``REPRO_CHECK_INVARIANTS`` cross-verification, where the outcomes
    must compare bit-for-bit against the legacy loop's.
    """
    outcomes: Dict[str, SubjectRoundOutcome] = {}
    for row in range(population.n_subjects):
        subject_id = population.subject_id(row)
        worker_type = WORKER_TYPE_ORDER[int(population.type_codes[row])]
        believed = (
            policy_weights.get(subject_id)
            if policy_weights is not None
            else None
        )
        if not result.active[row]:
            outcomes[subject_id] = SubjectRoundOutcome(
                subject_id=subject_id,
                worker_type=worker_type,
                effort=0.0,
                feedback=0.0,
                compensation=0.0,
                feedback_weight=float(population.eval_weight[row]),
                excluded=True,
                n_members=int(population.n_members[row]),
                policy_weight=believed,
            )
            continue
        diagnostics = policy.solve_diagnostics(subject_id)
        outcomes[subject_id] = SubjectRoundOutcome(
            subject_id=subject_id,
            worker_type=worker_type,
            effort=float(result.efforts[row]),
            feedback=float(result.feedback[row]),
            compensation=float(result.compensation[row]),
            feedback_weight=float(population.eval_weight[row]),
            excluded=False,
            n_members=int(population.n_members[row]),
            rating_deviation=float(result.rating_deviation[row]),
            policy_weight=believed,
            worker_utility=float(result.worker_utility[row]),
            fingerprint=(
                diagnostics.fingerprint if diagnostics is not None else None
            ),
            cache_hit=(
                diagnostics.cache_hit if diagnostics is not None else None
            ),
        )
    return StepOutcomes(
        outcomes=outcomes,
        benefit=result.benefit,
        total_compensation=result.total_compensation,
    )


def require_steps_agree(fast: StepOutcomes, legacy: StepOutcomes) -> None:
    """Assert the fast kernel reproduced the legacy loop bit for bit.

    Unlike the sweep contract (stated at :mod:`repro.numerics`
    tolerance), the round kernels share every arithmetic expression and
    the exact draw stream, so the contract is *equality*: tolerance
    here would hide a reordered reduction or a skewed noise stream.

    Raises:
        InvariantViolation: on the first disagreement.
    """
    if set(fast.outcomes) != set(legacy.outcomes):
        raise InvariantViolation(
            "fast round kernel covered different subjects than the legacy "
            f"loop: {sorted(fast.outcomes)!r} != {sorted(legacy.outcomes)!r}"
        )
    for subject_id, reference in legacy.outcomes.items():
        produced = fast.outcomes[subject_id]
        if produced != reference:
            raise InvariantViolation(
                "fast round kernel disagrees with the legacy loop on "
                f"subject {subject_id!r}: {produced!r} != {reference!r}"
            )
    if (
        fast.benefit != legacy.benefit  # noqa: REPRO001 - bit-identity contract
        or fast.total_compensation != legacy.total_compensation  # noqa: REPRO001
    ):
        raise InvariantViolation(
            "fast round kernel disagrees on the round reductions: "
            f"benefit {fast.benefit!r} != {legacy.benefit!r} or pay "
            f"{fast.total_compensation!r} != {legacy.total_compensation!r}"
        )


def require_ledgers_agree(
    fast: SimulationLedger, legacy: SimulationLedger
) -> None:
    """Assert two simulation ledgers recorded bit-identical rounds.

    Compares everything the marketplace *realized* — per-subject
    outcomes, benefit, compensation, utility — and ignores the
    timing/provenance fields (``design_ms``, ``span_id``, ``n_dirty``,
    ``reuse_rate``), which legitimately differ between engine routings.

    Raises:
        InvariantViolation: on the first disagreement.
    """
    if fast.n_rounds != legacy.n_rounds:
        raise InvariantViolation(
            f"ledgers cover different horizons: {fast.n_rounds} rounds != "
            f"{legacy.n_rounds} rounds"
        )
    for produced, reference in zip(fast.records, legacy.records):
        try:
            require_steps_agree(
                StepOutcomes(
                    outcomes=produced.outcomes,
                    benefit=produced.benefit,
                    total_compensation=produced.total_compensation,
                ),
                StepOutcomes(
                    outcomes=reference.outcomes,
                    benefit=reference.benefit,
                    total_compensation=reference.total_compensation,
                ),
            )
        except InvariantViolation as error:
            raise InvariantViolation(
                f"round {reference.round_index}: {error}"
            ) from None
        if produced.utility != reference.utility:  # noqa: REPRO001 - bit-identity
            raise InvariantViolation(
                f"round {reference.round_index}: utility "
                f"{produced.utility!r} != {reference.utility!r}"
            )


class MarketplaceSimulation:
    """Drives a population through repeated task rounds.

    Args:
        population: the assembled worker population.
        objective: the requester's parameters (``mu``, Eq. 5 weights).
        policy: the payment policy under test.
        seed: seed for the feedback-noise generator.
        redesign_every: re-run the policy every this many rounds; 1
            re-designs each round (fully dynamic), larger values model a
            requester that amortizes design cost.
        lagged_payment: pay round ``t`` on round ``t-1``'s realized
            feedback — the paper's literal ``c^t = f(q^{t-1})`` timing
            (Eq. 1).  Round 0 pays the contract's zero-feedback value.
            The default (False) settles each round on its own feedback,
            which has the same steady state and simpler accounting.
        fast_rounds: route rounds through the batched
            :func:`fast_step` kernel instead of the per-subject
            :func:`legacy_step` loop.  ``None`` (the default) follows
            the ``REPRO_FASTPATH`` convention; pass ``True``/``False``
            to force.  Under ``REPRO_CHECK_INVARIANTS=1`` every fast
            round is cross-verified against a legacy replay.  Columnar
            populations route through :func:`fast_columnar_step` /
            :func:`legacy_columnar_step` under the same switch.
        ledger: the round sink; default a fresh eager
            :class:`SimulationLedger`.  Pass a
            :class:`~repro.simulation.streaming.StreamingLedger` to run
            huge populations in bounded memory — with a columnar
            population and fast rounds, per-subject outcomes are staged
            straight from the kernel's columns and never materialized.
        round_workers: shard fast columnar rounds across this many
            persistent worker processes over shared memory
            (:class:`~repro.simulation.parallel.ParallelRoundEngine`).
            Bit-identical to the sequential kernel — noise is drawn by
            the coordinator in the pinned order and sliced per shard.
            Requires a columnar population; call :meth:`close` (or use
            the simulation as a context manager) to release the shared
            segment promptly.  ``None`` (default) stays single-process.
    """

    def __init__(
        self,
        population: Union[PopulationModel, ColumnarPopulation],
        objective: RequesterObjective,
        policy: PaymentPolicy,
        seed: int = 0,
        redesign_every: int = 1,
        lagged_payment: bool = False,
        fast_rounds: Optional[bool] = None,
        ledger: Optional[Union[SimulationLedger, StreamingLedger]] = None,
        round_workers: Optional[int] = None,
    ) -> None:
        if redesign_every < 1:
            raise SimulationError(
                f"redesign_every must be >= 1, got {redesign_every!r}"
            )
        if round_workers is not None:
            if round_workers < 1:
                raise SimulationError(
                    f"round_workers must be >= 1, got {round_workers!r}"
                )
            if not isinstance(population, ColumnarPopulation):
                raise SimulationError(
                    "round_workers requires a ColumnarPopulation: the "
                    "parallel engine shards contiguous columns over "
                    "shared memory"
                )
        self.population = population
        self.objective = objective
        self.policy = policy
        self.redesign_every = redesign_every
        self.lagged_payment = lagged_payment
        self.fast_rounds = fast_rounds
        self._previous_feedback: Dict[str, float] = {}
        self._rng = np.random.default_rng(seed)
        self.ledger: Union[SimulationLedger, StreamingLedger] = (
            ledger if ledger is not None else SimulationLedger()
        )
        if isinstance(self.ledger, StreamingLedger) and (
            type(policy).observe is not PaymentPolicy.observe
        ):
            raise SimulationError(
                "streaming ledgers do not materialize per-subject "
                f"outcomes, but policy {type(policy).__name__} overrides "
                "observe() and would silently read empty rounds; use an "
                "eager SimulationLedger with adaptive policies"
            )
        self._contracts: Optional[Dict[str, Contract]] = None
        self._excluded: Set[str] = set()
        # Subjects that have left the marketplace for good (populated by
        # retention-aware subclasses; the base engine never adds here).
        self._departed: set = set()
        # Cross-round caches of the fast kernel (identity-validated, so
        # a redesign or behaviour flip invalidates them for free).
        self._response_cache: ResponseCache = {}
        self._payment_cache: PaymentCache = PaymentCache()
        # Columnar routing state: the contract assignment and exclusion
        # mask play the role of self._contracts/self._excluded, and the
        # previous-feedback column replaces the feedback dict.
        self._columnar = isinstance(population, ColumnarPopulation)
        self._assignment: Optional[ContractAssignment] = None
        self._columnar_excluded: Optional[np.ndarray] = None
        self._columnar_response_cache: ColumnarResponseCache = {}
        self._previous_feedback_columns: Optional[np.ndarray] = None
        self._departed_mask: Optional[np.ndarray] = None
        self._last_columnar_result: Optional[ColumnarStepResult] = None
        # Parallel round state: the engine (persistent worker pool +
        # shared-memory segment) is built lazily on the first fast
        # columnar round so sequential runs never pay for it.
        self._round_workers = round_workers
        self._parallel_engine: Optional["ParallelRoundEngine"] = None
        if isinstance(population, ColumnarPopulation):
            self._previous_feedback_columns = np.zeros(population.n_subjects)
            self._departed_mask = np.zeros(population.n_subjects, dtype=bool)

    def close(self) -> None:
        """Release parallel-round resources (workers + shared memory).

        Idempotent and safe to skip — the parallel engine also unlinks
        its ``/dev/shm`` segment from a GC/atexit finalizer — but an
        explicit close is how long-lived callers release the segment
        promptly.  Sequential simulations are a no-op.
        """
        if self._parallel_engine is not None:
            self._parallel_engine.close()
            self._parallel_engine = None

    def __enter__(self) -> "MarketplaceSimulation":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _parallel_round_engine(self) -> Optional["ParallelRoundEngine"]:
        if self._round_workers is None:
            return None
        if self._parallel_engine is None:
            # Deferred import: parallel.py wraps this module's kernel,
            # so the dependency edge points parallel -> engine.
            from .parallel import ParallelRoundEngine

            self._parallel_engine = ParallelRoundEngine(
                cast(ColumnarPopulation, self.population),
                n_workers=self._round_workers,
            )
        return self._parallel_engine

    def run(self, n_rounds: int) -> Union[SimulationLedger, StreamingLedger]:
        """Simulate ``n_rounds`` task rounds and return the ledger."""
        if n_rounds < 1:
            raise SimulationError(f"n_rounds must be >= 1, got {n_rounds!r}")
        for _ in range(n_rounds):
            self.step()
        return self.ledger

    def step(self) -> RoundRecord:
        """Simulate one round and return its record."""
        tracer = get_tracer()
        round_index = self.ledger.n_rounds
        with tracer.span("simulation.round", round_index=round_index) as span:
            record = self._step_traced(round_index, tracer, span)
        self.ledger.append(record)
        self.policy.observe(record)
        return record

    def _fast_rounds_enabled(self) -> bool:
        return (
            self.fast_rounds
            if self.fast_rounds is not None
            else fastpath_enabled()
        )

    def _step_traced(self, round_index, tracer, span) -> RoundRecord:
        """One round's work, run inside the ``simulation.round`` span."""
        if self._columnar:
            return self._step_columnar(round_index, tracer, span)
        # Strategic agents may change behaviour between rounds; inform
        # them before the requester re-designs, so this round's contracts
        # face this round's behaviour.
        for agent in self.population.agents.values():
            agent.on_round(round_index)
        design_ms: Optional[float] = None
        stats = None
        if self._contracts is None or round_index % self.redesign_every == 0:
            design_start = tracer.clock()
            self._contracts = self.policy.contracts(self.population)
            self._excluded = self.policy.excluded_subjects(self.population)
            design_ms = (tracer.clock() - design_start) * 1e3
            # Which Section IV-C sweep engine priced this round's
            # contracts (REPRO_FASTPATH routing, see repro.core.sweep).
            span.set("fastpath", fastpath_enabled())
            stats = self.policy.redesign_stats()
            if stats is not None:
                span.set("n_dirty", stats.n_dirty)
                span.set("reuse_rate", stats.reuse_rate)
        policy_weights = self.policy.current_weights(self.population)
        excluded_ids = set(self._excluded) | self._departed
        fast = self._fast_rounds_enabled()
        span.set("round_fastpath", fast)

        if fast:
            check = invariants_enabled()
            if check:
                # Clone the generator state and payment history so the
                # verifying legacy replay consumes the identical stream
                # without advancing the real one twice.
                replay_rng = np.random.default_rng(0)
                replay_rng.bit_generator.state = self._rng.bit_generator.state
                replay_feedback = dict(self._previous_feedback)
            result = fast_step(
                self.population,
                self._contracts,
                excluded_ids,
                self.policy,
                policy_weights,
                self._previous_feedback,
                self.lagged_payment,
                self._rng,
                response_cache=self._response_cache,
                payment_cache=self._payment_cache,
            )
            if check:
                reference = legacy_step(
                    self.population,
                    self._contracts,
                    excluded_ids,
                    self.policy,
                    policy_weights,
                    replay_feedback,
                    self.lagged_payment,
                    replay_rng,
                )
                require_steps_agree(result, reference)
        else:
            result = legacy_step(
                self.population,
                self._contracts,
                excluded_ids,
                self.policy,
                policy_weights,
                self._previous_feedback,
                self.lagged_payment,
                self._rng,
            )

        record = RoundRecord(
            round_index=round_index,
            outcomes=result.outcomes,
            benefit=result.benefit,
            total_compensation=result.total_compensation,
            utility=self.objective.params.utility(
                result.benefit, result.total_compensation
            ),
            design_ms=design_ms,
            span_id=span.span_id or None,
            n_dirty=stats.n_dirty if stats is not None else None,
            reuse_rate=stats.reuse_rate if stats is not None else None,
        )
        span.set("n_subjects", len(result.outcomes))
        span.set(
            "n_excluded",
            sum(1 for o in result.outcomes.values() if o.excluded),
        )
        span.set("utility", record.utility)
        if design_ms is not None:
            span.set("design_ms", design_ms)
        return record

    def _previous_feedback_mapping(self) -> Dict[str, float]:
        """The previous-feedback column as the object path's dict.

        The column stores 0.0 for never-paid subjects, which is exactly
        the dict's ``.get(subject_id, 0.0)`` default — so the full
        materialization is equivalent to the sparse dict.
        """
        population = cast(ColumnarPopulation, self.population)
        assert self._previous_feedback_columns is not None
        return {
            population.subject_id(row): float(value)
            for row, value in enumerate(self._previous_feedback_columns)
        }

    def _step_columnar(self, round_index, tracer, span) -> RoundRecord:
        """One columnar round inside the ``simulation.round`` span.

        Mirrors :meth:`_step_traced` with columns in place of objects:
        contracts come as an archetype table plus per-subject codes,
        exclusion is a boolean mask, and — when the ledger streams —
        per-subject outcomes are staged as arrays and never expanded.
        The strategic ``on_round`` fan-out is skipped entirely: the
        columnar store only admits agents whose behaviour is constant
        across rounds (``from_population`` rejects the rest).
        """
        population = cast(ColumnarPopulation, self.population)
        assert self._previous_feedback_columns is not None
        assert self._departed_mask is not None
        design_ms: Optional[float] = None
        stats = None
        if self._assignment is None or round_index % self.redesign_every == 0:
            design_start = tracer.clock()
            self._assignment = self.policy.contracts_columnar(population)
            self._columnar_excluded = self.policy.excluded_mask(population)
            design_ms = (tracer.clock() - design_start) * 1e3
            span.set("fastpath", fastpath_enabled())
            stats = self.policy.redesign_stats()
            if stats is not None:
                span.set("n_dirty", stats.n_dirty)
                span.set("reuse_rate", stats.reuse_rate)
        assert self._assignment is not None
        assert self._columnar_excluded is not None
        policy_weights = self.policy.current_weights(
            cast(PopulationModel, population)
        )
        excluded_mask = (
            self._columnar_excluded | self._departed_mask | population.excluded
        )
        fast = self._fast_rounds_enabled()
        span.set("round_fastpath", fast)
        streaming = isinstance(self.ledger, StreamingLedger)

        outcomes: Dict[str, SubjectRoundOutcome] = {}
        if fast:
            check = invariants_enabled()
            if check:
                replay_rng = np.random.default_rng(0)
                replay_rng.bit_generator.state = self._rng.bit_generator.state
                replay_feedback = self._previous_feedback_mapping()
            engine = self._parallel_round_engine()
            if engine is not None:
                from .parallel import (
                    parallel_columnar_step,
                    require_parallel_steps_agree,
                )

                if check:
                    fast_rng = np.random.default_rng(0)
                    fast_rng.bit_generator.state = (
                        self._rng.bit_generator.state
                    )
                    fast_feedback = self._previous_feedback_columns.copy()
                result = parallel_columnar_step(
                    population,
                    self._assignment,
                    excluded_mask,
                    self._previous_feedback_columns,
                    self.lagged_payment,
                    self._rng,
                    engine,
                )
                if check:
                    sequential = fast_columnar_step(
                        population,
                        self._assignment,
                        excluded_mask,
                        fast_feedback,
                        self.lagged_payment,
                        fast_rng,
                    )
                    require_parallel_steps_agree(result, sequential)
                span.set("round_workers", engine.n_workers)
            else:
                result = fast_columnar_step(
                    population,
                    self._assignment,
                    excluded_mask,
                    self._previous_feedback_columns,
                    self.lagged_payment,
                    self._rng,
                    response_cache=self._columnar_response_cache,
                    payment_cache=self._payment_cache,
                )
            self._last_columnar_result = result
            materialized: Optional[StepOutcomes] = None
            if check:
                reference = legacy_columnar_step(
                    population,
                    self._assignment,
                    excluded_mask,
                    self.policy,
                    policy_weights,
                    replay_feedback,
                    self.lagged_payment,
                    replay_rng,
                )
                materialized = _materialize_columnar(
                    population, result, self.policy, policy_weights
                )
                require_steps_agree(materialized, reference)
            benefit = result.benefit
            total_compensation = result.total_compensation
            if streaming:
                cast(StreamingLedger, self.ledger).stage_arrays(
                    type_codes=population.type_codes,
                    n_members=population.n_members,
                    excluded=~result.active,
                    efforts=result.efforts,
                    feedback=result.feedback,
                    compensation=result.compensation,
                    rating_deviation=result.rating_deviation,
                    worker_utility=result.worker_utility,
                )
            else:
                if materialized is None:
                    materialized = _materialize_columnar(
                        population, result, self.policy, policy_weights
                    )
                outcomes = materialized.outcomes
            n_subjects = population.n_subjects
            n_excluded = n_subjects - int(np.count_nonzero(result.active))
        else:
            previous = self._previous_feedback_mapping()
            step_result = legacy_columnar_step(
                population,
                self._assignment,
                excluded_mask,
                self.policy,
                policy_weights,
                previous,
                self.lagged_payment,
                self._rng,
            )
            if self.lagged_payment:
                for row in range(population.n_subjects):
                    self._previous_feedback_columns[row] = previous[
                        population.subject_id(row)
                    ]
            self._last_columnar_result = None
            outcomes = step_result.outcomes
            benefit = step_result.benefit
            total_compensation = step_result.total_compensation
            # A streaming ledger absorbs these materialized outcomes
            # from the record itself — the slow path is the escape
            # hatch, not the bounded-memory path.
            n_subjects = len(outcomes)
            n_excluded = sum(1 for o in outcomes.values() if o.excluded)

        record = RoundRecord(
            round_index=round_index,
            outcomes=outcomes,
            benefit=benefit,
            total_compensation=total_compensation,
            utility=self.objective.params.utility(
                benefit, total_compensation
            ),
            design_ms=design_ms,
            span_id=span.span_id or None,
            n_dirty=stats.n_dirty if stats is not None else None,
            reuse_rate=stats.reuse_rate if stats is not None else None,
        )
        span.set("n_subjects", n_subjects)
        span.set("n_excluded", n_excluded)
        span.set("utility", record.utility)
        if design_ms is not None:
            span.set("design_ms", design_ms)
        return record
