"""Round-based crowdsourcing marketplace simulation."""

from .adaptive import AdaptiveDynamicPolicy, EwmaDeviationTracker
from .engine import (
    ColumnarStepResult,
    MarketplaceSimulation,
    StepOutcomes,
    fast_columnar_step,
    fast_step,
    legacy_columnar_step,
    legacy_step,
    require_ledgers_agree,
    require_steps_agree,
)
from .ledger import RoundRecord, SimulationLedger, SubjectRoundOutcome
from .parallel import (
    ParallelRoundEngine,
    SharedColumnarView,
    parallel_columnar_step,
    require_parallel_steps_agree,
)
from .retention import RetentionModel, RetentionSimulation
from .policies import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    PaymentPolicy,
)
from .streaming import (
    OutcomeSpill,
    StreamingHistogram,
    StreamingLedger,
    require_ledger_views_agree,
)

__all__ = [
    "AdaptiveDynamicPolicy",
    "ColumnarStepResult",
    "EwmaDeviationTracker",
    "MarketplaceSimulation",
    "OutcomeSpill",
    "ParallelRoundEngine",
    "RetentionModel",
    "RetentionSimulation",
    "RoundRecord",
    "SimulationLedger",
    "StepOutcomes",
    "SharedColumnarView",
    "StreamingHistogram",
    "StreamingLedger",
    "SubjectRoundOutcome",
    "DynamicContractPolicy",
    "ExclusionPolicy",
    "FixedPaymentPolicy",
    "PaymentPolicy",
    "fast_columnar_step",
    "fast_step",
    "legacy_columnar_step",
    "legacy_step",
    "parallel_columnar_step",
    "require_ledger_views_agree",
    "require_ledgers_agree",
    "require_parallel_steps_agree",
    "require_steps_agree",
]
