"""Round-based crowdsourcing marketplace simulation."""

from .adaptive import AdaptiveDynamicPolicy, EwmaDeviationTracker
from .engine import MarketplaceSimulation
from .ledger import RoundRecord, SimulationLedger, SubjectRoundOutcome
from .retention import RetentionModel, RetentionSimulation
from .policies import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    PaymentPolicy,
)

__all__ = [
    "AdaptiveDynamicPolicy",
    "EwmaDeviationTracker",
    "MarketplaceSimulation",
    "RetentionModel",
    "RetentionSimulation",
    "RoundRecord",
    "SimulationLedger",
    "SubjectRoundOutcome",
    "DynamicContractPolicy",
    "ExclusionPolicy",
    "FixedPaymentPolicy",
    "PaymentPolicy",
]
