"""Round-based crowdsourcing marketplace simulation."""

from .adaptive import AdaptiveDynamicPolicy, EwmaDeviationTracker
from .engine import (
    MarketplaceSimulation,
    StepOutcomes,
    fast_step,
    legacy_step,
    require_ledgers_agree,
    require_steps_agree,
)
from .ledger import RoundRecord, SimulationLedger, SubjectRoundOutcome
from .retention import RetentionModel, RetentionSimulation
from .policies import (
    DynamicContractPolicy,
    ExclusionPolicy,
    FixedPaymentPolicy,
    PaymentPolicy,
)

__all__ = [
    "AdaptiveDynamicPolicy",
    "EwmaDeviationTracker",
    "MarketplaceSimulation",
    "RetentionModel",
    "RetentionSimulation",
    "RoundRecord",
    "SimulationLedger",
    "StepOutcomes",
    "SubjectRoundOutcome",
    "DynamicContractPolicy",
    "ExclusionPolicy",
    "FixedPaymentPolicy",
    "PaymentPolicy",
    "fast_step",
    "legacy_step",
    "require_ledgers_agree",
    "require_steps_agree",
]
