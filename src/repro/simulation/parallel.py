"""Row-sharded parallel columnar rounds over POSIX shared memory.

:func:`~repro.simulation.engine.fast_columnar_step` runs a 10M-subject
round on one core.  This module shards it across a persistent pool of
worker processes with **zero copies of the per-subject columns**: one
``multiprocessing.shared_memory`` segment holds every column the kernel
reads or writes (~130 B/subject), each worker attaches a
:class:`SharedColumnarView` over its contiguous row slice, and runs the
*unmodified* sequential kernel on it.

Bit-for-bit determinism is preserved by keeping all randomness in the
coordinator.  :func:`parallel_columnar_step` computes the active mask
and per-subject draw slots exactly as the sequential kernel does, draws
the one pinned-order ``standard_normal`` block itself (the only draw
site — manifested in ``draw_order.toml``), and hands each shard its
contiguous slice of that block through shared memory.  Inside a shard
the generator is replaced by :class:`_PredrawnSlice`, which returns the
parent's slice and verifies the shard asked for exactly the slot count
the parent allotted.  Because contiguous row shards own contiguous draw
slots (slots are laid out per active row, ascending), every per-subject
output is bit-identical to the sequential kernel; the two scalar
reductions (benefit, total compensation) are recomputed by the parent
with the same left-to-right ``cumsum`` over the merged full columns, so
they cannot be perturbed by per-shard partial sums reassociating
floats.  :func:`require_parallel_steps_agree` pins the equivalence and
is replayed every round under ``REPRO_CHECK_INVARIANTS=1``.

Fault tolerance: a shard that dies mid-round (or wedges past the
optional timeout) is retired and its slice is recomputed inline by the
coordinator over the same shared arrays — the round still completes,
bit-identically, and the engine degrades toward fully-inline execution.
The segment is unlinked on :meth:`ParallelRoundEngine.close`, by a GC
finalizer, and at interpreter exit, so ``/dev/shm`` is never leaked.
"""

from __future__ import annotations

import multiprocessing
import os
import uuid
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, cast

import numpy as np

from ..analysis.invariants import InvariantViolation
from ..core.contract import Contract
from ..core.effort import QuadraticEffort
from ..errors import SimulationError
from ..numerics import ABS_TOL
from ..serving.pool import ContractAssignment
from ..types import WorkerParameters, WorkerType
from ..workers.columnar import (
    WORKER_TYPE_ORDER,
    ColumnarPopulation,
    ColumnarResponseCache,
)
from .engine import (
    ColumnarStepResult,
    PaymentCache,
    fast_columnar_step,
)

__all__ = [
    "ParallelRoundEngine",
    "SharedColumnarView",
    "parallel_columnar_step",
    "require_parallel_steps_agree",
]

#: Prefix of every shared segment this module creates.  Unique per
#: engine (pid + random token); tests scan ``/dev/shm`` for leaks by it.
SHM_NAME_PREFIX = "repro-par"

#: Columns the kernel reads that are fixed for the engine's lifetime.
_STATIC_COLUMNS: Tuple[Tuple[str, type], ...] = (
    ("feedback_noise", np.float64),
    ("rating_noise", np.float64),
    ("rating_bias", np.float64),
    ("omega", np.float64),
    ("beta", np.float64),
    ("eval_weight", np.float64),
    ("response_codes", np.int64),
)

#: Columns the coordinator writes before each round.
_INPUT_COLUMNS: Tuple[Tuple[str, type], ...] = (
    ("codes", np.int64),
    ("excluded", np.bool_),
    ("previous_feedback", np.float64),
)

#: Columns each shard writes for its row slice.
_OUTPUT_COLUMNS: Tuple[Tuple[str, type], ...] = (
    ("efforts", np.float64),
    ("feedback", np.float64),
    ("compensation", np.float64),
    ("rating_deviation", np.float64),
    ("worker_utility", np.float64),
)


def _segment_layout(n_subjects: int) -> Tuple[Dict[str, Tuple[int, Any, int]], int]:
    """Column name -> (byte offset, dtype, length) plus the total size.

    Columns are laid out back to back, each padded to 8-byte alignment.
    The ``draws`` column holds the round's structured noise block: at
    most two slots (feedback + rating) per subject.
    """
    specs: List[Tuple[str, Any, int]] = [
        (name, dtype, n_subjects)
        for name, dtype in (*_STATIC_COLUMNS, *_INPUT_COLUMNS, *_OUTPUT_COLUMNS)
    ]
    specs.append(("draws", np.float64, 2 * n_subjects))
    layout: Dict[str, Tuple[int, Any, int]] = {}
    offset = 0
    for name, dtype, count in specs:
        layout[name] = (offset, dtype, count)
        nbytes = int(np.dtype(dtype).itemsize) * count
        offset += (nbytes + 7) // 8 * 8
    return layout, max(offset, 8)


def _attach_columns(buffer: memoryview, n_subjects: int) -> Dict[str, np.ndarray]:
    """NumPy views over every column of a segment's buffer (no copies)."""
    layout, _ = _segment_layout(n_subjects)
    return {
        name: np.ndarray((count,), dtype=dtype, buffer=buffer, offset=offset)
        for name, (offset, dtype, count) in layout.items()
    }


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Attaching registers the segment with the per-process resource
    tracker on Pythons < 3.13, which would unlink it when the *worker*
    exits even though the coordinator owns it; ``track=False`` (3.13+)
    or an explicit unregister keeps ownership with the creator.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        # Pre-3.13: suppress the tracker's REGISTER for this attach
        # (sending UNREGISTER after the fact races other shards and
        # spams the shared tracker process with KeyErrors).
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]


class _PredrawnSlice:
    """Stands in for the round generator inside a shard.

    The coordinator already consumed the real generator in the pinned
    order; a shard's "draw" is just its contiguous slice of that block.
    The stand-in verifies the shard asks for *exactly* the slot count
    the parent allotted — any mismatch means the shard's active/noise
    predicates diverged from the parent's, which must fail loudly
    rather than silently shear the stream.
    """

    def __init__(self, draws: np.ndarray) -> None:
        self._draws = draws
        self.consumed = False

    def standard_normal(self, size: int) -> np.ndarray:
        if self.consumed:
            raise SimulationError(
                "shard asked for a second draw block; the kernel draws "
                "exactly once per round"
            )
        if int(size) != int(self._draws.shape[0]):
            raise SimulationError(
                f"shard draw-slot mismatch: kernel wants {int(size)} "
                f"draws, parent allotted {int(self._draws.shape[0])}"
            )
        self.consumed = True
        return self._draws

    def verify_consumed(self) -> None:
        if self._draws.shape[0] and not self.consumed:
            raise SimulationError(
                f"shard left {int(self._draws.shape[0])} parent-drawn "
                "noise slots unconsumed"
            )


class _ShardAssignment:
    """The two assignment fields the kernel reads, sliced to a shard."""

    __slots__ = ("contracts", "codes")

    def __init__(
        self, contracts: Tuple[Contract, ...], codes: np.ndarray
    ) -> None:
        self.contracts = contracts
        self.codes = codes


class SharedColumnarView:
    """A contiguous row slice of a :class:`ColumnarPopulation`, backed
    by shared memory.

    Duck-types exactly the population surface
    :func:`~repro.simulation.engine.fast_columnar_step` touches —
    ``n_subjects``, the six float columns, ``response_codes``,
    ``n_response_archetypes``, ``respond_unique`` — over zero-copy
    views into the segment.  ``respond_unique`` delegates to the real
    :meth:`ColumnarPopulation.respond_unique` implementation (it only
    reads the attributes above), so a shard runs the identical code
    path as the sequential kernel; behaviour-archetype objects are
    rebuilt from the small pickled representative table exactly as
    :meth:`ColumnarPopulation._response_objects` builds them.
    """

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        lo: int,
        hi: int,
        rep_table: Dict[str, np.ndarray],
        n_response_archetypes: int,
    ) -> None:
        self.n_subjects = hi - lo
        self.feedback_noise = arrays["feedback_noise"][lo:hi]
        self.rating_noise = arrays["rating_noise"][lo:hi]
        self.rating_bias = arrays["rating_bias"][lo:hi]
        self.omega = arrays["omega"][lo:hi]
        self.beta = arrays["beta"][lo:hi]
        self.eval_weight = arrays["eval_weight"][lo:hi]
        self.response_codes = arrays["response_codes"][lo:hi]
        self.n_response_archetypes = n_response_archetypes
        self._rep_table = rep_table
        self._resp_objects: Dict[int, Tuple[QuadraticEffort, WorkerParameters]] = {}

    def _response_objects(
        self, code: int
    ) -> Tuple[QuadraticEffort, WorkerParameters]:
        objects = self._resp_objects.get(code)
        if objects is None:
            table = self._rep_table
            psi = QuadraticEffort(
                r2=float(table["act_r2"][code]),
                r1=float(table["act_r1"][code]),
                r0=float(table["act_r0"][code]),
            )
            worker_type = WORKER_TYPE_ORDER[int(table["type_codes"][code])]
            if worker_type is WorkerType.HONEST:
                params = WorkerParameters.honest(
                    beta=float(table["beta"][code])
                )
            else:
                params = WorkerParameters.malicious(
                    beta=float(table["beta"][code]),
                    omega=float(table["omega"][code]),
                    collusive=worker_type is WorkerType.COLLUSIVE_MALICIOUS,
                )
            objects = (psi, params)
            self._resp_objects[code] = objects
        return objects

    def respond_unique(
        self,
        contracts: Sequence[Contract],
        contract_codes: np.ndarray,
        rows: np.ndarray,
        cache: Optional[ColumnarResponseCache] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return ColumnarPopulation.respond_unique(
            cast(ColumnarPopulation, self),
            contracts,
            contract_codes,
            rows,
            cache=cache,
        )


def _run_shard(
    arrays: Dict[str, np.ndarray],
    lo: int,
    hi: int,
    rep_table: Dict[str, np.ndarray],
    n_response_archetypes: int,
    contracts: Tuple[Contract, ...],
    lagged_payment: bool,
    draw_lo: int,
    draw_hi: int,
    response_cache: Optional[ColumnarResponseCache],
    payment_cache: Optional[PaymentCache],
) -> None:
    """One shard's share of a round, over shared arrays.

    Runs the unmodified sequential kernel on a :class:`SharedColumnarView`
    of rows ``[lo, hi)`` with the parent's draw slice ``[draw_lo,
    draw_hi)`` and writes the five output columns (and, when lagged, the
    previous-feedback slice) back into the segment.  Callable both from
    a worker process and inline from the coordinator (crash fallback) —
    both paths are bit-identical because the computation only depends on
    the shared inputs.
    """
    view = SharedColumnarView(arrays, lo, hi, rep_table, n_response_archetypes)
    assignment = _ShardAssignment(contracts, arrays["codes"][lo:hi])
    stub = _PredrawnSlice(arrays["draws"][draw_lo:draw_hi])
    result = fast_columnar_step(
        cast(ColumnarPopulation, view),
        cast(ContractAssignment, assignment),
        arrays["excluded"][lo:hi],
        arrays["previous_feedback"][lo:hi],
        lagged_payment,
        cast(np.random.Generator, stub),
        response_cache=response_cache,
        payment_cache=payment_cache,
    )
    stub.verify_consumed()
    arrays["efforts"][lo:hi] = result.efforts
    arrays["feedback"][lo:hi] = result.feedback
    arrays["compensation"][lo:hi] = result.compensation
    arrays["rating_deviation"][lo:hi] = result.rating_deviation
    arrays["worker_utility"][lo:hi] = result.worker_utility


def _shard_worker_main(
    conn: Any,
    shm_name: str,
    n_subjects: int,
    lo: int,
    hi: int,
    rep_table: Dict[str, np.ndarray],
    n_response_archetypes: int,
) -> None:
    """A persistent shard worker: attach once, serve rounds until EOF.

    Per-round traffic is O(K): the archetype contract table, the lagged
    flag and the shard's draw-slice bounds.  Contracts are interned by
    content key so the identity-validated response cache hits across
    rounds even though each round's pickle rebuilds new objects.
    """
    segment = _attach_segment(shm_name)
    arrays = _attach_columns(segment.buf, n_subjects)
    response_cache: ColumnarResponseCache = {}
    payment_cache = PaymentCache()
    interned: Dict[Tuple[Any, ...], Contract] = {}
    try:
        while True:
            try:
                op, payload = conn.recv()
            except (EOFError, OSError):
                break
            if op == "shutdown":
                try:
                    conn.send(("ok", None))
                except (OSError, BrokenPipeError):
                    pass
                break
            if op != "round":
                conn.send(("error", f"unknown op {op!r}"))
                continue
            try:
                contracts, lagged_payment, draw_lo, draw_hi = payload
                contracts = tuple(
                    interned.setdefault(contract.content_key(), contract)
                    for contract in contracts
                )
                _run_shard(
                    arrays,
                    lo,
                    hi,
                    rep_table,
                    n_response_archetypes,
                    contracts,
                    lagged_payment,
                    draw_lo,
                    draw_hi,
                    response_cache,
                    payment_cache,
                )
                conn.send(("ok", None))
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except (OSError, BrokenPipeError):
                    break
    finally:
        del arrays
        segment.close()
        try:
            conn.close()
        except OSError:
            pass


class _WorkerHandle:
    __slots__ = ("process", "conn", "lo", "hi")

    def __init__(self, process: Any, conn: Any, lo: int, hi: int) -> None:
        self.process = process
        self.conn = conn
        self.lo = lo
        self.hi = hi


def _release_resources(
    segment: shared_memory.SharedMemory,
    processes: Tuple[Any, ...],
    conns: Tuple[Any, ...],
) -> None:
    """Tear everything down; never raises.  Runs at close/GC/atexit."""
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        except Exception:
            pass
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


class ParallelRoundEngine:
    """Persistent pool of shard workers over one shared segment.

    Partitions ``population`` into ``n_workers`` contiguous row slices
    (``edges[i] = i * n // n_workers``), copies the static behaviour
    columns into a fresh ``/dev/shm`` segment once, and forks one
    worker per slice.  Each round, :meth:`run_round` publishes the
    per-round inputs (codes, exclusion, previous feedback, the parent's
    draw block) into the segment, sends each worker an O(K) message,
    and merges the output columns the shards wrote in place.

    Crash handling: a worker whose pipe dies (SIGKILL, crash, timeout)
    is retired and its slice is computed inline by the coordinator over
    the same arrays — bit-identical, so the round always completes;
    ``degraded`` reports that at least one shard has fallen back.  The
    segment is unlinked by :meth:`close`, by a GC finalizer, or at
    interpreter exit, whichever comes first.
    """

    def __init__(
        self,
        population: ColumnarPopulation,
        n_workers: int,
        round_timeout: Optional[float] = None,
    ) -> None:
        if not isinstance(population, ColumnarPopulation):
            raise SimulationError(
                "ParallelRoundEngine requires a ColumnarPopulation"
            )
        if n_workers < 1:
            raise SimulationError(
                f"n_workers must be >= 1, got {n_workers!r}"
            )
        n = population.n_subjects
        self._population = population
        self._n_workers = min(int(n_workers), n)
        self._round_timeout = round_timeout
        self._edges = (
            np.arange(self._n_workers + 1, dtype=np.int64) * n
        ) // self._n_workers
        self._degraded = False
        self._closed = False
        # Snapshot the column objects the segment copies; a population
        # whose behaviour columns are later *replaced* (update_design_
        # columns swaps array objects) must rebuild the engine, and
        # run_round checks identity to fail loudly instead of silently
        # serving stale columns.
        self._sources = {
            "feedback_noise": population.feedback_noise,
            "rating_noise": population.rating_noise,
            "rating_bias": population.rating_bias,
            "omega": population.omega,
            "beta": population.beta,
            "eval_weight": population.eval_weight,
            "response_codes": population.response_codes,
        }
        self._rep_table = population.response_archetype_table()
        self._n_response = population.n_response_archetypes
        _, size = _segment_layout(n)
        name = f"{SHM_NAME_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._segment = shared_memory.SharedMemory(
            name=name, create=True, size=size
        )
        self._arrays = _attach_columns(self._segment.buf, n)
        for column in self._sources:
            np.copyto(self._arrays[column], self._sources[column])
        # Coordinator-side caches for inline (fallback) shard runs.
        self._local_response_cache: ColumnarResponseCache = {}
        self._local_payment_cache = PaymentCache()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: List[Optional[_WorkerHandle]] = []
        for index in range(self._n_workers):
            lo = int(self._edges[index])
            hi = int(self._edges[index + 1])
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    name,
                    n,
                    lo,
                    hi,
                    self._rep_table,
                    self._n_response,
                ),
                name=f"repro-par-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process, parent_conn, lo, hi))
        self._finalizer = weakref.finalize(
            self,
            _release_resources,
            self._segment,
            tuple(handle.process for handle in self._workers if handle),
            tuple(handle.conn for handle in self._workers if handle),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Configured shard count (clamped to the population size)."""
        return self._n_workers

    @property
    def degraded(self) -> bool:
        """True once any shard has been retired to inline fallback."""
        return self._degraded

    @property
    def shard_edges(self) -> Tuple[int, ...]:
        """Row boundaries of the shards (length ``n_workers + 1``)."""
        return tuple(int(edge) for edge in self._edges)

    @property
    def segment_name(self) -> str:
        """The shared segment's name (for leak checks in tests)."""
        return self._segment.name

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the live shard workers (retired shards excluded)."""
        return tuple(
            handle.process.pid
            for handle in self._workers
            if handle is not None and handle.process.pid is not None
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and unlink the segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None or not handle.process.is_alive():
                continue
            try:
                handle.conn.send(("shutdown", None))
            except (OSError, ValueError, BrokenPipeError):
                pass
        self._finalizer()

    def __enter__(self) -> "ParallelRoundEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _retire(self, index: int) -> None:
        handle = self._workers[index]
        if handle is None:
            return
        self._workers[index] = None
        self._degraded = True
        try:
            handle.conn.close()
        except Exception:
            pass
        try:
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2.0)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------

    def _check_population(self, population: ColumnarPopulation) -> None:
        if population is not self._population:
            raise SimulationError(
                "parallel engine is bound to a different population; "
                "build a new ParallelRoundEngine"
            )
        for column, source in self._sources.items():
            if getattr(population, column) is not source:
                raise SimulationError(
                    f"population column {column!r} was replaced after the "
                    "engine snapshot; rebuild the ParallelRoundEngine"
                )

    def run_round(
        self,
        population: ColumnarPopulation,
        assignment: ContractAssignment,
        excluded_mask: np.ndarray,
        previous_feedback: np.ndarray,
        lagged_payment: bool,
        active: np.ndarray,
        rows: np.ndarray,
        offsets: np.ndarray,
        total_draws: int,
        draws: Optional[np.ndarray],
    ) -> ColumnarStepResult:
        """Execute one round's shards and merge their columns.

        The caller (:func:`parallel_columnar_step`) has already drawn
        the noise block; this method only moves data and dispatches.
        """
        if self._closed:
            raise SimulationError("parallel engine is closed")
        self._check_population(population)
        arrays = self._arrays
        np.copyto(arrays["codes"], assignment.codes)
        np.copyto(arrays["excluded"], np.asarray(excluded_mask, dtype=bool))
        np.copyto(arrays["previous_feedback"], previous_feedback)
        if total_draws:
            assert draws is not None
            arrays["draws"][:total_draws] = draws

        # Each shard's draw slice: slots are laid out per active row in
        # ascending order, so the slice owned by rows [lo, hi) is
        # [offsets[first active row >= lo], offsets[first active row >=
        # hi]) with total_draws padding the right edge.
        padded = np.append(offsets, np.int64(total_draws))
        positions = np.searchsorted(rows, self._edges)
        draw_edges = padded[positions]

        contracts = assignment.contracts
        pending: List[Tuple[int, _WorkerHandle]] = []
        inline: List[int] = []
        for index in range(self._n_workers):
            handle = self._workers[index]
            if handle is None:
                inline.append(index)
                continue
            message = (
                "round",
                (
                    contracts,
                    lagged_payment,
                    int(draw_edges[index]),
                    int(draw_edges[index + 1]),
                ),
            )
            try:
                handle.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                self._retire(index)
                inline.append(index)
                continue
            pending.append((index, handle))
        for index, handle in pending:
            if not self._collect(index, handle):
                inline.append(index)
        for index in inline:
            self._run_inline(
                index, contracts, lagged_payment, draw_edges, previous_feedback
            )

        efforts = arrays["efforts"].copy()
        feedback = arrays["feedback"].copy()
        compensation = arrays["compensation"].copy()
        rating_deviation = arrays["rating_deviation"].copy()
        worker_utility = arrays["worker_utility"].copy()
        if lagged_payment:
            # The kernel mutates the previous-feedback column in place;
            # shards did so inside the segment, so publish it back.
            np.copyto(previous_feedback, arrays["previous_feedback"])
        # The two scalar reductions accumulate strictly left to right
        # over the *merged* columns: per-shard partial sums would
        # reassociate the floating-point adds and drift from the
        # sequential kernel's bits.
        benefit = float(
            np.cumsum(population.eval_weight[rows] * feedback[rows])[-1]
        )
        total_compensation = float(np.cumsum(compensation[rows])[-1])
        return ColumnarStepResult(
            active=active,
            efforts=efforts,
            feedback=feedback,
            compensation=compensation,
            rating_deviation=rating_deviation,
            worker_utility=worker_utility,
            benefit=benefit,
            total_compensation=total_compensation,
        )

    def _collect(self, index: int, handle: _WorkerHandle) -> bool:
        """Await one shard's reply; False means "recompute inline"."""
        try:
            if self._round_timeout is not None and not handle.conn.poll(
                self._round_timeout
            ):
                raise EOFError(
                    f"shard {index} exceeded {self._round_timeout}s"
                )
            status, detail = handle.conn.recv()
        except (EOFError, OSError, ConnectionResetError):
            self._retire(index)
            return False
        if status != "ok":
            # An application error inside the kernel is deterministic:
            # the inline replay would fail identically, so surface it.
            raise SimulationError(f"shard {index} failed: {detail}")
        return True

    def _run_inline(
        self,
        index: int,
        contracts: Tuple[Contract, ...],
        lagged_payment: bool,
        draw_edges: np.ndarray,
        previous_feedback: np.ndarray,
    ) -> None:
        """Recompute one shard's slice in the coordinator.

        A worker that died mid-round may have partially written its
        previous-feedback slice; restore it from the caller's pristine
        column (unmodified until merge) before replaying so the lagged
        basis is read exactly as the worker would have read it.
        """
        lo = int(self._edges[index])
        hi = int(self._edges[index + 1])
        self._arrays["previous_feedback"][lo:hi] = previous_feedback[lo:hi]
        _run_shard(
            self._arrays,
            lo,
            hi,
            self._rep_table,
            self._n_response,
            contracts,
            lagged_payment,
            int(draw_edges[index]),
            int(draw_edges[index + 1]),
            self._local_response_cache,
            self._local_payment_cache,
        )


def parallel_columnar_step(
    population: ColumnarPopulation,
    assignment: ContractAssignment,
    excluded_mask: np.ndarray,
    previous_feedback: np.ndarray,
    lagged_payment: bool,
    rng: np.random.Generator,
    engine: ParallelRoundEngine,
) -> ColumnarStepResult:
    """The sharded round kernel — bit-identical to the sequential one.

    All randomness stays here, in the coordinator: the active mask and
    per-subject draw slots are computed exactly as in
    :func:`~repro.simulation.engine.fast_columnar_step` and the single
    pinned-order ``standard_normal`` block is drawn from ``rng`` before
    any shard runs (``rng`` advances exactly as in the sequential
    kernel).  Shards then consume contiguous slices of that block
    through shared memory via :meth:`ParallelRoundEngine.run_round`.

    Args:
        population: the columnar population the engine was built for.
        assignment: archetype contract table plus per-subject codes.
        excluded_mask: per-subject exclusion mask (policy + departures).
        previous_feedback: per-subject previous-round feedback column;
            mutated in place when ``lagged_payment`` is set, exactly as
            the sequential kernel mutates it.
        lagged_payment: pay this round on last round's feedback (Eq. 1).
        rng: the round's noise generator (pinned draw order).
        engine: the persistent shard pool to execute on.
    """
    codes = assignment.codes
    n_subjects = population.n_subjects
    active = ~np.asarray(excluded_mask, dtype=bool) & (codes >= 0)
    rows = np.flatnonzero(active)
    if rows.size == 0:
        return ColumnarStepResult(
            active=active,
            efforts=np.zeros(n_subjects),
            feedback=np.zeros(n_subjects),
            compensation=np.zeros(n_subjects),
            rating_deviation=np.zeros(n_subjects),
            worker_utility=np.zeros(n_subjects),
            benefit=0.0,
            total_compensation=0.0,
        )
    feedback_noise = population.feedback_noise[rows]
    rating_noise = population.rating_noise[rows]
    needs_feedback = np.abs(feedback_noise) > ABS_TOL
    needs_rating = np.abs(rating_noise) > ABS_TOL
    counts = needs_feedback.astype(np.int64) + needs_rating.astype(np.int64)
    offsets = np.cumsum(counts) - counts
    total_draws = int(offsets[-1] + counts[-1])
    draws: Optional[np.ndarray] = None
    if total_draws:
        draws = rng.standard_normal(total_draws)
    return engine.run_round(
        population,
        assignment,
        excluded_mask,
        previous_feedback,
        lagged_payment,
        active,
        rows,
        offsets,
        total_draws,
        draws,
    )


def require_parallel_steps_agree(
    parallel: ColumnarStepResult, sequential: ColumnarStepResult
) -> None:
    """Equivalence contract: the sharded round equals the sequential one.

    Exact comparison — the parallel engine runs the identical kernel
    per shard with coordinator-drawn noise and merged-column
    reductions, so *any* difference, down to the last bit, is a
    determinism bug (draw-slice misalignment, shard-boundary leak,
    reassociated reduction) and raises.
    """
    columns = (
        "active",
        "efforts",
        "feedback",
        "compensation",
        "rating_deviation",
        "worker_utility",
    )
    for name in columns:
        ours = getattr(parallel, name)
        reference = getattr(sequential, name)
        if ours.shape != reference.shape:
            raise InvariantViolation(
                f"parallel round {name} shape {ours.shape} != "
                f"sequential {reference.shape}"
            )
        if not np.array_equal(ours, reference):
            diverged = np.flatnonzero(ours != reference)
            raise InvariantViolation(
                f"parallel round diverged from the sequential kernel on "
                f"{name} at rows {diverged[:8].tolist()} "
                f"({diverged.size} total)"
            )
    if parallel.benefit != sequential.benefit:  # noqa: REPRO001 - exact by construction
        raise InvariantViolation(
            f"parallel benefit {parallel.benefit!r} != sequential "
            f"{sequential.benefit!r}"
        )
    if (
        parallel.total_compensation != sequential.total_compensation  # noqa: REPRO001 - exact by construction
    ):
        raise InvariantViolation(
            f"parallel total_compensation {parallel.total_compensation!r} "
            f"!= sequential {sequential.total_compensation!r}"
        )
