"""Bounded-memory round accounting for very large populations.

The eager :class:`~repro.simulation.ledger.SimulationLedger` keeps one
:class:`~repro.simulation.ledger.SubjectRoundOutcome` object per subject
per round — perfect for the paper-scale experiments, hopeless at 10M
subjects (a 100-round run would materialize a billion objects).  The
:class:`StreamingLedger` keeps the same *aggregate* views while holding
only O(rounds) Python state:

* per-round scalars (utility, benefit, compensation, design time,
  dirty-set provenance) are kept verbatim;
* per-type compensation series are reduced to one mean per round per
  class, computed over the full per-member compensation column — the
  same value sequence the eager ledger feeds ``np.mean``, so the series
  are bit-identical;
* run-level effort means keep running (sum, count) accumulators per
  class — or are recomputed exactly from the spill file when one is
  attached;
* per-member compensation quantiles come from a fixed-width
  :class:`StreamingHistogram` (approximate, error bounded by one bin
  width) or exactly from the spill.

An optional :class:`OutcomeSpill` writes each round's per-subject
outcome columns to a chunked binary file and reads them back as a
``(n_rounds, n_subjects)`` memory map — per-subject history without
per-subject memory.

:func:`require_ledger_views_agree` is the executable contract tying the
streamed views to the eager ledger's (exercised by the hypothesis
property tests and the ``columnar-smoke`` CI job).
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.invariants import InvariantViolation
from ..errors import SimulationError
from ..numerics import close
from ..types import WorkerType
from ..workers.columnar import WORKER_TYPE_CODES
from .ledger import RoundRecord, SimulationLedger

__all__ = [
    "SPILL_DTYPE",
    "OutcomeSpill",
    "StreamingHistogram",
    "StreamingLedger",
    "require_ledger_views_agree",
]

#: On-disk record layout of one subject-round in the spill file.
SPILL_DTYPE = np.dtype(
    [
        ("effort", "f8"),
        ("feedback", "f8"),
        ("compensation", "f8"),
        ("rating_deviation", "f8"),
        ("worker_utility", "f8"),
        ("excluded", "?"),
    ]
)


class OutcomeSpill:
    """Chunked binary spill of per-subject round outcomes.

    Rounds are buffered and appended to ``path`` in :data:`SPILL_DTYPE`
    layout, ``buffer_rounds`` at a time; :meth:`as_array` maps the whole
    file back read-only as ``(n_rounds, n_subjects)`` without loading
    it.  The file format is self-describing given the dtype and the
    (constant) population size.

    Args:
        path: spill file location (created/truncated).
        buffer_rounds: rounds held in memory between writes.
    """

    def __init__(self, path: Union[str, Path], buffer_rounds: int = 4) -> None:
        if buffer_rounds < 1:
            raise SimulationError(
                f"buffer_rounds must be >= 1, got {buffer_rounds!r}"
            )
        self.path = Path(path)
        self.buffer_rounds = buffer_rounds
        self._handle: Optional[BinaryIO] = open(self.path, "wb")
        self._buffer: List[np.ndarray] = []
        self._n_rounds = 0
        self._n_subjects: Optional[int] = None

    @property
    def n_rounds(self) -> int:
        """Rounds appended so far (buffered or written)."""
        return self._n_rounds

    @property
    def n_subjects(self) -> Optional[int]:
        """Population size, fixed by the first appended round."""
        return self._n_subjects

    def append_round(self, rows: np.ndarray) -> None:
        """Buffer one round's per-subject rows (``SPILL_DTYPE``, (n,))."""
        if self._handle is None:
            raise SimulationError("spill file is closed")
        rows = np.ascontiguousarray(rows, dtype=SPILL_DTYPE)
        if rows.ndim != 1:
            raise SimulationError(
                f"spill rows must be one-dimensional, got shape {rows.shape!r}"
            )
        if self._n_subjects is None:
            self._n_subjects = int(rows.shape[0])
        elif rows.shape[0] != self._n_subjects:
            raise SimulationError(
                f"spill rounds must have {self._n_subjects} subjects, "
                f"got {rows.shape[0]}"
            )
        self._buffer.append(rows)
        self._n_rounds += 1
        if len(self._buffer) >= self.buffer_rounds:
            self.flush()

    def flush(self) -> None:
        """Write all buffered rounds to disk."""
        if self._handle is None:
            raise SimulationError("spill file is closed")
        for rows in self._buffer:
            self._handle.write(rows.tobytes())
        self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def as_array(self) -> np.ndarray:
        """The spilled history as a read-only ``(rounds, subjects)`` map.

        Flushes pending rounds first; the returned array is backed by
        the file (``np.memmap``), so element access pages in on demand
        instead of loading the run into memory.
        """
        if self._n_subjects is None:
            raise SimulationError("spill holds no rounds yet")
        if self._handle is not None:
            self.flush()
        # np.memmap silently maps whatever bytes exist; a truncated or
        # partially-written file must fail loudly, not return a map
        # that reads past EOF (or short rounds) as garbage.
        expected = (
            self._n_rounds * self._n_subjects * SPILL_DTYPE.itemsize
        )
        actual = self.path.stat().st_size
        if actual != expected:
            raise SimulationError(
                f"spill file {self.path} holds {actual} bytes but "
                f"{self._n_rounds} rounds x {self._n_subjects} subjects "
                f"requires exactly {expected}; the file is truncated or "
                "was written by another spill"
            )
        if expected == 0:
            # mmap rejects empty files; an empty-population (or
            # zero-round) spill is still a valid, empty history.
            return np.zeros(
                (self._n_rounds, self._n_subjects), dtype=SPILL_DTYPE
            )
        return np.memmap(
            self.path,
            dtype=SPILL_DTYPE,
            mode="r",
            shape=(self._n_rounds, self._n_subjects),
        )

    def round_outcomes(self, round_index: int) -> np.ndarray:
        """One round's rows, copied out of the map."""
        if not 0 <= round_index < self._n_rounds:
            raise SimulationError(
                f"round_index must lie in [0, {self._n_rounds}), "
                f"got {round_index!r}"
            )
        return np.array(self.as_array()[round_index])


class StreamingHistogram:
    """Uniform-bin running histogram with quantile queries.

    Bin edges are pinned by the first observed batch (the low edge is
    anchored at 0 for the non-negative compensation domain); when a
    later batch overflows the top edge, the range *doubles* by merging
    adjacent bin pairs — so no mass is ever clamped above and quantile
    answers stay within one (final) bin width.  Values below the low
    edge (impossible for compensations) clamp into the first bin.  The
    spill file is the exact fallback.
    """

    def __init__(self, n_bins: int = 64) -> None:
        if n_bins < 2 or n_bins % 2:
            raise SimulationError(
                f"n_bins must be even and >= 2 (range doubling merges bin "
                f"pairs), got {n_bins!r}"
            )
        self.n_bins = n_bins
        self.edges: Optional[np.ndarray] = None
        self.counts = np.zeros(n_bins, dtype=np.int64)
        self.total = 0

    def observe(self, values: np.ndarray) -> None:
        """Fold one batch of values into the histogram."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return
        if self.edges is None:
            low = min(0.0, float(values.min()))
            high = float(values.max())
            if high <= low:
                high = low + max(1.0, abs(low))
            self.edges = np.linspace(low, high, self.n_bins + 1)
        assert self.edges is not None
        batch_max = float(values.max())
        while batch_max > float(self.edges[-1]):
            low = float(self.edges[0])
            span = float(self.edges[-1]) - low
            half = self.n_bins // 2
            merged = self.counts[0::2] + self.counts[1::2]
            self.counts = np.zeros(self.n_bins, dtype=np.int64)
            self.counts[:half] = merged
            self.edges = np.linspace(low, low + 2.0 * span, self.n_bins + 1)
        slots = np.clip(
            np.searchsorted(self.edges, values, side="right") - 1,
            0,
            self.n_bins - 1,
        )
        self.counts += np.bincount(slots, minlength=self.n_bins)
        self.total += int(values.size)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (linear within the hit bin).

        Within one bin width of the empirical inverted-CDF quantile
        (the order statistic itself).
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"q must lie in [0, 1], got {q!r}")
        if self.edges is None or self.total == 0:
            raise SimulationError("histogram is empty")
        target = q * self.total
        cumulative = np.cumsum(self.counts)
        slot = int(np.searchsorted(cumulative, target, side="left"))
        slot = min(slot, self.n_bins - 1)
        left = cumulative[slot - 1] if slot > 0 else 0
        in_bin = self.counts[slot]
        fraction = float((target - left) / in_bin) if in_bin else 0.0
        width = self.edges[slot + 1] - self.edges[slot]
        return float(self.edges[slot] + min(max(fraction, 0.0), 1.0) * width)

    @property
    def bin_width(self) -> float:
        """Width of one bin (the quantile error bound)."""
        if self.edges is None:
            raise SimulationError("histogram is empty")
        return float(self.edges[1] - self.edges[0])


class StreamingLedger:
    """A ledger that aggregates rounds instead of retaining them.

    Drop-in for :class:`SimulationLedger` where the experiments consume
    aggregate views (``utility_series``, ``compensation_by_type``,
    ``mean_effort_by_type``, ``summary`` …): the engine appends the
    same :class:`RoundRecord` objects, and the views answer with the
    same numbers — but per-subject outcomes are reduced on arrival
    (columnar engines stage raw columns via :meth:`stage_arrays`;
    object-path records are absorbed from their ``outcomes`` dict), so
    memory is O(rounds), not O(rounds x subjects).

    Args:
        spill: optional per-subject outcome spill (exact history and
            exact run-level views at file-system cost).
        quantile_bins: resolution of the running compensation histogram.
    """

    def __init__(
        self,
        spill: Optional[OutcomeSpill] = None,
        quantile_bins: int = 64,
    ) -> None:
        self.spill = spill
        self._histogram = StreamingHistogram(n_bins=quantile_bins)
        self._utilities: List[float] = []
        self._benefits: List[float] = []
        self._compensations: List[float] = []
        self._design_ms: List[Optional[float]] = []
        self._n_dirty: List[Optional[int]] = []
        self._reuse_rates: List[Optional[float]] = []
        self._type_codes: Optional[np.ndarray] = None
        self._n_members: Optional[np.ndarray] = None
        self._type_masks: Dict[WorkerType, np.ndarray] = {}
        self._comp_series: Dict[WorkerType, List[float]] = {
            worker_type: [] for worker_type in WorkerType
        }
        self._effort_sums: Dict[WorkerType, float] = {
            worker_type: 0.0 for worker_type in WorkerType
        }
        self._effort_counts: Dict[WorkerType, int] = {
            worker_type: 0 for worker_type in WorkerType
        }
        self._staged: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @property
    def n_rounds(self) -> int:
        """Rounds absorbed so far."""
        return len(self._utilities)

    def stage_arrays(
        self,
        type_codes: np.ndarray,
        n_members: np.ndarray,
        excluded: np.ndarray,
        efforts: np.ndarray,
        feedback: np.ndarray,
        compensation: np.ndarray,
        rating_deviation: np.ndarray,
        worker_utility: np.ndarray,
    ) -> None:
        """Hand the next round's per-subject columns to the ledger.

        Called by the columnar engine *before* :meth:`append`; the
        subsequent append consumes these columns instead of the record's
        (empty) outcome dict.  Arrays are in subject (subproblem) order,
        matching the eager ledger's outcome iteration order.
        """
        if self._staged is not None:
            raise SimulationError(
                "a staged round is already pending; append it first"
            )
        self._staged = (
            np.asarray(type_codes, dtype=np.int64),
            np.asarray(n_members, dtype=np.int64),
            np.asarray(excluded, dtype=bool),
            np.asarray(efforts, dtype=np.float64),
            np.asarray(feedback, dtype=np.float64),
            np.asarray(compensation, dtype=np.float64),
            np.asarray(rating_deviation, dtype=np.float64),
            np.asarray(worker_utility, dtype=np.float64),
        )

    def _arrays_from_record(self, record: RoundRecord) -> Tuple[np.ndarray, ...]:
        outcomes = list(record.outcomes.values())
        return (
            np.array(
                [WORKER_TYPE_CODES[o.worker_type] for o in outcomes],
                dtype=np.int64,
            ),
            np.array([o.n_members for o in outcomes], dtype=np.int64),
            np.array([o.excluded for o in outcomes], dtype=bool),
            np.array([o.effort for o in outcomes], dtype=np.float64),
            np.array([o.feedback for o in outcomes], dtype=np.float64),
            np.array([o.compensation for o in outcomes], dtype=np.float64),
            np.array([o.rating_deviation for o in outcomes], dtype=np.float64),
            np.array([o.worker_utility for o in outcomes], dtype=np.float64),
        )

    def append(self, record: RoundRecord) -> None:
        """Absorb the next round (in order) into the running aggregates."""
        expected = self.n_rounds
        if record.round_index != expected:
            raise SimulationError(
                f"expected round {expected}, got {record.round_index}"
            )
        staged = self._staged
        self._staged = None
        if staged is None:
            staged = self._arrays_from_record(record)
        (
            type_codes,
            n_members,
            excluded,
            efforts,
            feedback,
            compensation,
            rating_deviation,
            worker_utility,
        ) = staged

        if self._type_codes is None:
            self._type_codes = type_codes
            self._n_members = n_members
            self._type_masks = {
                worker_type: type_codes == code
                for worker_type, code in WORKER_TYPE_CODES.items()
            }
        elif type_codes.shape != self._type_codes.shape:
            raise SimulationError(
                "population size changed mid-run: "
                f"{type_codes.shape[0]} != {self._type_codes.shape[0]}"
            )

        self._utilities.append(record.utility)
        self._benefits.append(record.benefit)
        self._compensations.append(record.total_compensation)
        self._design_ms.append(record.design_ms)
        self._n_dirty.append(record.n_dirty)
        self._reuse_rates.append(record.reuse_rate)

        assert self._n_members is not None
        per_member = compensation / self._n_members
        effort_per_member = efforts / self._n_members
        for worker_type, mask in self._type_masks.items():
            if mask.any():
                self._comp_series[worker_type].append(
                    float(np.mean(per_member[mask]))
                )
                self._effort_sums[worker_type] += float(
                    np.sum(effort_per_member[mask])
                )
                self._effort_counts[worker_type] += int(
                    np.count_nonzero(mask)
                )
            else:
                self._comp_series[worker_type].append(0.0)
        self._histogram.observe(per_member)

        if self.spill is not None:
            rows = np.empty(per_member.shape[0], dtype=SPILL_DTYPE)
            rows["effort"] = efforts
            rows["feedback"] = feedback
            rows["compensation"] = compensation
            rows["rating_deviation"] = rating_deviation
            rows["worker_utility"] = worker_utility
            rows["excluded"] = excluded
            self.spill.append_round(rows)

    # ------------------------------------------------------------------
    # aggregate views (mirroring SimulationLedger)
    # ------------------------------------------------------------------

    def utility_series(self) -> np.ndarray:
        """Per-round requester utility (the Fig. 8c series)."""
        return np.array(self._utilities)

    def benefit_series(self) -> np.ndarray:
        """Per-round realized benefit."""
        return np.array(self._benefits)

    def compensation_series(self) -> np.ndarray:
        """Per-round total compensation."""
        return np.array(self._compensations)

    def cumulative_utility(self) -> np.ndarray:
        """Cumulative requester utility over rounds."""
        return np.cumsum(self.utility_series())

    def total_utility(self) -> float:
        """Total requester utility over the whole run."""
        return float(self.utility_series().sum()) if self._utilities else 0.0

    def compensation_by_type(
        self, worker_type: Optional[WorkerType] = None
    ) -> Dict[WorkerType, np.ndarray]:
        """Per-round mean per-member compensation for each class."""
        selected = (
            [worker_type] if worker_type is not None else list(WorkerType)
        )
        return {wt: np.array(self._comp_series[wt]) for wt in selected}

    def mean_effort_by_type(self) -> Dict[WorkerType, float]:
        """Run-level mean per-member effort for each class.

        Exact (recomputed from the spill, in the eager ledger's value
        order) when a spill is attached; otherwise from the running
        (sum, count) accumulators, equal to the eager value up to
        summation-order rounding.
        """
        if self.spill is not None and self.spill.n_rounds:
            history = self.spill.as_array()
            assert self._n_members is not None
            effort_per_member = history["effort"] / self._n_members[None, :]
            result = {}
            for worker_type, mask in self._type_masks.items():
                values = effort_per_member[:, mask].reshape(-1)
                result[worker_type] = (
                    float(np.mean(values)) if values.size else 0.0
                )
            return result
        return {
            worker_type: (
                self._effort_sums[worker_type] / self._effort_counts[worker_type]
                if self._effort_counts[worker_type]
                else 0.0
            )
            for worker_type in WorkerType
        }

    def compensation_quantile(self, q: float) -> float:
        """``q``-quantile of per-member compensation over all
        subject-rounds — exact via the spill, else histogram-approximate
        (error bounded by :attr:`StreamingHistogram.bin_width`)."""
        if self.spill is not None and self.spill.n_rounds:
            history = self.spill.as_array()
            assert self._n_members is not None
            per_member = (
                history["compensation"] / self._n_members[None, :]
            ).reshape(-1)
            return float(np.quantile(per_member, q))
        return self._histogram.quantile(q)

    def total_design_ms(self) -> float:
        """Total wall-clock design time booked across all rounds."""
        return sum(ms for ms in self._design_ms if ms is not None)

    def mean_reuse_rate(self) -> Optional[float]:
        """Mean delta-redesign reuse rate across redesign rounds."""
        rates = [rate for rate in self._reuse_rates if rate is not None]
        if not rates:
            return None
        return float(np.mean(rates))

    def cache_hit_rate(self) -> Optional[float]:
        """Always ``None``: per-subject serving provenance is not
        retained on the streaming path."""
        return None

    def summary(self) -> Dict[str, float]:
        """Headline totals for quick comparisons."""
        if not self._utilities:
            return {
                "n_rounds": 0.0,
                "total_utility": 0.0,
                "mean_round_utility": 0.0,
                "total_compensation": 0.0,
            }
        utilities = self.utility_series()
        return {
            "n_rounds": float(self.n_rounds),
            "total_utility": float(utilities.sum()),
            "mean_round_utility": float(utilities.mean()),
            "total_compensation": float(sum(self._compensations)),
        }

    def close(self) -> None:
        """Close the spill file, if any."""
        if self.spill is not None:
            self.spill.close()


def require_ledger_views_agree(
    streaming: StreamingLedger,
    eager: SimulationLedger,
    quantiles: Sequence[float] = (),
) -> None:
    """Assert the streamed aggregates equal the eager ledger's.

    Per-round series (utility, benefit, compensation, per-type
    compensation means) must match bit for bit — they are computed from
    identical value sequences.  Run-level effort means are checked at
    :mod:`repro.numerics` tolerance (the running accumulators legally
    reassociate the sum); with a spill attached they too are exact.
    Optional ``quantiles`` are checked against the eager outcomes within
    one histogram bin width (exact with a spill).  Timing/provenance
    views (``total_design_ms``, ``mean_reuse_rate``) are *not* part of
    the contract, for the same reason ``require_ledgers_agree`` ignores
    those fields: they legitimately differ between engine routings.

    Raises:
        InvariantViolation: on the first disagreement.
    """
    if streaming.n_rounds != eager.n_rounds:
        raise InvariantViolation(
            f"ledgers cover different horizons: {streaming.n_rounds} != "
            f"{eager.n_rounds} rounds"
        )
    for index, record in enumerate(eager.records):
        if (
            streaming._utilities[index] != record.utility  # noqa: REPRO001 - bit-identity
            or streaming._benefits[index] != record.benefit  # noqa: REPRO001
            or streaming._compensations[index] != record.total_compensation  # noqa: REPRO001
        ):
            raise InvariantViolation(
                f"round {record.round_index}: streamed scalars diverge from "
                "the eager record"
            )
    streamed_comp = streaming.compensation_by_type()
    eager_comp = eager.compensation_by_type()
    for worker_type in WorkerType:
        if not np.array_equal(
            streamed_comp[worker_type], eager_comp[worker_type]
        ):
            raise InvariantViolation(
                f"per-type compensation series diverge for {worker_type!r}: "
                f"{streamed_comp[worker_type]!r} != {eager_comp[worker_type]!r}"
            )
    streamed_effort = streaming.mean_effort_by_type()
    eager_effort = eager.mean_effort_by_type()
    for worker_type in WorkerType:
        if not close(streamed_effort[worker_type], eager_effort[worker_type]):
            raise InvariantViolation(
                f"mean effort diverges for {worker_type!r}: "
                f"{streamed_effort[worker_type]!r} != "
                f"{eager_effort[worker_type]!r}"
            )
    if quantiles:
        values = np.array(
            [
                outcome.per_member_compensation
                for record in eager.records
                for outcome in record.outcomes.values()
            ]
        )
        # The histogram's one-bin-width bound is stated against the
        # empirical inverted CDF (the order statistic itself); NumPy's
        # default linear interpolation can land far from any sample on
        # sparse data.  With a spill the streamed answer *is* the linear
        # quantile, bit for bit.
        if streaming.spill is not None:
            tolerance = 0.0
            method = "linear"
        else:
            tolerance = streaming._histogram.bin_width
            method = "inverted_cdf"
        for q in quantiles:
            streamed = streaming.compensation_quantile(q)
            reference = float(np.quantile(values, q, method=method))
            if abs(streamed - reference) > tolerance + 1e-12:
                raise InvariantViolation(
                    f"q={q} compensation quantile diverges: {streamed!r} vs "
                    f"{reference!r} (tolerance {tolerance!r})"
                )
