"""Payment policies: how the requester sets contracts each round.

Three policies cover the paper's evaluation:

* :class:`DynamicContractPolicy` — the paper's algorithm: solve the
  decomposed subproblems and post the designed contracts.
* :class:`ExclusionPolicy` — the Fig. 8c baseline: run an inner policy
  but exclude every (labelled) malicious subject from the system — they
  are neither paid nor does their feedback count.
* :class:`FixedPaymentPolicy` — the classic fixed-price scheme the
  introduction argues against: one flat pay per task, independent of
  feedback.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Set, Tuple, cast

import numpy as np

from ..core.contract import Contract
from ..core.decomposition import Subproblem, SubproblemSolution, solve_subproblems
from ..core.designer import DesignerConfig
from ..core.sweep import fastpath_enabled
from ..errors import SimulationError
from .ledger import RoundRecord
from ..serving.cache import ContractCache
from ..serving.fingerprint import subproblem_fingerprint
from ..serving.pool import (
    ColumnarDeltaState,
    ContractAssignment,
    DeltaSolveState,
    RedesignStats,
    SolveDiagnostics,
    SolverPool,
)
from ..workers.columnar import WORKER_TYPE_ORDER, ColumnarPopulation
from ..workers.population import PopulationModel

#: ``type_codes -> is_malicious`` lookup for vectorized exclusion.
_MALICIOUS_TYPE = np.array(
    [worker_type.is_malicious for worker_type in WORKER_TYPE_ORDER]
)

__all__ = ["PaymentPolicy", "DynamicContractPolicy", "ExclusionPolicy", "FixedPaymentPolicy"]


class PaymentPolicy(abc.ABC):
    """Strategy interface: population knowledge -> posted contracts."""

    @abc.abstractmethod
    def contracts(self, population: PopulationModel) -> Dict[str, Contract]:
        """Contracts per subject id; omitted subjects are excluded."""

    def excluded_subjects(self, population: PopulationModel) -> Set[str]:
        """Subjects this policy bars from the system entirely."""
        return set()

    def current_weights(self, population: PopulationModel) -> Optional[Dict[str, float]]:
        """Per-subject Eq. (5) weights this policy wants applied.

        ``None`` (the default) means "use the population's static
        weights"; adaptive policies return their online estimates.
        """
        return None

    def observe(self, record: RoundRecord) -> None:
        """Feed one realized round back into the policy (no-op here).

        Adaptive policies override this to update their estimators from
        the :class:`~repro.simulation.ledger.RoundRecord`.
        """

    def solve_diagnostics(self, subject_id: str) -> Optional[SolveDiagnostics]:
        """Serving provenance of the subject's current contract.

        ``None`` (the default) means the contract did not come through
        the serving layer; policies routed through a
        :class:`~repro.serving.pool.SolverPool` report the design
        fingerprint and cache-hit flag, which the engine writes into the
        round ledger for replay verification.
        """
        return None

    def redesign_stats(self) -> Optional[RedesignStats]:
        """Dirty-set accounting of the most recent :meth:`contracts` call.

        ``None`` (the default) means the policy does not track redesign
        deltas; delta-aware policies report how many subjects were
        re-solved vs reused, which the engine stamps onto the
        ``simulation.round`` span (``n_dirty``, ``reuse_rate``) and the
        round ledger.
        """
        return None

    def contracts_columnar(
        self, population: ColumnarPopulation
    ) -> ContractAssignment:
        """Columnar contracts: an archetype table plus per-subject codes.

        The default packs the object-path :meth:`contracts` result
        through :meth:`ContractAssignment.from_mapping` (an O(n)
        compatibility bridge — it materializes the lazy object views).
        Columnar-aware policies override this to design per archetype
        without touching per-subject objects.
        """
        mapping = self.contracts(cast(PopulationModel, population))
        return ContractAssignment.from_mapping(mapping, population)

    def excluded_mask(self, population: ColumnarPopulation) -> np.ndarray:
        """Boolean per-subject exclusion mask (columnar twin of
        :meth:`excluded_subjects`); the default materializes the id set."""
        mask = np.zeros(population.n_subjects, dtype=bool)
        for subject_id in self.excluded_subjects(
            cast(PopulationModel, population)
        ):
            mask[population.index_of(subject_id)] = True
        return mask


class DynamicContractPolicy(PaymentPolicy):
    """The paper's dynamic contract design (Sections III-IV).

    Args:
        mu: the requester's compensation weight.
        config: designer configuration.
        max_workers: thread parallelism across the independent
            subproblems on the in-process path.
        parallel: solver-pool process fan-out; any positive value routes
            the per-round solves through :class:`~repro.serving.pool.SolverPool`.
        cache: an optional shared contract cache.  Supplying one (even
            with ``parallel=0``) also routes through the serving layer so
            repeat subproblems across rounds are deduplicated.
        delta: dirty-set redesign — on repeat calls, re-solve only
            subjects whose subproblem changed since the previous call
            (same object or equal serving fingerprint means unchanged)
            and reuse the stored designs for the rest.  ``None`` (the
            default) follows the ``REPRO_FASTPATH`` convention; pass
            ``True``/``False`` to force.  Reuse is cross-verified
            against fresh solves under ``REPRO_CHECK_INVARIANTS=1``.
    """

    def __init__(
        self,
        mu: float = 1.0,
        config: Optional[DesignerConfig] = None,
        max_workers: int = 1,
        parallel: int = 0,
        cache: Optional[ContractCache] = None,
        delta: Optional[bool] = None,
    ) -> None:
        if mu <= 0.0:
            raise SimulationError(f"mu must be positive, got {mu!r}")
        if parallel < 0:
            raise SimulationError(f"parallel must be >= 0, got {parallel!r}")
        self.mu = mu
        self.config = config
        self.max_workers = max_workers
        self.parallel = parallel
        self.cache = cache
        self.delta = delta
        self._pool: Optional[SolverPool] = None
        self._delta_state: Optional[DeltaSolveState] = None
        self._columnar_delta: Optional[ColumnarDeltaState] = None
        self._stats: Optional[RedesignStats] = None
        self._solutions: Optional[Dict[str, SubproblemSolution]] = None
        self._diagnostics: Dict[str, SolveDiagnostics] = {}

    @property
    def uses_serving(self) -> bool:
        """Whether per-round solves route through the serving layer."""
        return self.parallel > 0 or self.cache is not None

    def _serving_pool(self) -> SolverPool:
        if self._pool is None:
            self._pool = SolverPool(
                n_workers=self.parallel,
                mu=self.mu,
                config=self.config,
                cache=self.cache if self.cache is not None else ContractCache(),
            )
            if self.cache is None:
                self.cache = self._pool.cache
        return self._pool

    def _delta_enabled(self) -> bool:
        return self.delta if self.delta is not None else fastpath_enabled()

    def _solve_fresh(
        self, subproblems: Sequence[Subproblem]
    ) -> Tuple[Dict[str, SubproblemSolution], Dict[str, SolveDiagnostics]]:
        if self.uses_serving:
            return self._serving_pool().solve_with_diagnostics(subproblems)
        solutions = solve_subproblems(
            subproblems,
            mu=self.mu,
            config=self.config,
            max_workers=self.max_workers,
        )
        return solutions, {}

    def _fingerprint_of(self, subproblem: Subproblem) -> str:
        return subproblem_fingerprint(subproblem, mu=self.mu, config=self.config)

    def contracts(self, population: PopulationModel) -> Dict[str, Contract]:
        subproblems = population.subproblems
        if self._delta_enabled():
            if self._delta_state is None:
                self._delta_state = DeltaSolveState()
            solutions, diagnostics, stats = self._delta_state.resolve(
                subproblems,
                fingerprint_of=self._fingerprint_of,
                solve=self._solve_fresh,
            )
        else:
            solutions, diagnostics = self._solve_fresh(subproblems)
            stats = RedesignStats(
                n_subjects=len(subproblems), n_dirty=len(subproblems)
            )
        self._stats = stats
        self._diagnostics = diagnostics
        self._solutions = solutions
        return {
            subject_id: solution.result.contract
            for subject_id, solution in solutions.items()
        }

    def contracts_columnar(
        self, population: ColumnarPopulation
    ) -> ContractAssignment:
        """Design one contract per archetype; fan out by code.

        The delta path diffs the packed design matrix across epochs
        (:class:`~repro.serving.pool.ColumnarDeltaState`) so a static
        population costs zero solves after the first round.  Per-subject
        serving diagnostics are not tracked on this path (there are no
        per-subject solves to attribute them to), matching the
        non-serving object path.
        """
        if self._delta_enabled():
            if self._columnar_delta is None:
                self._columnar_delta = ColumnarDeltaState()
            assignment, stats = self._columnar_delta.resolve(
                population, solve=self._solve_fresh
            )
        else:
            representatives = population.archetype_subproblems()
            solutions, _ = self._solve_fresh(representatives)
            assignment = ContractAssignment(
                contracts=tuple(
                    solutions[rep.subject_id].result.contract
                    for rep in representatives
                ),
                codes=population.archetype_codes,
            )
            stats = RedesignStats(
                n_subjects=population.n_subjects,
                n_dirty=population.n_subjects,
            )
        self._stats = stats
        self._diagnostics = {}
        self._solutions = None
        return assignment

    def solve_diagnostics(self, subject_id: str) -> Optional[SolveDiagnostics]:
        return self._diagnostics.get(subject_id)

    def redesign_stats(self) -> Optional[RedesignStats]:
        return self._stats

    def close(self) -> None:
        """Shut down the serving pool, if one was created."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def last_solutions(self) -> Optional[Dict[str, SubproblemSolution]]:
        """Per-subject design results of the most recent call."""
        return self._solutions


class ExclusionPolicy(PaymentPolicy):
    """Exclude all malicious subjects; delegate the rest to ``inner``.

    The paper's baseline "in which all the malicious workers are simply
    excluded from the system": excluded subjects earn nothing and their
    feedback does not enter the requester's benefit.

    Args:
        inner: the policy applied to the surviving (honest) subjects.
        malice_threshold: subjects with estimated ``e_mal`` above this
            are excluded.  The default 0.5 with oracle estimates excludes
            exactly the labelled-malicious population.
    """

    def __init__(self, inner: PaymentPolicy, malice_threshold: float = 0.5) -> None:
        if not 0.0 <= malice_threshold <= 1.0:
            raise SimulationError(
                f"malice_threshold must lie in [0, 1], got {malice_threshold!r}"
            )
        self.inner = inner
        self.malice_threshold = malice_threshold

    def excluded_subjects(self, population: PopulationModel) -> Set[str]:
        return {
            subproblem.subject_id
            for subproblem in population.subproblems
            if population.malice.get(subproblem.subject_id, 0.0)
            > self.malice_threshold
            or subproblem.params.worker_type.is_malicious
        }

    def contracts(self, population: PopulationModel) -> Dict[str, Contract]:
        excluded = self.excluded_subjects(population)
        inner_contracts = self.inner.contracts(population)
        return {
            subject_id: contract
            for subject_id, contract in inner_contracts.items()
            if subject_id not in excluded
        }

    def excluded_mask(self, population: ColumnarPopulation) -> np.ndarray:
        return (population.e_mal > self.malice_threshold) | _MALICIOUS_TYPE[
            population.type_codes
        ]

    def contracts_columnar(
        self, population: ColumnarPopulation
    ) -> ContractAssignment:
        inner = self.inner.contracts_columnar(population)
        codes = np.where(self.excluded_mask(population), -1, inner.codes)
        return ContractAssignment(contracts=inner.contracts, codes=codes)

    def solve_diagnostics(self, subject_id: str) -> Optional[SolveDiagnostics]:
        return self.inner.solve_diagnostics(subject_id)

    def redesign_stats(self) -> Optional[RedesignStats]:
        return self.inner.redesign_stats()


class FixedPaymentPolicy(PaymentPolicy):
    """A single flat payment per task, independent of feedback.

    Args:
        pay_per_member: the flat pay offered to each human worker (a
            community receives ``size * pay_per_member``).
        n_intervals: grid resolution of the (degenerate) flat contract.
    """

    def __init__(self, pay_per_member: float = 1.0, n_intervals: int = 4) -> None:
        if pay_per_member < 0.0:
            raise SimulationError(
                f"pay_per_member must be >= 0, got {pay_per_member!r}"
            )
        if n_intervals < 1:
            raise SimulationError(f"n_intervals must be >= 1, got {n_intervals!r}")
        self.pay_per_member = pay_per_member
        self.n_intervals = n_intervals

    def contracts(self, population: PopulationModel) -> Dict[str, Contract]:
        config = DesignerConfig(n_intervals=self.n_intervals)
        posted: Dict[str, Contract] = {}
        for subproblem in population.subproblems:
            grid = config.grid_for(
                subproblem.effort_function, max_effort=subproblem.max_effort
            )
            posted[subproblem.subject_id] = Contract.flat(
                grid,
                subproblem.effort_function,
                pay=self.pay_per_member * len(subproblem.member_ids),
            )
        return posted

    def contracts_columnar(
        self, population: ColumnarPopulation
    ) -> ContractAssignment:
        # Membership size is part of the design-archetype key, so one
        # flat contract per archetype is exact.
        config = DesignerConfig(n_intervals=self.n_intervals)
        contracts = []
        for representative in population.archetype_subproblems():
            grid = config.grid_for(
                representative.effort_function,
                max_effort=representative.max_effort,
            )
            contracts.append(
                Contract.flat(
                    grid,
                    representative.effort_function,
                    pay=self.pay_per_member * len(representative.member_ids),
                )
            )
        return ContractAssignment(
            contracts=tuple(contracts), codes=population.archetype_codes
        )
