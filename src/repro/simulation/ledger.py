"""Round records and the simulation ledger.

The marketplace engine produces one :class:`RoundRecord` per task round;
the :class:`SimulationLedger` accumulates them and answers the
aggregate questions the experiments ask (utility series for Fig. 8c,
per-class compensation traces, totals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..types import WorkerType

__all__ = ["SubjectRoundOutcome", "RoundRecord", "SimulationLedger"]


@dataclass(frozen=True)
class SubjectRoundOutcome:
    """One subject's realized outcome in one round.

    Attributes:
        subject_id: worker or community identifier.
        worker_type: the subject's class.
        effort: the (total) effort the subject chose.
        feedback: the realized (noisy) feedback the platform observed.
        compensation: the pay the contract awarded for that feedback.
        feedback_weight: the *evaluation* Eq. (5) weight — the reference
            (population) value of this subject's feedback, used to book
            the requester's realized utility.  Policies cannot inflate
            their scores by believing optimistic weights.
        excluded: whether the policy excluded the subject this round.
        n_members: humans behind the subject.
        rating_deviation: the observed |review score - expert consensus|
            this round (what online re-estimation feeds on).
        policy_weight: the weight the policy *believed* when designing
            this round's contract (diagnostics; ``None`` when the policy
            just used the population weights).
        worker_utility: the subject's *realized* utility this round
            (``pay + omega * feedback - beta * effort``), the quantity
            retention decisions hinge on.
        fingerprint: the serving-layer design fingerprint of the posted
            contract (``None`` when the contract did not come through
            the serving layer).  Lets replays re-derive the subproblem
            and verify the recorded payments against a fresh solve.
        cache_hit: whether the posted contract came from the contract
            cache rather than a fresh solve (``None`` off the serving
            path).
    """

    subject_id: str
    worker_type: WorkerType
    effort: float
    feedback: float
    compensation: float
    feedback_weight: float
    excluded: bool
    n_members: int
    rating_deviation: float = 0.0
    policy_weight: Optional[float] = None
    worker_utility: float = 0.0
    fingerprint: Optional[str] = None
    cache_hit: Optional[bool] = None

    @property
    def believed_weight(self) -> float:
        """The weight the acting policy used (falls back to the
        evaluation weight)."""
        return (
            self.policy_weight
            if self.policy_weight is not None
            else self.feedback_weight
        )

    @property
    def requester_value(self) -> float:
        """The subject's contribution ``w * q`` (zero when excluded)."""
        return 0.0 if self.excluded else self.feedback_weight * self.feedback

    @property
    def per_member_compensation(self) -> float:
        """Even per-member pay split (community reporting, Fig. 8b)."""
        return self.compensation / self.n_members


@dataclass(frozen=True)
class RoundRecord:
    """Aggregate record of one simulated round.

    Attributes:
        round_index: 0-based round number.
        outcomes: per-subject outcomes keyed by subject id.
        benefit: the requester's realized benefit ``sum w_i q_i``.
        total_compensation: total pay this round.
        utility: ``benefit - mu * total_compensation``.
        design_ms: wall-clock milliseconds the requester spent
            (re-)designing contracts this round; ``None`` on rounds that
            reused the previous design (``redesign_every`` amortization).
        span_id: id of the round's ``simulation.round`` tracing span
            (``None`` when the run was untraced).  Lets a span dump be
            joined back onto the ledger it was produced with.
        n_dirty: subjects the policy actually re-solved on this round's
            re-design (delta-aware redesign provenance; ``None`` on
            rounds without a re-design or for policies that don't track
            deltas).
        reuse_rate: fraction of subjects whose previous design was
            reused on this round's re-design (``None`` like ``n_dirty``).
            A static population reports 1.0 on every redesign round
            after the first.
    """

    round_index: int
    outcomes: Dict[str, SubjectRoundOutcome]
    benefit: float
    total_compensation: float
    utility: float
    design_ms: Optional[float] = None
    span_id: Optional[str] = None
    n_dirty: Optional[int] = None
    reuse_rate: Optional[float] = None


class SimulationLedger:
    """Accumulates round records and derives aggregate views."""

    def __init__(self) -> None:
        self._records: List[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        """Add the next round's record (rounds must arrive in order)."""
        expected = len(self._records)
        if record.round_index != expected:
            raise SimulationError(
                f"expected round {expected}, got {record.round_index}"
            )
        self._records.append(record)

    @property
    def n_rounds(self) -> int:
        """Rounds recorded so far."""
        return len(self._records)

    @property
    def records(self) -> Tuple[RoundRecord, ...]:
        """All records, in round order."""
        return tuple(self._records)

    def utility_series(self) -> np.ndarray:
        """Per-round requester utility (the Fig. 8c series)."""
        return np.array([record.utility for record in self._records])

    def cumulative_utility(self) -> np.ndarray:
        """Cumulative requester utility over rounds."""
        return np.cumsum(self.utility_series())

    def total_utility(self) -> float:
        """Total requester utility over the whole run."""
        return float(self.utility_series().sum()) if self._records else 0.0

    def compensation_by_type(
        self, worker_type: Optional[WorkerType] = None
    ) -> Dict[WorkerType, np.ndarray]:
        """Per-round mean per-member compensation for each class.

        Args:
            worker_type: restrict to one class, or ``None`` for all.
        """
        selected = (
            [worker_type] if worker_type is not None else list(WorkerType)
        )
        series: Dict[WorkerType, List[float]] = {wt: [] for wt in selected}
        for record in self._records:
            per_type: Dict[WorkerType, List[float]] = {wt: [] for wt in selected}
            for outcome in record.outcomes.values():
                if outcome.worker_type in per_type:
                    per_type[outcome.worker_type].append(
                        outcome.per_member_compensation
                    )
            for wt in selected:
                values = per_type[wt]
                series[wt].append(float(np.mean(values)) if values else 0.0)
        return {wt: np.array(values) for wt, values in series.items()}

    def mean_effort_by_type(self) -> Dict[WorkerType, float]:
        """Run-level mean per-member effort for each class."""
        totals: Dict[WorkerType, List[float]] = {wt: [] for wt in WorkerType}
        for record in self._records:
            for outcome in record.outcomes.values():
                totals[outcome.worker_type].append(
                    outcome.effort / outcome.n_members
                )
        return {
            wt: (float(np.mean(values)) if values else 0.0)
            for wt, values in totals.items()
        }

    def total_design_ms(self) -> float:
        """Total wall-clock design time booked across all rounds.

        Rounds that reused a previous design contribute zero; the total
        is the amortized cost a ``redesign_every > 1`` requester pays.
        """
        return sum(
            record.design_ms
            for record in self._records
            if record.design_ms is not None
        )

    def mean_reuse_rate(self) -> Optional[float]:
        """Mean delta-redesign reuse rate across redesign rounds.

        ``None`` when no round carries dirty-set provenance (the policy
        never tracked redesign deltas).
        """
        rates = [
            record.reuse_rate
            for record in self._records
            if record.reuse_rate is not None
        ]
        if not rates:
            return None
        return float(np.mean(rates))

    def cache_hit_rate(self) -> Optional[float]:
        """Fraction of served (non-excluded) contracts that were cache hits.

        ``None`` when no outcome carries serving provenance (the run
        never went through the serving layer).
        """
        hits = 0
        served = 0
        for record in self._records:
            for outcome in record.outcomes.values():
                if outcome.cache_hit is None:
                    continue
                served += 1
                if outcome.cache_hit:
                    hits += 1
        if served == 0:
            return None
        return hits / served

    def summary(self) -> Dict[str, float]:
        """Headline totals for quick comparisons."""
        if not self._records:
            return {
                "n_rounds": 0.0,
                "total_utility": 0.0,
                "mean_round_utility": 0.0,
                "total_compensation": 0.0,
            }
        utilities = self.utility_series()
        return {
            "n_rounds": float(self.n_rounds),
            "total_utility": float(utilities.sum()),
            "mean_round_utility": float(utilities.mean()),
            "total_compensation": float(
                sum(record.total_compensation for record in self._records)
            ),
        }
