"""Worker retention dynamics.

The paper's abstract frames the goal as incentivizing "users' quality
*and retention*", but its model keeps the worker pool fixed.  This
module adds the retention half: each worker has a reservation utility
(its outside option per task) and a patience; after ``patience``
consecutive rounds of realized utility below the reservation level, the
worker leaves the marketplace for good.

Departure is what makes under-paying expensive in the long run: a flat
low payment doesn't just buy zero effort this round — it bleeds the
honest workforce, and with it all future benefit.  The ``ext_retention``
experiment quantifies exactly that against the dynamic contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Union, cast

import numpy as np

from ..core.utility import RequesterObjective
from ..errors import SimulationError
from ..types import WorkerType
from ..workers.columnar import WORKER_TYPE_CODES, ColumnarPopulation
from ..workers.population import PopulationModel
from .engine import MarketplaceSimulation
from .ledger import RoundRecord, SimulationLedger
from .policies import PaymentPolicy
from .streaming import StreamingLedger

__all__ = ["RetentionModel", "RetentionSimulation"]


@dataclass(frozen=True)
class RetentionModel:
    """When a worker gives up on the marketplace.

    Attributes:
        reservation_utility: the per-member utility the worker could get
            outside; per-round realized utility below this counts as a
            bad round.
        patience: consecutive bad rounds tolerated before leaving.
    """

    reservation_utility: float = 0.1
    patience: int = 2

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise SimulationError(f"patience must be >= 1, got {self.patience!r}")


class RetentionSimulation(MarketplaceSimulation):
    """A marketplace where underpaid workers quit.

    After every round, each active subject's realized per-member utility
    is compared with the retention model's reservation level; subjects
    accumulating ``patience`` consecutive bad rounds depart permanently
    (they are treated as excluded from then on — no pay, no feedback).

    Args:
        population: the assembled worker population.
        objective: the requester's parameters.
        policy: the payment policy under test.
        retention: the departure rule.
        seed: feedback-noise seed.
        redesign_every: policy re-design cadence.
        fast_rounds: round-kernel routing, as in
            :class:`~repro.simulation.engine.MarketplaceSimulation`.
    """

    def __init__(
        self,
        population: Union[PopulationModel, ColumnarPopulation],
        objective: RequesterObjective,
        policy: PaymentPolicy,
        retention: Optional[RetentionModel] = None,
        seed: int = 0,
        redesign_every: int = 1,
        fast_rounds: Optional[bool] = None,
        ledger: Optional[Union[SimulationLedger, StreamingLedger]] = None,
    ) -> None:
        super().__init__(
            population=population,
            objective=objective,
            policy=policy,
            seed=seed,
            redesign_every=redesign_every,
            fast_rounds=fast_rounds,
            ledger=ledger,
        )
        self.retention = retention if retention is not None else RetentionModel()
        self._bad_rounds: Dict[str, int] = {}
        # Columnar twin of the bad-round dict: one counter per row.
        self._bad_counts: Optional[np.ndarray] = None
        if isinstance(population, ColumnarPopulation):
            self._bad_counts = np.zeros(population.n_subjects, dtype=np.int64)

    @property
    def departed(self) -> Set[str]:
        """Subjects that have left the marketplace."""
        return set(self._departed)

    def retention_rate(self, worker_type: Optional[WorkerType] = None) -> float:
        """Fraction of (optionally type-filtered) subjects still active."""
        if self._columnar:
            population = cast(ColumnarPopulation, self.population)
            assert self._departed_mask is not None
            if worker_type is None:
                selected = np.ones(population.n_subjects, dtype=bool)
            else:
                selected = (
                    population.type_codes == WORKER_TYPE_CODES[worker_type]
                )
            total = int(np.count_nonzero(selected))
            if not total:
                return 1.0
            departed = int(np.count_nonzero(selected & self._departed_mask))
            return (total - departed) / total
        subjects = [
            subproblem.subject_id
            for subproblem in self.population.subproblems
            if worker_type is None
            or subproblem.params.worker_type is worker_type
        ]
        if not subjects:
            return 1.0
        active = sum(1 for s in subjects if s not in self._departed)
        return active / len(subjects)

    def _apply_departures_columnar(self, record: RoundRecord) -> None:
        """The departure rule over columns (no per-subject objects).

        Uses the round's realized utility columns when the fast kernel
        ran; on the legacy escape hatch, the columns are rebuilt from
        the record's materialized outcomes.  Comparisons are the scalar
        rule's exact ``<`` on the same float64 values, and — matching
        the object path — excluded subjects' counters are left alone,
        not reset.
        """
        population = cast(ColumnarPopulation, self.population)
        assert self._bad_counts is not None
        assert self._departed_mask is not None
        result = self._last_columnar_result
        if result is not None:
            active = result.active
            per_member = result.worker_utility / population.n_members
        else:
            active = np.zeros(population.n_subjects, dtype=bool)
            per_member = np.zeros(population.n_subjects)
            for subject_id, outcome in record.outcomes.items():
                if outcome.excluded:
                    continue
                row = population.index_of(subject_id)
                active[row] = True
                per_member[row] = (
                    outcome.worker_utility / outcome.n_members
                )
        bad = active & (per_member < self.retention.reservation_utility)
        good = active & ~bad
        self._bad_counts[bad] += 1
        self._bad_counts[good] = 0
        departed_now = self._bad_counts >= self.retention.patience
        fresh = departed_now & ~self._departed_mask
        if fresh.any():
            self._departed_mask |= departed_now
            for row in np.flatnonzero(fresh):
                self._departed.add(population.subject_id(int(row)))

    def step(self) -> RoundRecord:
        """One round, then apply the departure rule."""
        record = super().step()
        if self._columnar:
            self._apply_departures_columnar(record)
            return record
        for subject_id, outcome in record.outcomes.items():
            if outcome.excluded:
                continue
            per_member = outcome.worker_utility / outcome.n_members
            if per_member < self.retention.reservation_utility:
                bad = self._bad_rounds.get(subject_id, 0) + 1
                self._bad_rounds[subject_id] = bad
                if bad >= self.retention.patience:
                    self._departed.add(subject_id)
            else:
                self._bad_rounds[subject_id] = 0
        return record
