"""Online-adaptive dynamic contracts.

The paper's contract is already *quality-contingent* — pay depends on
last round's feedback — but its Section V evaluation estimates the
Eq. (5) weights once, offline, from the historical trace.  This module
closes the remaining loop (the paper's "adaptive to changes in workers'
behavior" claim, and the Section VII plan to handle "more sophisticated
malicious workers"): the requester re-estimates every subject's rating
deviation and malice probability from the rounds it actually observes,
via exponentially-weighted moving averages, and re-designs contracts on
the updated weights.

Against stationary workers the adaptive policy converges to the
offline-weighted one; against camouflaged or intermittent attackers it
withdraws incentive pay within a few rounds of a behaviour flip — the
`ext_adaptive` and `ext_camouflage` experiments quantify both.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.decomposition import Subproblem, SubproblemSolution, solve_subproblems
from ..core.contract import Contract
from ..core.designer import DesignerConfig
from ..core.sweep import fastpath_enabled
from ..errors import SimulationError
from ..estimation.malice import deviation_to_malice
from ..serving.fingerprint import subproblem_fingerprint
from ..serving.pool import DeltaSolveState, RedesignStats, SolveDiagnostics
from ..types import FeedbackWeightParameters
from ..workers.population import PopulationModel
from .ledger import RoundRecord
from .policies import PaymentPolicy

__all__ = ["EwmaDeviationTracker", "AdaptiveDynamicPolicy"]


class EwmaDeviationTracker:
    """Per-subject exponentially-weighted rating-deviation estimate.

    Args:
        smoothing: weight of the newest observation in ``(0, 1]``; 1.0
            means "trust only the latest round".
        prior_deviation: estimate before any observation.
    """

    def __init__(self, smoothing: float = 0.4, prior_deviation: float = 0.4) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError(
                f"smoothing must lie in (0, 1], got {smoothing!r}"
            )
        if prior_deviation <= 0.0:
            raise SimulationError(
                f"prior_deviation must be positive, got {prior_deviation!r}"
            )
        self.smoothing = smoothing
        self.prior_deviation = prior_deviation
        self._estimates: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def observe(self, subject_id: str, deviation: float) -> None:
        """Fold one observed deviation into the subject's estimate."""
        if deviation < 0.0:
            raise SimulationError(f"deviation must be >= 0, got {deviation!r}")
        previous = self._estimates.get(subject_id, self.prior_deviation)
        updated = self.smoothing * deviation + (1.0 - self.smoothing) * previous
        self._estimates[subject_id] = updated
        self._counts[subject_id] = self._counts.get(subject_id, 0) + 1

    def estimate(self, subject_id: str) -> float:
        """The current deviation estimate (the prior if never observed)."""
        return self._estimates.get(subject_id, self.prior_deviation)

    def n_observations(self, subject_id: str) -> int:
        """How many rounds have informed this subject's estimate."""
        return self._counts.get(subject_id, 0)


class AdaptiveDynamicPolicy(PaymentPolicy):
    """Dynamic contracts with online weight re-estimation.

    Each round the policy maps every subject's EWMA rating deviation to
    an Eq. (5) weight (accuracy term, malice-ramp penalty, partner
    penalty) and solves the decomposed design on those weights.

    Args:
        mu: requester compensation weight.
        weight_params: Eq. (5) coefficients.
        config: designer configuration.
        smoothing: EWMA smoothing factor.
        prior_deviation: deviation assumed before any observation (the
            benefit of the doubt new workers get).
        honest_deviation / malicious_deviation / steepness: the malice
            ramp (see :func:`repro.estimation.malice.deviation_to_malice`).
        freeze_after: stop folding in observations after this many
            rounds; ``freeze_after=1`` models a requester that estimates
            once (the paper's offline estimation) and never re-checks —
            the baseline the camouflage experiment exposes.  ``None``
            (default) keeps learning forever.
        delta: dirty-set redesign — re-solve only subjects whose
            Eq. (5) weight (or base subproblem) actually moved since the
            last re-design and reuse the stored designs for the rest.
            ``None`` (the default) follows the ``REPRO_FASTPATH``
            convention; reuse is cross-verified under
            ``REPRO_CHECK_INVARIANTS=1``.
    """

    def __init__(
        self,
        mu: float = 1.0,
        weight_params: Optional[FeedbackWeightParameters] = None,
        config: Optional[DesignerConfig] = None,
        smoothing: float = 0.4,
        prior_deviation: float = 0.4,
        honest_deviation: float = 0.4,
        malicious_deviation: float = 1.5,
        steepness: float = 4.0,
        freeze_after: Optional[int] = None,
        delta: Optional[bool] = None,
    ) -> None:
        if mu <= 0.0:
            raise SimulationError(f"mu must be positive, got {mu!r}")
        if freeze_after is not None and freeze_after < 1:
            raise SimulationError(
                f"freeze_after must be >= 1 when set, got {freeze_after!r}"
            )
        self.mu = mu
        self.weight_params = (
            weight_params if weight_params is not None else FeedbackWeightParameters()
        )
        self.config = config
        self.tracker = EwmaDeviationTracker(
            smoothing=smoothing, prior_deviation=prior_deviation
        )
        self.honest_deviation = honest_deviation
        self.malicious_deviation = malicious_deviation
        self.steepness = steepness
        self.freeze_after = freeze_after
        self.delta = delta
        self._observed_rounds = 0
        self._weights: Dict[str, float] = {}
        self._solutions: Optional[Dict[str, SubproblemSolution]] = None
        self._delta_state: Optional[DeltaSolveState] = None
        self._stats: Optional[RedesignStats] = None
        # Per-subject weight-substituted subproblems from the previous
        # re-design, plus the population subproblem each derived from.
        # Reusing the *same object* when neither moved is what lets the
        # DeltaSolveState identity check (and the engine's identity-keyed
        # response caches) hit without hashing anything.
        self._updated: Dict[str, Subproblem] = {}
        self._bases: Dict[str, Subproblem] = {}

    def _weight_of(self, subject_id: str, n_partners: int) -> float:
        deviation = self.tracker.estimate(subject_id)
        malice = deviation_to_malice(
            deviation,
            honest_deviation=self.honest_deviation,
            malicious_deviation=self.malicious_deviation,
            steepness=self.steepness,
        )
        return self.weight_params.weight_from_deviation(
            deviation, malice_probability=malice, n_partners=n_partners
        )

    def _delta_enabled(self) -> bool:
        return self.delta if self.delta is not None else fastpath_enabled()

    def _updated_subproblem(
        self, subproblem: Subproblem, weight: float
    ) -> Subproblem:
        """The weight-substituted subproblem, object-reused when clean."""
        subject_id = subproblem.subject_id
        previous = self._updated.get(subject_id)
        if (
            previous is not None
            and self._bases.get(subject_id) is subproblem
            # Exact comparison on purpose (a cache-key question, not a
            # numeric one): the EWMA arithmetic is deterministic, so an
            # unchanged estimate reproduces the identical float, and any
            # real movement must dirty the design.
            and previous.feedback_weight == weight  # noqa: REPRO001
        ):
            return previous
        fresh = replace(subproblem, feedback_weight=weight)
        self._updated[subject_id] = fresh
        self._bases[subject_id] = subproblem
        return fresh

    def _solve_fresh(
        self, subproblems: Sequence[Subproblem]
    ) -> Tuple[Dict[str, SubproblemSolution], Dict[str, SolveDiagnostics]]:
        return (
            solve_subproblems(subproblems, mu=self.mu, config=self.config),
            {},
        )

    def _fingerprint_of(self, subproblem: Subproblem) -> str:
        return subproblem_fingerprint(subproblem, mu=self.mu, config=self.config)

    def contracts(self, population: PopulationModel) -> Dict[str, Contract]:
        delta = self._delta_enabled()
        updated: List[Subproblem] = []
        self._weights = {}
        for subproblem in population.subproblems:
            weight = self._weight_of(
                subproblem.subject_id, subproblem.size - 1
            )
            self._weights[subproblem.subject_id] = weight
            if delta:
                updated.append(self._updated_subproblem(subproblem, weight))
            else:
                updated.append(replace(subproblem, feedback_weight=weight))
        if delta:
            if self._delta_state is None:
                self._delta_state = DeltaSolveState()
            solutions, _, stats = self._delta_state.resolve(
                updated,
                fingerprint_of=self._fingerprint_of,
                solve=self._solve_fresh,
            )
        else:
            solutions, _ = self._solve_fresh(updated)
            stats = RedesignStats(n_subjects=len(updated), n_dirty=len(updated))
        self._stats = stats
        self._solutions = solutions
        return {
            subject_id: solution.result.contract
            for subject_id, solution in solutions.items()
        }

    def redesign_stats(self) -> Optional[RedesignStats]:
        return self._stats

    def current_weights(self, population: PopulationModel) -> Dict[str, float]:
        """The online Eq. (5) weights used for the latest contracts."""
        if not self._weights:
            # First round, not yet designed: compute from priors.
            return {
                subproblem.subject_id: self._weight_of(
                    subproblem.subject_id, subproblem.size - 1
                )
                for subproblem in population.subproblems
            }
        return dict(self._weights)

    def observe(self, record: RoundRecord) -> None:
        """Fold each non-excluded subject's observed deviation in.

        Observation stops once ``freeze_after`` rounds have been
        absorbed (the one-shot-estimation baseline).
        """
        if self.freeze_after is not None and self._observed_rounds >= self.freeze_after:
            return
        for subject_id, outcome in record.outcomes.items():
            if not outcome.excluded:
                self.tracker.observe(subject_id, outcome.rating_deviation)
        self._observed_rounds += 1

    @property
    def last_solutions(self) -> Optional[Dict[str, SubproblemSolution]]:
        """Per-subject design results of the most recent re-design."""
        return self._solutions
