"""Batched candidate sweep: the Section IV-C designer hot path, in O(K).

The legacy sweep re-runs the Eq. (39)-(40) slope recursion from scratch
for every target piece ``k``, re-derives all ``K`` Lemma 4.1 windows per
candidate and re-enumerates the worker's Eq. (30) candidate efforts per
contract — quadratic-and-worse in the grid size ``K``.  This module
exploits the *shared-prefix* structure of the construction instead:

* **One recursion for all candidates.**  The Eq. (39) slopes are
  target-independent: candidate ``xi^(k)`` is exactly the first ``k``
  recursion slopes followed by a flat tail.  A single O(K) pass yields
  every candidate's slope vector as a prefix view.
* **Thresholds once per piece.**  The Lemma 4.1 Case I/III/II windows
  depend on the piece, not on the candidate — ``K`` thresholds instead
  of ``K^2`` (the legacy path rebuilt them per candidate).
* **One cumulative sum for all pay schedules.**  With shared prefixes,
  candidate ``k``'s compensations are ``V[min(l, k)]`` of a single
  cumulative sum ``V`` over ``slope * (d_l - d_{l-1})`` — no per-candidate
  :class:`~repro.core.contract.Contract` is materialized until the
  result objects are assembled.
* **Vectorized best responses.**  Every candidate shares the same knot
  set, so the Eq. (30) candidate efforts (knot inverses, per-piece
  Eq. (31) stationary points, the flat-region ``psi'(y) = beta/omega``
  point of DESIGN.md §2) are computed once and the worker utilities of
  all (candidate, effort) pairs evaluated as one NumPy matrix.

The fast path returns :class:`~repro.core.candidate.CandidateContract`
and :class:`~repro.core.best_response.BestResponse` objects equivalent
to the legacy per-candidate path within :mod:`repro.numerics`
tolerances.  Under ``REPRO_CHECK_INVARIANTS=1`` every fast sweep is
cross-verified against a freshly-solved legacy sweep, and
``REPRO_FASTPATH=0`` routes callers back to the legacy path entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.invariants import (
    InvariantViolation,
    check_candidate_invariants,
    invariants_enabled,
)
from ..errors import DesignError
from ..numerics import ABS_TOL, REL_TOL, close
from ..obs.trace import get_tracer
from ..types import DiscretizationGrid, WorkerParameters
from .best_response import BestResponse, solve_best_response
from .candidate import CandidateContract, build_candidate
from .cases import PieceCase
from .contract import Contract
from .effort import QuadraticEffort
from .piecewise import batch_locate

__all__ = [
    "ENV_FASTPATH",
    "PrefixTables",
    "SweepStats",
    "fastpath_enabled",
    "prefix_tables",
    "vectorized_sweep",
    "legacy_sweep",
    "sweep_candidates",
    "sweep_candidates_with_stats",
    "require_sweeps_agree",
]

#: Environment variable gating the vectorized fast path.  The fast path
#: is **on** by default; set ``REPRO_FASTPATH=0`` (or ``false/no/off``)
#: to force the legacy per-candidate sweep everywhere.
ENV_FASTPATH = "REPRO_FASTPATH"
_FALSY = frozenset({"0", "false", "no", "off"})

#: One (candidate, best-response) pair per target piece, ordered by piece.
SweepPairs = List[Tuple[CandidateContract, BestResponse]]

_CASE_BY_CODE = (
    PieceCase.LEFT_ENDPOINT,
    PieceCase.INTERIOR,
    PieceCase.RIGHT_ENDPOINT,
)


def fastpath_enabled() -> bool:
    """Whether the vectorized Section IV-C sweep is switched on.

    Controlled by the ``REPRO_FASTPATH`` environment variable; anything
    other than an explicit falsy value (``0/false/no/off``) enables it.
    """
    return os.environ.get(ENV_FASTPATH, "").strip().lower() not in _FALSY


@dataclass(frozen=True)
class SweepStats:
    """How one candidate sweep was computed (obs span attributes).

    Attributes:
        fastpath: whether the vectorized engine produced the sweep.
        n_candidates: number of candidate contracts (the grid size ``K``).
        n_efforts: shared Eq. (30) candidate efforts enumerated (0 on
            the legacy path, which re-enumerates per candidate).
        n_vectorized: total (candidate, effort) utility evaluations done
            in the single vectorized pass (0 on the legacy path).
    """

    fastpath: bool
    n_candidates: int
    n_efforts: int
    n_vectorized: int

    def __post_init__(self) -> None:
        for name in ("n_candidates", "n_efforts", "n_vectorized"):
            value = getattr(self, name)
            if value < 0:
                raise DesignError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class PrefixTables:
    """Target-independent tables shared by all ``K`` candidates.

    One O(K) pass over the Eq. (39)-(40) recursion plus the Lemma 4.1
    thresholds; every candidate contract is a prefix view into these
    arrays (see the module docstring).

    Attributes:
        breakpoints: feedback breakpoints ``d_l = psi(l * delta)``,
            length ``K + 1`` (Section III-A).
        slopes: the Eq. (39) recursion slopes ``alpha_l`` (post
            clamping), length ``K``.
        epsilons: the Eq. (40) slack terms ``eps_l``, length ``K``.
        clamped: pieces whose recursion slope was clamped to zero.
        values: cumulative pay ``V[l] = base_pay + sum_{j<=l} alpha_j *
            (d_j - d_{j-1})``, length ``K + 1``; candidate ``k``'s
            compensation at knot ``l`` is ``V[min(l, k)]``.
        prefix_cases: Lemma 4.1 case of each recursion slope in its own
            piece, length ``K``.
        zero_cases: Lemma 4.1 case of a flat (``alpha = 0``) piece,
            length ``K`` (the tail pieces of every candidate).
    """

    breakpoints: np.ndarray
    slopes: np.ndarray
    epsilons: np.ndarray
    clamped: Tuple[int, ...]
    values: np.ndarray
    prefix_cases: Tuple[PieceCase, ...]
    zero_cases: Tuple[PieceCase, ...]

    def __post_init__(self) -> None:
        n_pieces = len(self.slopes)
        if len(self.breakpoints) != n_pieces + 1 or len(self.values) != n_pieces + 1:
            raise DesignError(
                f"inconsistent prefix tables: {n_pieces} slopes need "
                f"{n_pieces + 1} breakpoints/values, got "
                f"{len(self.breakpoints)}/{len(self.values)}"
            )
        if not (
            np.all(np.isfinite(self.slopes))
            and np.all(np.isfinite(self.values))
            and np.all(np.isfinite(self.breakpoints))
        ):
            raise DesignError("prefix tables must be finite")


def _classify_codes(
    slopes: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> Tuple[PieceCase, ...]:
    """Vectorized Lemma 4.1 classification (Eqs. 32-35 ordering)."""
    codes = np.where(slopes <= lower, 0, np.where(slopes >= upper, 2, 1))
    return tuple(_CASE_BY_CODE[int(code)] for code in codes)


def prefix_tables(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    base_pay: float = 0.0,
) -> PrefixTables:
    """Run the shared Eq. (39)-(40) recursion once for all candidates.

    The recursion slopes are target-independent (candidate ``xi^(k)`` of
    Section IV-C is the first ``k`` slopes plus a flat tail), so one
    O(K) pass — vectorized derivatives and Eq. (40) slacks, a single
    sequential sweep for the Eq. (39) gains — yields every candidate's
    slope prefix, pay schedule (via cumulative sum) and Lemma 4.1 cases.

    Args:
        effort_function: the worker's fitted effort function ``psi``.
        grid: effort discretization (``K`` intervals of width ``delta``).
        params: worker parameters ``(beta, omega)``.
        base_pay: compensation at zero effort (``x_0``).

    Returns:
        The :class:`PrefixTables` shared by all ``K`` candidates.
    """
    effort_function.require_increasing_on(grid.max_effort)
    beta, omega = params.beta, params.omega
    r2 = effort_function.r2
    delta = grid.delta

    edges = np.asarray(grid.edges(), dtype=float)
    # psi'(edges), elementwise identical to QuadraticEffort.derivative.
    derivatives = 2.0 * r2 * edges + effort_function.r1
    if derivatives[-1] <= 0.0:
        raise DesignError(
            f"psi' must stay positive over the grid; psi'({edges[-1]!r}) = "
            f"{derivatives[-1]!r}"
        )
    slope_left = derivatives[:-1]
    slope_right = derivatives[1:]
    # Eq. (40) slack, with the division typo fixed (DESIGN.md §2).
    epsilons = 4.0 * beta * r2 * r2 * delta * delta / (
        slope_left * slope_left * slope_right
    )

    # Eq. (39) gains: sequential by construction (each piece's slope
    # feeds the next piece's threshold), but a single O(K) sweep.
    slopes = np.empty(grid.n_intervals, dtype=float)
    clamped: List[int] = []
    previous_gain = beta / float(derivatives[0])
    for index in range(grid.n_intervals):
        left = float(slope_left[index])
        gain = beta * beta / (previous_gain * left * left) + float(epsilons[index])
        slope = gain - omega
        if slope < 0.0:
            # Same monotone fallback as the legacy construction: the
            # whole Case III window sits below zero, so the piece goes
            # flat (see candidate._build_candidate).
            slope = 0.0
            clamped.append(index + 1)
        slopes[index] = slope
        previous_gain = slope + omega

    breakpoints = (r2 * edges + effort_function.r1) * edges + effort_function.r0
    widths = breakpoints[1:] - breakpoints[:-1]
    # Sequential cumulative pay, matching the legacy per-candidate
    # Contract.from_feedback_slopes accumulation bit for bit.
    values = np.cumsum(np.concatenate(([float(base_pay)], slopes * widths)))

    # Lemma 4.1 thresholds, once per piece (K objects instead of K^2).
    lower = beta / slope_left - omega
    upper = beta / slope_right - omega
    prefix_cases = _classify_codes(slopes, lower, upper)
    zero_cases = _classify_codes(np.zeros_like(slopes), lower, upper)

    return PrefixTables(
        breakpoints=breakpoints,
        slopes=slopes,
        epsilons=epsilons,
        clamped=tuple(clamped),
        values=values,
        prefix_cases=prefix_cases,
        zero_cases=zero_cases,
    )


def _candidate_effort_table(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    tables: PrefixTables,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared Eq. (30) candidate efforts and their first-valid pieces.

    Returns ``(efforts, min_piece)``: ``efforts`` sorted ascending, and
    ``min_piece[c]`` the smallest target piece ``k`` for which effort
    ``c`` is a legal candidate (0 = legal for every candidate, ``K + 1``
    reserved for the omega stationary point handled separately).
    """
    beta, omega = params.beta, params.omega
    knots = tables.breakpoints
    n_pieces = grid.n_intervals

    efforts: List[float] = [0.0]
    min_piece: List[float] = [0.0]

    # Knot inverses: efforts at which feedback crosses a contract knot.
    # All knots lie on the increasing branch (the grid is inside it), so
    # every knot contributes — via the same quadratic-formula branch as
    # QuadraticEffort.inverse.
    r1, r2, r0 = effort_function.r1, effort_function.r2, effort_function.r0
    reachable = (knots >= r0) & (knots <= effort_function.max_feedback)
    reachable_knots = knots[reachable]
    discriminant = np.maximum(r1 * r1 - 4.0 * r2 * (r0 - reachable_knots), 0.0)
    knot_efforts = (-r1 + np.sqrt(discriminant)) / (2.0 * r2)
    efforts.extend(float(value) for value in knot_efforts)
    min_piece.extend([0.0] * len(knot_efforts))

    # Per-piece Eq. (31) stationary points of the shared slope prefix:
    # valid for every candidate whose prefix covers the piece (k >= l).
    # Slopes are *reconstructed* from the cumulative pay (dy/dx over the
    # knots), exactly as the legacy solver reads them back off the
    # posted contract — the recursion slopes differ by rounding ulps.
    reconstructed = (tables.values[1:] - tables.values[:-1]) / (
        knots[1:] - knots[:-1]
    )
    for index in range(n_pieces):
        gain = float(reconstructed[index]) + omega
        if gain <= 0.0:
            continue
        stationary = effort_function.derivative_inverse(beta / gain)
        if stationary <= 0.0:
            continue
        feedback = float(effort_function(stationary))
        if knots[index] <= feedback < knots[index + 1]:
            efforts.append(stationary)
            min_piece.append(float(index + 1))

    order = np.argsort(np.asarray(efforts), kind="stable")
    effort_array = np.asarray(efforts, dtype=float)[order]
    min_piece_array = np.asarray(min_piece, dtype=float)[order]
    return effort_array, min_piece_array


def _omega_stationary_validity(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    tables: PrefixTables,
) -> Tuple[Optional[float], Optional[int], bool]:
    """The flat-region stationary point ``psi'(y) = beta / omega``.

    Beyond the knot span (and in every flat tail piece) pay is constant
    but the Eq. (14) influence term still rewards effort — the case the
    paper's construction implicitly assumes away (DESIGN.md §2).

    Returns ``(effort, interior_piece, outside_knots)``: the stationary
    effort (``None`` when absent), the 1-based tail piece containing its
    feedback (``None`` when it falls outside every interior piece), and
    whether it lands beyond the knot span (valid for all candidates).
    """
    if params.omega <= 0.0:
        return None, None, False
    stationary = effort_function.derivative_inverse(params.beta / params.omega)
    if stationary <= 0.0:
        return None, None, False
    feedback = float(effort_function(stationary))
    knots = tables.breakpoints
    outside = feedback >= knots[-1] or feedback <= knots[0]
    interior: Optional[int] = None
    if knots[0] <= feedback < knots[-1]:
        # The unique interior piece whose half-open window holds the
        # feedback; candidates with target k < piece leave it flat.
        index = int(np.searchsorted(knots, feedback, side="right")) - 1
        index = min(max(index, 0), grid.n_intervals - 1)
        if knots[index] <= feedback < knots[index + 1]:
            interior = index + 1
    return stationary, interior, outside


def vectorized_sweep(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    base_pay: float = 0.0,
) -> Tuple[SweepPairs, SweepStats]:
    """Solve all ``K`` Section IV-C candidates in one vectorized pass.

    Implements the shared-prefix batching of the module docstring: the
    Eq. (39)-(40) recursion runs once, Lemma 4.1 thresholds are computed
    once per piece, and the Eq. (30) best responses of every candidate
    are evaluated as a single (candidate x effort) utility matrix with
    ties broken toward lower effort at :mod:`repro.numerics` tolerance.

    Args:
        effort_function: the worker's fitted effort function ``psi``.
        grid: effort discretization (``K`` intervals).
        params: worker parameters ``(beta, omega)``.
        base_pay: compensation at zero effort (``x_0``).

    Returns:
        ``(pairs, stats)`` — one ``(candidate, response)`` pair per
        target piece (ordered ``1..K``) and the sweep statistics.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        tables = prefix_tables(effort_function, grid, params, base_pay=base_pay)
    else:
        # One batched span where the legacy path emits K per-candidate
        # ``core.candidate_build`` spans: the shared Eq. (39)-(40)
        # construction happens exactly once on this path.
        with tracer.span(
            "core.candidate_build", batched=True, n_candidates=grid.n_intervals
        ) as build_span:
            tables = prefix_tables(
                effort_function, grid, params, base_pay=base_pay
            )
            build_span.set("n_clamped", len(tables.clamped))
    n_pieces = grid.n_intervals
    beta, omega = params.beta, params.omega
    knots = tables.breakpoints
    values = tables.values

    efforts, min_piece = _candidate_effort_table(
        effort_function, grid, params, tables
    )
    omega_effort, omega_piece, omega_outside = _omega_stationary_validity(
        effort_function, grid, params, tables
    )
    max_piece = np.full(efforts.shape, float(n_pieces), dtype=float)
    if omega_effort is not None and (omega_outside or omega_piece is not None):
        # Insert the omega stationary point keeping ascending order.
        position = int(np.searchsorted(efforts, omega_effort, side="left"))
        efforts = np.insert(efforts, position, omega_effort)
        if omega_outside:
            lo, hi = 0.0, float(n_pieces)
        else:
            # Valid only while the containing piece is still flat tail.
            lo, hi = 0.0, float(omega_piece - 1)
        min_piece = np.insert(min_piece, position, lo)
        max_piece = np.insert(max_piece, position, hi)

    feedbacks = np.asarray(effort_function(efforts), dtype=float)
    pay_feedbacks = np.maximum(feedbacks, 0.0)
    indices, fractions = batch_locate(knots, pay_feedbacks)

    k_column = np.arange(1, n_pieces + 1, dtype=np.int64)[:, None]
    left_index = np.minimum(indices[None, :], k_column)
    right_index = np.minimum(indices[None, :] + 1, k_column)
    value_left = values[left_index]
    value_right = values[right_index]
    pay = value_left + fractions[None, :] * (value_right - value_left)
    # Flat extrapolation is exact (no interpolation residue), matching
    # PiecewiseLinear.__call__'s early returns on the Eq. (6) function.
    below = pay_feedbacks <= knots[0]
    above = pay_feedbacks >= knots[-1]
    if bool(np.any(below)):
        pay[:, below] = values[0]
    if bool(np.any(above)):
        # Candidate k's last breakpoint value is V[k] (flat tail).
        pay[:, above] = values[k_column]

    # Worker utility of Eqs. (11)/(14), evaluated in the same operation
    # order as best_response.worker_utility.
    utilities = pay + omega * feedbacks[None, :] - beta * efforts[None, :]

    valid = (min_piece[None, :] <= k_column) & (k_column <= max_piece[None, :])
    masked = np.where(valid, utilities, -np.inf)
    best_utility = masked.max(axis=1, keepdims=True)
    slack = np.maximum(
        REL_TOL * np.maximum(np.abs(masked), np.abs(best_utility)), ABS_TOL
    )
    eligible = valid & (best_utility - masked <= slack)
    chosen = eligible.argmax(axis=1)

    pairs: SweepPairs = []
    slope_list = [float(slope) for slope in tables.slopes]
    epsilon_list = [float(epsilon) for epsilon in tables.epsilons]
    value_list = [float(value) for value in values]
    for k in range(1, n_pieces + 1):
        compensations = tuple(value_list[: k + 1]) + (value_list[k],) * (
            n_pieces - k
        )
        contract = Contract(
            grid=grid, effort_function=effort_function, compensations=compensations
        )
        candidate = CandidateContract(
            target_piece=k,
            params=params,
            contract=contract,
            slopes=tuple(slope_list[:k]) + (0.0,) * (n_pieces - k),
            epsilons=tuple(epsilon_list[:k]),
            cases=tables.prefix_cases[:k] + tables.zero_cases[k:],
            clamped_pieces=tuple(
                piece for piece in tables.clamped if piece <= k
            ),
        )
        column = int(chosen[k - 1])
        effort = float(efforts[column])
        response = BestResponse(
            effort=effort,
            utility=float(utilities[k - 1, column]),
            feedback=float(feedbacks[column]),
            compensation=float(pay[k - 1, column]),
            piece=grid.locate(effort),
        )
        pairs.append((candidate, response))

    stats = SweepStats(
        fastpath=True,
        n_candidates=n_pieces,
        n_efforts=len(efforts),
        n_vectorized=n_pieces * len(efforts),
    )
    return pairs, stats


def legacy_sweep(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    base_pay: float = 0.0,
) -> Tuple[SweepPairs, SweepStats]:
    """The per-candidate Section IV-C sweep (Eqs. 39-40 re-run per ``k``).

    One :func:`~repro.core.candidate.build_candidate` plus one exact
    :func:`~repro.core.best_response.solve_best_response` per target
    piece — the reference implementation the vectorized engine is
    cross-verified against.
    """
    pairs: SweepPairs = []
    for target_piece in range(1, grid.n_intervals + 1):
        candidate = build_candidate(
            effort_function=effort_function,
            grid=grid,
            params=params,
            target_piece=target_piece,
            base_pay=base_pay,
        )
        response = solve_best_response(candidate.contract, params)
        pairs.append((candidate, response))
    stats = SweepStats(
        fastpath=False,
        n_candidates=grid.n_intervals,
        n_efforts=0,
        n_vectorized=0,
    )
    return pairs, stats


def require_sweeps_agree(fast: SweepPairs, legacy: SweepPairs) -> None:
    """Assert fast and legacy sweeps agree to :mod:`repro.numerics` tolerance.

    The equivalence contract behind the Theorem 4.1 certificate: both
    paths must post the same compensations and reach the same Eq. (30)
    best responses per target piece.

    Raises:
        InvariantViolation: on the first disagreement.
    """
    if len(fast) != len(legacy):
        raise InvariantViolation(
            f"sweep fast path produced {len(fast)} candidates, legacy "
            f"{len(legacy)}"
        )
    for (fast_candidate, fast_response), (ref_candidate, ref_response) in zip(
        fast, legacy
    ):
        k = ref_candidate.target_piece
        if fast_candidate.target_piece != k:
            raise InvariantViolation(
                f"sweep fast path mis-ordered candidates: got piece "
                f"{fast_candidate.target_piece}, want {k}"
            )
        if fast_candidate.clamped_pieces != ref_candidate.clamped_pieces:
            raise InvariantViolation(
                f"sweep fast path disagrees on clamped pieces for k={k}: "
                f"{fast_candidate.clamped_pieces!r} != "
                f"{ref_candidate.clamped_pieces!r}"
            )
        if fast_candidate.cases != ref_candidate.cases:
            raise InvariantViolation(
                f"sweep fast path disagrees on Lemma 4.1 cases for k={k}"
            )
        for name, fast_values, ref_values in (
            ("slopes", fast_candidate.slopes, ref_candidate.slopes),
            (
                "compensations",
                fast_candidate.contract.compensations,
                ref_candidate.contract.compensations,
            ),
        ):
            for index, (a, b) in enumerate(zip(fast_values, ref_values)):
                if not close(a, b):
                    raise InvariantViolation(
                        f"sweep fast path disagrees on {name}[{index}] for "
                        f"k={k}: {a!r} != {b!r}"
                    )
        if not close(fast_response.utility, ref_response.utility):
            raise InvariantViolation(
                f"sweep fast path disagrees on best-response utility for "
                f"k={k}: {fast_response.utility!r} != {ref_response.utility!r}"
            )
        if not close(fast_response.compensation, ref_response.compensation):
            raise InvariantViolation(
                f"sweep fast path disagrees on best-response compensation "
                f"for k={k}: {fast_response.compensation!r} != "
                f"{ref_response.compensation!r}"
            )


def sweep_candidates_with_stats(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    base_pay: float = 0.0,
) -> Tuple[SweepPairs, SweepStats]:
    """Route one Section IV-C candidate sweep through the fast path.

    The vectorized engine runs unless ``REPRO_FASTPATH=0``; under
    ``REPRO_CHECK_INVARIANTS=1`` the fast result is additionally
    cross-verified against a fresh legacy sweep (Lemma 4.2/4.3 checks
    included on both sides).
    """
    if not fastpath_enabled():
        return legacy_sweep(effort_function, grid, params, base_pay=base_pay)
    pairs, stats = vectorized_sweep(
        effort_function, grid, params, base_pay=base_pay
    )
    if invariants_enabled():
        for candidate, _ in pairs:
            check_candidate_invariants(candidate)
        reference, _ = legacy_sweep(
            effort_function, grid, params, base_pay=base_pay
        )
        require_sweeps_agree(pairs, reference)
    return pairs, stats


def sweep_candidates(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    base_pay: float = 0.0,
) -> SweepPairs:
    """All Section IV-C candidates with their exact best responses.

    Convenience wrapper over :func:`sweep_candidates_with_stats` for
    callers that do not record sweep statistics.
    """
    pairs, _ = sweep_candidates_with_stats(
        effort_function, grid, params, base_pay=base_pay
    )
    return pairs
