"""Effort functions: the mapping from worker effort to feedback.

The paper (Section IV-B) fits workers' observed (effort, feedback) pairs
with low-order polynomials and settles on concave quadratics

    psi(y) = r2 * y**2 + r1 * y + r0,      r2 < 0, r1 > 0,

as the *effort function* of every worker class.  The contract-building
algorithm of Section IV-C exploits exactly three analytic properties of
``psi``: concavity, twice-differentiability, and a strictly decreasing
first derivative (hence an invertible ``psi'``).  This module provides
the quadratic implementation together with the handful of derived
quantities the algorithm needs (``psi'``, ``psi'`` inverse, the largest
effort at which ``psi`` is still increasing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import EffortFunctionError

__all__ = ["QuadraticEffort"]


@dataclass(frozen=True)
class QuadraticEffort:
    """Concave quadratic effort function ``psi(y) = r2*y^2 + r1*y + r0``.

    Attributes:
        r2: quadratic coefficient; must be negative (concavity).
        r1: linear coefficient; must be positive so that ``psi`` is
            increasing at zero effort.
        r0: constant term (baseline feedback at zero effort); must be
            non-negative because feedback counts cannot be negative.
    """

    r2: float
    r1: float
    r0: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("r2", self.r2), ("r1", self.r1), ("r0", self.r0)):
            if not math.isfinite(value):
                raise EffortFunctionError(f"{name} must be finite, got {value!r}")
        if self.r2 >= 0.0:
            raise EffortFunctionError(
                f"r2 must be negative for a concave effort function, got {self.r2!r}"
            )
        if self.r1 <= 0.0:
            raise EffortFunctionError(
                f"r1 must be positive so psi is increasing at 0, got {self.r1!r}"
            )
        if self.r0 < 0.0:
            raise EffortFunctionError(
                f"r0 must be non-negative (feedback is a count), got {self.r0!r}"
            )

    def __call__(self, effort):
        """Evaluate ``psi`` at a scalar effort or numpy array of efforts."""
        return (self.r2 * effort + self.r1) * effort + self.r0

    def derivative(self, effort: float) -> float:
        """First derivative ``psi'(y) = 2*r2*y + r1``."""
        return 2.0 * self.r2 * effort + self.r1

    def second_derivative(self) -> float:
        """Second derivative ``psi''(y) = 2*r2`` (constant, negative)."""
        return 2.0 * self.r2

    def derivative_inverse(self, slope: float) -> float:
        """Invert ``psi'``: the effort at which ``psi'(y) == slope``.

        ``psi'`` is strictly decreasing, so the inverse is well defined
        for every real slope; callers are responsible for checking the
        result lies in their effort region of interest.
        """
        return (slope - self.r1) / (2.0 * self.r2)

    @property
    def max_increasing_effort(self) -> float:
        """The vertex ``-r1 / (2*r2)``: effort where ``psi'`` hits zero.

        ``psi`` is strictly increasing on ``[0, max_increasing_effort)``;
        contract design must restrict the effort region to this range so
        that feedback breakpoints ``d_l = psi(l*delta)`` stay strictly
        increasing.
        """
        return -self.r1 / (2.0 * self.r2)

    @property
    def max_feedback(self) -> float:
        """The supremum of ``psi`` (its value at the vertex)."""
        return self(self.max_increasing_effort)

    def is_increasing_on(self, max_effort: float) -> bool:
        """Whether ``psi`` is strictly increasing on ``[0, max_effort]``."""
        return max_effort < self.max_increasing_effort

    def require_increasing_on(self, max_effort: float) -> None:
        """Raise :class:`EffortFunctionError` unless ``psi`` increases on
        ``[0, max_effort]``.
        """
        if not self.is_increasing_on(max_effort):
            raise EffortFunctionError(
                f"effort region [0, {max_effort!r}] exceeds the increasing range "
                f"[0, {self.max_increasing_effort!r}) of psi; shrink delta or m"
            )

    def feedback_breakpoints(self, edges: Iterable[float]) -> Tuple[float, ...]:
        """Map effort edges ``l*delta`` to feedback breakpoints ``d_l``.

        This realizes the Section III-A construction
        ``d_l = psi(l * delta)``.  The edges must be non-decreasing and
        lie inside the increasing range of ``psi``.
        """
        edge_list = list(edges)
        if not edge_list:
            raise EffortFunctionError("at least one effort edge is required")
        last = edge_list[-1]
        self.require_increasing_on(last)
        previous = -math.inf
        for edge in edge_list:
            if edge < previous:
                raise EffortFunctionError(
                    f"effort edges must be non-decreasing, got {edge_list!r}"
                )
            previous = edge
        return tuple(float(self(edge)) for edge in edge_list)

    def inverse(self, feedback: float) -> float:
        """Effort producing ``feedback`` on the increasing branch of psi.

        Raises:
            EffortFunctionError: if ``feedback`` is below ``psi(0)`` or
                above the maximum attainable feedback.
        """
        if feedback < self.r0:
            raise EffortFunctionError(
                f"feedback {feedback!r} is below psi(0) = {self.r0!r}"
            )
        if feedback > self.max_feedback:
            raise EffortFunctionError(
                f"feedback {feedback!r} exceeds the maximum {self.max_feedback!r}"
            )
        # Solve r2*y^2 + r1*y + (r0 - feedback) = 0 for the smaller root
        # (the increasing branch).
        discriminant = self.r1 * self.r1 - 4.0 * self.r2 * (self.r0 - feedback)
        discriminant = max(discriminant, 0.0)
        return (-self.r1 + math.sqrt(discriminant)) / (2.0 * self.r2)

    def coefficients(self) -> Tuple[float, float, float]:
        """Coefficients ``(r2, r1, r0)`` in the paper's order."""
        return (self.r2, self.r1, self.r0)

    @staticmethod
    def from_coefficients(coefficients: Sequence[float]) -> "QuadraticEffort":
        """Build from ``(r2, r1, r0)`` (paper order, highest degree first)."""
        if len(coefficients) != 3:
            raise EffortFunctionError(
                f"expected 3 coefficients (r2, r1, r0), got {len(coefficients)}"
            )
        r2, r1, r0 = (float(value) for value in coefficients)
        return QuadraticEffort(r2=r2, r1=r1, r0=r0)

    def scaled(self, feedback_scale: float) -> "QuadraticEffort":
        """A new effort function with feedback scaled by a positive factor."""
        if feedback_scale <= 0.0:
            raise EffortFunctionError(
                f"feedback_scale must be positive, got {feedback_scale!r}"
            )
        return QuadraticEffort(
            r2=self.r2 * feedback_scale,
            r1=self.r1 * feedback_scale,
            r0=self.r0 * feedback_scale,
        )

    def sample(self, efforts: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation over a sequence of efforts."""
        return np.asarray(self(np.asarray(efforts, dtype=float)))

    def community_scaled(self, n_members: int) -> "QuadraticEffort":
        """The meta effort function of an ``n_members`` community.

        If each member contributes feedback ``psi(y)`` and the community
        splits its total effort ``Y`` evenly (any split is optimal under
        a concave ``psi``... the even split maximizes the sum), the
        summed feedback is ``n * psi(Y / n)``, i.e. a quadratic with
        ``r2/n, r1, r0*n``.  This realizes Eq. (3)'s ``psi_A`` from the
        per-member class fit.
        """
        if n_members < 1:
            raise EffortFunctionError(
                f"n_members must be >= 1, got {n_members!r}"
            )
        return QuadraticEffort(
            r2=self.r2 / n_members, r1=self.r1, r0=self.r0 * n_members
        )
