"""Budget-feasible contract selection (multiple-choice knapsack).

The paper's requester only penalizes pay through the weight ``mu``; the
budget-feasibility line it cites (Singer, FOCS'10 and follow-ups)
instead imposes a *hard* budget ``B`` on total pay.  This module bridges
the two: the designer's candidate sweep already prices every effort
interval for every subject (one ``(utility, pay)`` pair per candidate,
plus the free null contract), so budgeting the whole population is a
multiple-choice knapsack — pick exactly one option per subject,
maximize summed utility, keep summed pay within ``B``.

The solver is the standard pseudo-polynomial DP over a discretized cost
axis; with the null option always available it is feasible for every
budget, and as ``B`` grows the selection converges to the unconstrained
per-subject optima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import DesignError
from ..numerics import is_zero
from .decomposition import SubproblemSolution

__all__ = ["BudgetOption", "BudgetedDesign", "budget_options", "budgeted_selection"]


@dataclass(frozen=True)
class BudgetOption:
    """One way to engage one subject.

    Attributes:
        subject_id: the worker or community.
        target_piece: the candidate's effort interval, or ``None`` for
            the null (do-not-hire) option.
        utility: requester utility of the option.
        cost: expected pay of the option.
    """

    subject_id: str
    target_piece: Optional[int]
    utility: float
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0.0:
            raise DesignError(f"cost must be >= 0, got {self.cost!r}")


@dataclass(frozen=True)
class BudgetedDesign:
    """Result of the budgeted selection.

    Attributes:
        chosen: selected option per subject.
        total_utility: summed utility of the selection.
        total_cost: summed expected pay (``<= budget``).
        budget: the budget it was solved for.
    """

    chosen: Dict[str, BudgetOption]
    total_utility: float
    total_cost: float
    budget: float

    def __post_init__(self) -> None:
        for name in ("total_utility", "total_cost", "budget"):
            value = getattr(self, name)
            if not np.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")
        if self.budget < 0.0:
            raise DesignError(f"budget must be >= 0, got {self.budget!r}")

    @property
    def n_hired(self) -> int:
        """Subjects engaged with a non-null contract."""
        return sum(
            1 for option in self.chosen.values() if option.target_piece is not None
        )


def budget_options(
    solutions: Mapping[str, SubproblemSolution],
) -> Dict[str, List[BudgetOption]]:
    """Extract per-subject options from solved subproblems.

    The Section IV-B decomposition already prices every effort interval
    per subject, so the Eq. (7)/(8) requester objective splits into
    independent per-subject option menus.  Each candidate evaluation
    becomes one option (its exact
    best-response utility and pay); a zero-cost null option is always
    included.  Options that are dominated (another option has at least
    the utility at no more cost) are pruned — the knapsack answer is
    unchanged and the DP gets cheaper.
    """
    per_subject: Dict[str, List[BudgetOption]] = {}
    for subject_id, solution in solutions.items():
        options = [
            BudgetOption(
                subject_id=subject_id, target_piece=None, utility=0.0, cost=0.0
            )
        ]
        for evaluation in solution.result.evaluations:
            options.append(
                BudgetOption(
                    subject_id=subject_id,
                    target_piece=evaluation.candidate.target_piece,
                    utility=evaluation.requester_utility,
                    cost=max(evaluation.response.compensation, 0.0),
                )
            )
        per_subject[subject_id] = _prune_dominated(options)
    return per_subject


def _prune_dominated(options: Sequence[BudgetOption]) -> List[BudgetOption]:
    """Keep only the Pareto frontier (increasing cost, increasing utility)."""
    ordered = sorted(options, key=lambda option: (option.cost, -option.utility))
    frontier: List[BudgetOption] = []
    best_utility = -float("inf")
    for option in ordered:
        if option.utility > best_utility:
            frontier.append(option)
            best_utility = option.utility
    return frontier


def budgeted_selection(
    solutions: Mapping[str, SubproblemSolution],
    budget: float,
    resolution: Optional[int] = None,
) -> BudgetedDesign:
    """Solve the multiple-choice knapsack over all subjects.

    This is the hard-budget variant of the Eqs. (8)-(10) outer problem:
    maximize the summed Eq. (7) utility subject to total expected pay
    at most ``budget`` (Singer's budget-feasibility line; see the
    module docstring).

    Args:
        solutions: solved subproblems (each carrying its candidate
            evaluations).
        budget: hard cap on total expected pay; 0 selects only null
            options.
        resolution: number of discrete cost levels for the DP; higher is
            tighter (the realized total cost never exceeds ``budget``
            regardless — costs are rounded *up* to grid levels).
            Defaults to ``max(400, 4 * n_subjects)``: with fewer levels
            than subjects, ceil-rounding alone would exhaust the grid
            and starve the selection.

    Returns:
        The :class:`BudgetedDesign`.
    """
    if budget < 0.0:
        raise DesignError(f"budget must be >= 0, got {budget!r}")
    if resolution is None:
        resolution = max(400, 4 * len(solutions))
    if resolution < 1:
        raise DesignError(f"resolution must be >= 1, got {resolution!r}")
    per_subject = budget_options(solutions)
    subjects = sorted(per_subject)
    if not subjects:
        return BudgetedDesign(
            chosen={}, total_utility=0.0, total_cost=0.0, budget=budget
        )

    if is_zero(budget):
        chosen = {
            subject_id: per_subject[subject_id][0] for subject_id in subjects
        }
        return BudgetedDesign(
            chosen=chosen,
            total_utility=float(
                sum(option.utility for option in chosen.values())
            ),
            total_cost=0.0,
            budget=budget,
        )

    step = budget / resolution
    # dp[r]: best utility using at most r * step budget.  With zero
    # subjects the utility is 0 at every level (null options make every
    # budget feasible).  choices[i][r]: option index chosen for subject
    # i when the prefix 0..i is solved at level r.
    dp = np.zeros(resolution + 1)
    choices: List[np.ndarray] = []
    for subject_id in subjects:
        options = per_subject[subject_id]
        new_dp = np.full(resolution + 1, -np.inf)
        choice = np.zeros(resolution + 1, dtype=int)
        for option_index, option in enumerate(options):
            # Round cost *up* so the realized spend never exceeds budget.
            cost_units = int(np.ceil(option.cost / step - 1e-12))
            if cost_units > resolution:
                continue
            if cost_units == 0:
                candidate_values = dp + option.utility
                better = candidate_values > new_dp
                new_dp = np.where(better, candidate_values, new_dp)
                choice = np.where(better, option_index, choice)
            else:
                candidate_values = dp[:-cost_units] + option.utility
                better = candidate_values > new_dp[cost_units:]
                new_dp[cost_units:] = np.where(
                    better, candidate_values, new_dp[cost_units:]
                )
                choice[cost_units:] = np.where(
                    better, option_index, choice[cost_units:]
                )
        if not np.isfinite(new_dp).any():
            raise DesignError(
                f"subject {subject_id!r} has no feasible option within budget"
            )
        dp = new_dp
        choices.append(choice)

    final_state = int(np.argmax(dp))
    chosen: Dict[str, BudgetOption] = {}
    state = final_state
    for index in range(len(subjects) - 1, -1, -1):
        subject_id = subjects[index]
        option = per_subject[subject_id][choices[index][state]]
        chosen[subject_id] = option
        cost_units = int(np.ceil(option.cost / step - 1e-12))
        state -= cost_units
    total_cost = float(sum(option.cost for option in chosen.values()))
    total_utility = float(sum(option.utility for option in chosen.values()))
    return BudgetedDesign(
        chosen=chosen,
        total_utility=total_utility,
        total_cost=total_cost,
        budget=budget,
    )
