"""The paper's primary contribution: dynamic contract design.

Public surface of the core algorithm:

* :class:`~repro.core.effort.QuadraticEffort` — concave effort functions.
* :class:`~repro.core.piecewise.PiecewiseLinear` — contract geometry.
* :class:`~repro.core.contract.Contract` — posted contracts.
* :func:`~repro.core.best_response.solve_best_response` — follower side.
* :func:`~repro.core.candidate.build_candidate` — candidate contracts.
* :mod:`~repro.core.sweep` — the vectorized shared-prefix candidate
  sweep (the designer hot path; ``REPRO_FASTPATH`` toggles it).
* :class:`~repro.core.designer.ContractDesigner` — the full algorithm.
* :mod:`~repro.core.bounds` — Lemma 4.2/4.3 and Theorem 4.1 certificates.
* :func:`~repro.core.decomposition.solve_subproblems` — BiP decomposition.
* :func:`~repro.core.stackelberg.play_round` — one leader/follower round.
"""

from .best_response import BestResponse, solve_best_response, worker_utility
from .budget import BudgetOption, BudgetedDesign, budget_options, budgeted_selection
from .bounds import (
    UtilityBounds,
    compensation_lower_bound,
    compensation_upper_bound,
    requester_utility_lower_bound,
    requester_utility_upper_bound,
)
from .candidate import CandidateContract, build_candidate, case_windows, slope_epsilon
from .cases import CaseThresholds, PieceCase, case_thresholds, classify_piece
from .contract import Contract
from .decomposition import (
    Subproblem,
    SubproblemSolution,
    decomposition_report,
    solve_subproblems,
)
from .designer import CandidateEvaluation, ContractDesigner, DesignerConfig, DesignResult
from .effort import QuadraticEffort
from .piecewise import PiecewiseLinear
from .sensitivity import (
    MisfitPoint,
    MisfitReport,
    misfit_sweep,
    perturbed_effort_function,
    robust_design,
)
from .stackelberg import RoundOutcome, SubjectOutcome, play_round
from .sweep import (
    PrefixTables,
    SweepStats,
    fastpath_enabled,
    legacy_sweep,
    prefix_tables,
    sweep_candidates,
    sweep_candidates_with_stats,
    vectorized_sweep,
)
from .utility import RequesterObjective, per_worker_utility, round_benefit, round_utility

__all__ = [
    "BestResponse",
    "solve_best_response",
    "worker_utility",
    "BudgetOption",
    "BudgetedDesign",
    "budget_options",
    "budgeted_selection",
    "UtilityBounds",
    "compensation_lower_bound",
    "compensation_upper_bound",
    "requester_utility_lower_bound",
    "requester_utility_upper_bound",
    "CandidateContract",
    "build_candidate",
    "case_windows",
    "slope_epsilon",
    "CaseThresholds",
    "PieceCase",
    "case_thresholds",
    "classify_piece",
    "Contract",
    "Subproblem",
    "SubproblemSolution",
    "decomposition_report",
    "solve_subproblems",
    "CandidateEvaluation",
    "ContractDesigner",
    "DesignerConfig",
    "DesignResult",
    "QuadraticEffort",
    "PiecewiseLinear",
    "MisfitPoint",
    "MisfitReport",
    "misfit_sweep",
    "perturbed_effort_function",
    "robust_design",
    "RoundOutcome",
    "SubjectOutcome",
    "play_round",
    "PrefixTables",
    "SweepStats",
    "fastpath_enabled",
    "legacy_sweep",
    "prefix_tables",
    "sweep_candidates",
    "sweep_candidates_with_stats",
    "vectorized_sweep",
    "RequesterObjective",
    "per_worker_utility",
    "round_benefit",
    "round_utility",
]
