"""Exact worker best response to a piecewise-linear contract.

Given a posted contract (a piecewise-linear pay function of *feedback*)
a worker with parameters ``(beta, omega)`` and effort function ``psi``
chooses effort maximizing

    F(y) = pay(psi(y)) + omega * psi(y) - beta * y     (Eqs. 11 and 14)

with ``omega = 0`` recovering the honest worker as a special case
(Section IV-C).  Within the effort range mapping into one contract piece
the objective is concave, so the global maximum is attained at a piece
boundary (in feedback space: a contract knot) or at the interior
stationary point ``psi'(y) = beta / (alpha_l + omega)`` (Eq. 31 for
quadratic ``psi``).  Outside the knot span the contract is flat; for
malicious workers (``omega > 0``) the influence term can still reward
effort there, so the solver also checks the stationary point
``psi'(y) = beta / omega`` of the flat regions — a case the paper's
construction implicitly assumes away (see DESIGN.md §2).

The solver optionally takes the worker's *true* effort function, which
may differ from the fitted one embedded in the contract — this is what
lets the marketplace simulation quantify model-misfit effects.

Ties are broken toward the *lowest* effort: a worker indifferent (up to
the :mod:`repro.numerics` tolerances) between two efforts prefers the
cheaper one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import DesignError
from ..numerics import close
from ..types import WorkerParameters
from .contract import Contract
from .effort import QuadraticEffort

__all__ = ["BestResponse", "solve_best_response", "worker_utility"]


@dataclass(frozen=True)
class BestResponse:
    """The worker's optimal reaction to a contract.

    Attributes:
        effort: the utility-maximizing effort level ``y*``.
        utility: the worker's utility at ``y*``.
        feedback: the feedback ``psi(y*)`` the effort produces (under the
            effort function the response was solved with).
        compensation: the pay the contract awards for that feedback.
        piece: 1-based index of the contract's effort-grid interval
            containing ``y*`` (efforts beyond the grid map to the last
            interval).
    """

    effort: float
    utility: float
    feedback: float
    compensation: float
    piece: int

    def __post_init__(self) -> None:
        for name in ("effort", "utility", "feedback", "compensation"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")
        if self.effort < 0.0:
            raise DesignError(f"effort must be >= 0, got {self.effort!r}")
        if self.compensation < 0.0:
            raise DesignError(
                f"compensation must be >= 0, got {self.compensation!r}"
            )
        if self.piece < 1:
            raise DesignError(f"piece must be >= 1, got {self.piece!r}")


def worker_utility(
    contract: Contract,
    params: WorkerParameters,
    effort: float,
    effort_function: Optional[QuadraticEffort] = None,
) -> float:
    """Worker utility ``pay(psi(y)) + omega * psi(y) - beta * y``.

    This is Eq. (14) (the malicious-worker utility); honest workers are
    the ``omega = 0`` special case, Eq. (11).

    Args:
        contract: the posted contract.
        params: worker ``(beta, omega)``.
        effort: the effort to evaluate at.
        effort_function: the worker's true ``psi``; defaults to the one
            the contract was designed with.
    """
    if effort < 0.0:
        raise DesignError(f"effort must be >= 0, got {effort!r}")
    psi = effort_function if effort_function is not None else contract.effort_function
    feedback = float(psi(effort))
    pay = contract.pay_for_feedback(max(feedback, 0.0))
    return pay + params.omega * feedback - params.beta * effort


def _candidate_efforts(
    contract: Contract, params: WorkerParameters, psi: QuadraticEffort
) -> List[float]:
    """All efforts that can host the global maximum of the worker utility.

    The utility is piecewise concave in effort, with breaks where
    ``psi(y)`` crosses a contract knot; beyond the vertex of ``psi`` it
    strictly decreases (pay and influence both fall while cost rises),
    so only the increasing branch needs candidates.
    """
    pay = contract.as_feedback_function()
    knots = pay.knots
    slopes = pay.slopes()
    candidates: List[float] = [0.0]
    # Efforts at which feedback crosses a contract knot.
    for knot in knots:
        if psi.r0 <= knot <= psi.max_feedback:
            candidates.append(psi.inverse(knot))
    # Interior stationary points, one per piece whose feedback span the
    # stationary feedback actually falls into.
    for index, alpha in enumerate(slopes):
        gain = alpha + params.omega
        if gain <= 0.0:
            # Utility strictly decreases across the piece; the knots
            # already cover its endpoints.
            continue
        stationary = psi.derivative_inverse(params.beta / gain)
        if stationary <= 0.0:
            continue
        feedback = float(psi(stationary))
        if knots[index] <= feedback < knots[index + 1]:
            candidates.append(stationary)
    # Flat regions outside the knot span: pay is constant, influence may
    # still reward effort until psi'(y) == beta / omega.
    if params.omega > 0.0:
        stationary = psi.derivative_inverse(params.beta / params.omega)
        if stationary > 0.0:
            feedback = float(psi(stationary))
            if feedback >= knots[-1] or feedback <= knots[0]:
                candidates.append(stationary)
    return candidates


def solve_best_response(
    contract: Contract,
    params: WorkerParameters,
    effort_function: Optional[QuadraticEffort] = None,
) -> BestResponse:
    """Solve the worker's inner problem exactly.

    The argmax of Eq. (11)/(14) over efforts: per piece, the optimum is
    an endpoint or the Eq. (31) interior stationary point, per the case
    analysis of Lemma 4.1 (candidates enumerated as in Eq. 30).

    Args:
        contract: the posted contract.
        params: the worker's ``(beta, omega)`` parameters.
        effort_function: the worker's true ``psi``; defaults to the
            contract's fitted one (the designer's view).

    Returns:
        The :class:`BestResponse` with ties broken toward lower effort.
    """
    psi = effort_function if effort_function is not None else contract.effort_function
    best_effort = math.nan
    best_utility = -math.inf
    for effort in sorted(_candidate_efforts(contract, params, psi)):
        utility = worker_utility(contract, params, effort, effort_function=psi)
        # Tie breaking at repro.numerics tolerance (REPRO001 float
        # discipline): a strictly-better-but-close utility does not
        # justify the costlier effort.
        if utility > best_utility and not close(utility, best_utility):
            best_utility = utility
            best_effort = effort
    feedback = float(psi(best_effort))
    return BestResponse(
        effort=best_effort,
        utility=best_utility,
        feedback=feedback,
        compensation=contract.pay_for_feedback(max(feedback, 0.0)),
        piece=contract.grid.locate(best_effort),
    )
