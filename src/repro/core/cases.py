"""Lemma 4.1: classification of contract pieces into Cases I/II/III.

Inside one effort interval ``[(l-1)*delta, l*delta)`` the worker utility

    F(y) = (alpha_l + omega) * psi(y) - beta * y + const

is concave (``alpha_l + omega >= 0`` and ``psi'' < 0``), so its behaviour
is fully determined by the sign of ``F'`` at the interval's endpoints.
Because ``psi'`` is strictly decreasing this yields three regimes
depending on where the contract slope ``alpha_l`` falls relative to two
thresholds:

* **Case I** (``alpha_l <= beta / psi'((l-1)delta) - omega``):
  ``F`` is non-increasing on the interval; the worker slides to the left
  endpoint ``(l-1)*delta``.
* **Case II** (``alpha_l >= beta / psi'(l*delta) - omega``):
  ``F`` is non-decreasing; the worker pushes to the right endpoint.
* **Case III** (strictly between the thresholds): ``F`` has an interior
  stationary maximum at ``y = psi'^{-1}(beta / (alpha_l + omega))``.

The printed lemma in the paper swaps the Case I/II ranges; this module
implements the version proved in Eqs. (32)-(35), which is the one the
construction in Section IV-C actually relies on (see DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DesignError
from ..types import DiscretizationGrid
from .effort import QuadraticEffort

__all__ = ["PieceCase", "CaseThresholds", "classify_piece", "case_thresholds"]


class PieceCase(enum.Enum):
    """Behaviour of the worker's utility within one contract piece."""

    LEFT_ENDPOINT = "case_i"
    RIGHT_ENDPOINT = "case_ii"
    INTERIOR = "case_iii"


@dataclass(frozen=True)
class CaseThresholds:
    """The two slope thresholds separating Cases I/III/II for a piece.

    Attributes:
        lower: slopes at or below this value are Case I.
        upper: slopes at or above this value are Case II.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.upper < self.lower:
            raise DesignError(
                f"inconsistent thresholds: lower={self.lower!r} > upper={self.upper!r}"
            )

    def classify(self, slope: float) -> PieceCase:
        """Classify a contract slope against these thresholds."""
        if slope <= self.lower:
            return PieceCase.LEFT_ENDPOINT
        if slope >= self.upper:
            return PieceCase.RIGHT_ENDPOINT
        return PieceCase.INTERIOR

    @property
    def width(self) -> float:
        """Width of the Case III slope window."""
        return self.upper - self.lower


def case_thresholds(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    piece: int,
    beta: float,
    omega: float,
) -> CaseThresholds:
    """Slope thresholds of Lemma 4.1 for the 1-based ``piece``-th interval.

    The lower threshold is ``beta / psi'((piece-1)*delta) - omega`` and
    the upper threshold is ``beta / psi'(piece*delta) - omega``.  Both
    derivatives must be positive, i.e. the grid must lie inside the
    increasing range of ``psi`` (enforced here).

    Args:
        effort_function: the worker's effort function ``psi``.
        grid: the effort discretization.
        piece: 1-based interval index ``l``.
        beta: the worker's effort-cost weight.
        omega: the worker's feedback weight (0 for honest workers).

    Returns:
        The :class:`CaseThresholds` for the piece.
    """
    if not 1 <= piece <= grid.n_intervals:
        raise DesignError(
            f"piece must be in [1, {grid.n_intervals}], got {piece!r}"
        )
    if beta <= 0.0:
        raise DesignError(f"beta must be positive, got {beta!r}")
    if omega < 0.0:
        raise DesignError(f"omega must be >= 0, got {omega!r}")
    effort_function.require_increasing_on(grid.max_effort)
    left_edge, right_edge = grid.interval(piece)
    slope_left = effort_function.derivative(left_edge)
    slope_right = effort_function.derivative(right_edge)
    if slope_right <= 0.0:
        raise DesignError(
            f"psi' must stay positive on the grid; psi'({right_edge!r}) = "
            f"{slope_right!r}"
        )
    return CaseThresholds(
        lower=beta / slope_left - omega,
        upper=beta / slope_right - omega,
    )


def classify_piece(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    piece: int,
    slope: float,
    beta: float,
    omega: float,
) -> PieceCase:
    """Classify the ``piece``-th contract piece per Lemma 4.1 (Eqs. 32-35)."""
    thresholds = case_thresholds(effort_function, grid, piece, beta, omega)
    return thresholds.classify(slope)
