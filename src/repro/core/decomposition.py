"""BiP decomposition into per-worker / per-community subproblems.

Section IV-B observes that the requester's objective separates across
non-collusive workers and collusive communities: no term couples two
different subjects.  The bilevel program therefore decomposes into one
small subproblem per subject, each solvable independently (and hence in
parallel).  A *subject* is either a single non-collusive worker or a
collusive community treated as a meta-worker.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import DesignError
from ..obs.trace import get_tracer
from ..types import WorkerParameters, WorkerType
from .designer import ContractDesigner, DesignerConfig, DesignResult
from .effort import QuadraticEffort

__all__ = ["Subproblem", "SubproblemSolution", "solve_subproblems", "decomposition_report"]


@dataclass(frozen=True)
class Subproblem:
    """One independent contract-design subproblem.

    Attributes:
        subject_id: unique identifier of the worker or community.
        effort_function: the subject's fitted effort function ``psi``.
        params: the subject's ``(beta, omega)`` utility parameters.
        feedback_weight: the Eq. (5) weight of the subject's feedback.
        member_ids: the workers behind the subject — a singleton for an
            individual worker, all community members for a meta-worker.
        max_effort: optional cap on the subject's effort grid (typically
            the largest effort the subject was observed to exert).
    """

    subject_id: str
    effort_function: QuadraticEffort
    params: WorkerParameters
    feedback_weight: float = 1.0
    member_ids: Tuple[str, ...] = field(default_factory=tuple)
    max_effort: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.subject_id:
            raise DesignError("subject_id must be a non-empty string")
        members = tuple(self.member_ids) if self.member_ids else (self.subject_id,)
        object.__setattr__(self, "member_ids", members)
        is_community = len(members) > 1
        if is_community and self.params.worker_type is not WorkerType.COLLUSIVE_MALICIOUS:
            raise DesignError(
                f"subject {self.subject_id!r} has {len(members)} members but "
                f"type {self.params.worker_type!r}; communities must be collusive"
            )

    @property
    def is_community(self) -> bool:
        """Whether the subject aggregates several collusive workers."""
        return len(self.member_ids) > 1

    @property
    def size(self) -> int:
        """Number of underlying workers."""
        return len(self.member_ids)


@dataclass(frozen=True)
class SubproblemSolution:
    """A solved subproblem: the subproblem plus its design result."""

    subproblem: Subproblem
    result: DesignResult

    @property
    def per_member_compensation(self) -> float:
        """The community pay split evenly across members.

        The paper designs *one* contract per community; we report the
        even split for per-worker statistics (Fig. 8b).
        """
        return self.result.compensation / self.subproblem.size


def solve_subproblems(
    subproblems: Sequence[Subproblem],
    mu: float = 1.0,
    config: Optional[DesignerConfig] = None,
    max_workers: int = 1,
    parallel: int = 0,
) -> Dict[str, SubproblemSolution]:
    """Solve every subproblem, optionally through the serving layer.

    Args:
        subproblems: the decomposed subproblems; subject ids must be
            unique.
        mu: requester compensation weight.
        config: designer configuration shared by all subproblems.
        max_workers: thread-pool width; ``1`` solves serially.  The
            subproblems are embarrassingly parallel (Section IV-B), so
            any partitioning is valid.
        parallel: when positive, route through the
            :mod:`repro.serving` solver pool with this many worker
            *processes* (fingerprint dedup included); ``0`` (the
            default) keeps the in-process path below.

    Returns:
        Mapping from subject id to its :class:`SubproblemSolution`,
        in input order on every path.
    """
    if parallel < 0:
        raise DesignError(f"parallel must be >= 0, got {parallel!r}")
    tracer = get_tracer()
    with tracer.span(
        "core.decomposition",
        n_subjects=len(subproblems),
        parallel=parallel,
        max_workers=max_workers,
    ) as span:
        if parallel > 0:
            # Imported lazily: core stays importable without the serving
            # layer loaded, and the serving layer imports this module.
            from ..serving.pool import solve_subproblems_parallel

            return solve_subproblems_parallel(
                subproblems, mu=mu, config=config, n_workers=parallel
            )
        seen = set()
        for subproblem in subproblems:
            if subproblem.subject_id in seen:
                raise DesignError(f"duplicate subject_id {subproblem.subject_id!r}")
            seen.add(subproblem.subject_id)
        if max_workers < 1:
            raise DesignError(f"max_workers must be >= 1, got {max_workers!r}")

        designer = ContractDesigner(mu=mu, config=config)

        def _solve(subproblem: Subproblem) -> SubproblemSolution:
            result = designer.design(
                effort_function=subproblem.effort_function,
                params=subproblem.params,
                feedback_weight=subproblem.feedback_weight,
                max_effort=subproblem.max_effort,
            )
            return SubproblemSolution(subproblem=subproblem, result=result)

        if max_workers == 1 or len(subproblems) <= 1:
            solutions = [_solve(subproblem) for subproblem in subproblems]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                solutions = list(pool.map(_solve, subproblems))
        span.set(
            "n_hired", sum(1 for entry in solutions if entry.result.hired)
        )
        return {entry.subproblem.subject_id: entry for entry in solutions}


def decomposition_report(
    solutions: Dict[str, SubproblemSolution], mu: float
) -> Dict[str, float]:
    """Aggregate statistics over a solved decomposition.

    Returns a dict with the requester's total utility, total benefit,
    total compensation and the hired-subject count — the quantities the
    Fig. 8 experiments report.
    """
    if mu <= 0.0:
        raise DesignError(f"mu must be positive, got {mu!r}")
    total_benefit = 0.0
    total_compensation = 0.0
    hired = 0
    for entry in solutions.values():
        response = entry.result.response
        total_benefit += entry.result.feedback_weight * response.feedback
        total_compensation += response.compensation
        if entry.result.hired:
            hired += 1
    return {
        "total_utility": total_benefit - mu * total_compensation,
        "total_benefit": total_benefit,
        "total_compensation": total_compensation,
        "n_subjects": float(len(solutions)),
        "n_hired": float(hired),
    }
