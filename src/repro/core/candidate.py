"""Candidate-contract construction (Section IV-C, Part 2).

For a target effort interval ``[(k-1)*delta, k*delta)`` the designer
builds the *candidate contract* ``xi^(k)`` piece by piece so that

1. the worker's optimal effort falls in interval ``k`` — utilities at the
   per-piece optima strictly increase up to piece ``k`` (Eq. 36), and
2. compensation is as small as possible — each slope sits just above the
   minimum that satisfies (1).

Pieces ``1..k`` are built in the Case III window of Lemma 4.1 using the
recursion (Eqs. 39-40, with the typo fixes of DESIGN.md §2):

    alpha_l + omega = beta^2 / ((alpha_{l-1} + omega) * psi'((l-1)delta)^2)
                      + eps_l,
    eps_l = 4*beta*r2^2*delta^2 /
            (psi'((l-1)delta)^2 * psi'(l*delta)),

seeded with the self-consistent virtual slope
``alpha_0 + omega = beta / psi'(0)``.  Pieces ``k+1..m`` are flat
(``alpha_l = 0``): more effort, same pay.

The identity behind the recursion (re-derived in our tests): with
quadratic ``psi`` the gain in per-piece optimal utility is

    F(y*_l) - F(y*_{l-1})
      = (alpha_l - alpha_{l-1}) *
        (beta^2 / (4 r2 a_l a_{l-1}) + psi_max - d_{l-1}),

where ``a_l = alpha_l + omega`` and ``psi_max - d_{l-1} =
psi'((l-1)delta)^2 / (4 |r2|)``, so the gain is positive exactly when
``a_l > beta^2 / (a_{l-1} * psi'((l-1)delta)^2)`` — the Eq. (39)
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.invariants import check_bounds
from ..errors import DesignError
from ..obs.trace import get_tracer
from ..types import DiscretizationGrid, WorkerParameters
from .cases import CaseThresholds, PieceCase, case_thresholds
from .contract import Contract
from .effort import QuadraticEffort

__all__ = ["CandidateContract", "build_candidate", "slope_epsilon", "case_windows"]


@dataclass(frozen=True)
class CandidateContract:
    """A candidate contract targeting one effort interval.

    Attributes:
        target_piece: the interval ``k`` the contract steers the worker to.
        params: the worker parameters the contract was designed against.
        contract: the resulting posted contract.
        slopes: feedback-space slopes ``alpha^(k)_l`` for ``l = 1..m``.
        epsilons: the slack terms ``eps_l`` used for pieces ``1..k``.
        cases: the Lemma 4.1 case of each piece under these slopes.
        clamped_pieces: pieces whose recursion slope fell below zero and
            was clamped to zero to keep the contract monotone (only
            possible for large ``omega``).
    """

    target_piece: int
    params: WorkerParameters
    contract: Contract
    slopes: Tuple[float, ...]
    epsilons: Tuple[float, ...]
    cases: Tuple[PieceCase, ...]
    clamped_pieces: Tuple[int, ...]

    def __post_init__(self) -> None:
        n_intervals = self.contract.grid.n_intervals
        if not 1 <= self.target_piece <= n_intervals:
            raise DesignError(
                f"target_piece must be in [1, {n_intervals}], "
                f"got {self.target_piece!r}"
            )
        if len(self.slopes) != n_intervals or len(self.cases) != n_intervals:
            raise DesignError(
                f"expected {n_intervals} slopes/cases, got "
                f"{len(self.slopes)}/{len(self.cases)}"
            )
        if len(self.epsilons) != self.target_piece:
            raise DesignError(
                f"expected {self.target_piece} epsilons (pieces 1..k), "
                f"got {len(self.epsilons)}"
            )

    @property
    def designed_effort(self) -> float:
        """The Eq. (31) interior optimum of the target piece.

        This is where the construction *intends* the worker to land; the
        designer confirms it with the exact best-response solver.  When
        the target piece is not in Case III (a clamped piece), the value
        is clipped to the target interval.
        """
        psi = self.contract.effort_function
        gain = self.slopes[self.target_piece - 1] + self.params.omega
        left, right = self.contract.grid.interval(self.target_piece)
        if gain <= 0.0:
            return left
        stationary = psi.derivative_inverse(self.params.beta / gain)
        return min(max(stationary, left), right)


def slope_epsilon(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    piece: int,
    beta: float,
) -> float:
    """The slack ``eps_l`` of Eq. (40) (with the division typo fixed).

    ``eps_l = 4*beta*r2^2*delta^2 / (psi'((l-1)delta)^2 * psi'(l*delta))``
    is exactly the margin that keeps the recursion's slope strictly below
    the piece's Case II threshold (Eq. 42).
    """
    r2 = effort_function.r2
    delta = grid.delta
    left_edge, right_edge = grid.interval(piece)
    slope_left = effort_function.derivative(left_edge)
    slope_right = effort_function.derivative(right_edge)
    if slope_right <= 0.0:
        raise DesignError(
            f"psi' must stay positive over the grid; psi'({right_edge!r}) = "
            f"{slope_right!r}"
        )
    return 4.0 * beta * r2 * r2 * delta * delta / (
        slope_left * slope_left * slope_right
    )


@check_bounds
def build_candidate(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    target_piece: int,
    base_pay: float = 0.0,
) -> CandidateContract:
    """Construct the candidate contract ``xi^(k)`` for ``k = target_piece``.

    Implements the Section IV-C construction: the Eq. (39) slope
    recursion with the Eq. (40) slack, seeded as derived in DESIGN.md §2,
    and a flat tail beyond the target piece.

    Args:
        effort_function: the worker's fitted effort function ``psi``.
        grid: effort discretization (``m`` intervals of width ``delta``).
        params: worker parameters ``(beta, omega)``.
        target_piece: the interval the worker should be steered into.
        base_pay: compensation at zero effort (``x_0``).

    Returns:
        The assembled :class:`CandidateContract`.

    Raises:
        DesignError: if the target piece is out of range or the grid
            leaves the increasing range of ``psi``.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _build_candidate(
            effort_function, grid, params, target_piece, base_pay
        )
    with tracer.span(
        "core.candidate_build", target_piece=target_piece
    ) as span:
        candidate = _build_candidate(
            effort_function, grid, params, target_piece, base_pay
        )
        span.set("n_clamped", len(candidate.clamped_pieces))
        span.set("designed_effort", candidate.designed_effort)
        return candidate


def _build_candidate(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
    target_piece: int,
    base_pay: float,
) -> CandidateContract:
    """The untraced Section IV-C construction (see :func:`build_candidate`)."""
    if not 1 <= target_piece <= grid.n_intervals:
        raise DesignError(
            f"target_piece must be in [1, {grid.n_intervals}], got {target_piece!r}"
        )
    effort_function.require_increasing_on(grid.max_effort)
    beta, omega = params.beta, params.omega

    slopes: List[float] = []
    epsilons: List[float] = []
    clamped: List[int] = []
    # Virtual seed: alpha_0 + omega = beta / psi'(0).
    previous_gain = beta / effort_function.derivative(0.0)
    for piece in range(1, target_piece + 1):
        epsilon = slope_epsilon(effort_function, grid, piece, beta)
        left_edge, _ = grid.interval(piece)
        slope_left = effort_function.derivative(left_edge)
        gain = beta * beta / (previous_gain * slope_left * slope_left) + epsilon
        slope = gain - omega
        if slope < 0.0:
            # The whole Case III window sits below zero: a monotone
            # contract cannot realize it, so fall back to a flat piece.
            # With alpha = 0 the piece is Case II (the influence term
            # alone pushes the worker rightward), which still satisfies
            # Eq. (36)'s "move right of the left endpoint" requirement.
            slope = 0.0
            clamped.append(piece)
        slopes.append(slope)
        epsilons.append(epsilon)
        previous_gain = slope + omega
    # Flat tail: more effort, same pay (Section IV-C, "determining the
    # contract pieces defined on [k*delta, inf) is trivial").
    slopes.extend([0.0] * (grid.n_intervals - target_piece))

    contract = Contract.from_feedback_slopes(
        grid=grid,
        effort_function=effort_function,
        slopes=slopes,
        base_pay=base_pay,
    )
    cases = tuple(
        case_thresholds(effort_function, grid, piece, beta, omega).classify(
            slopes[piece - 1]
        )
        for piece in range(1, grid.n_intervals + 1)
    )
    return CandidateContract(
        target_piece=target_piece,
        params=params,
        contract=contract,
        slopes=tuple(slopes),
        epsilons=tuple(epsilons),
        cases=cases,
        clamped_pieces=tuple(clamped),
    )


def case_windows(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    params: WorkerParameters,
) -> Tuple[CaseThresholds, ...]:
    """The Lemma 4.1 slope windows for every piece of the grid."""
    return tuple(
        case_thresholds(effort_function, grid, piece, params.beta, params.omega)
        for piece in range(1, grid.n_intervals + 1)
    )
