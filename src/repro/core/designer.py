"""The contract designer: the paper's core algorithm (Section IV-C).

For one subproblem (one worker or one collusive community, whose fitted
effort function and ``(beta, omega)`` parameters are known) the designer:

1. builds a candidate contract ``xi^(k)`` for every effort interval
   ``k = 1..m`` (:mod:`repro.core.candidate`),
2. computes the worker's *exact* best response to each candidate
   (:mod:`repro.core.best_response`),
3. keeps the candidate maximizing the requester's decomposed utility
   ``w * psi(y*) - mu * xi^(k)(y*)`` (Eq. 43, per the paper's prose), and
4. attaches the Theorem 4.1 certificate bracketing the optimum.

The designer also exposes the per-candidate evaluations so experiments
can inspect the whole frontier (used by Fig. 6 and the ablations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..errors import DesignError

if TYPE_CHECKING:  # pragma: no cover - type-only import (no runtime cycle)
    from ..serving.cache import ContractCache
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..types import DiscretizationGrid, WorkerParameters
from .best_response import BestResponse, solve_best_response
from .bounds import (
    UtilityBounds,
    requester_utility_lower_bound,
    requester_utility_upper_bound,
)
from .candidate import CandidateContract
from .contract import Contract
from .effort import QuadraticEffort
from .sweep import SweepStats, sweep_candidates_with_stats
from .utility import per_worker_utility

__all__ = ["DesignerConfig", "CandidateEvaluation", "DesignResult", "ContractDesigner"]

#: Fraction of the effort function's increasing range covered by an
#: auto-built grid.  Staying strictly inside the range keeps psi' > 0 at
#: the last edge, which Lemma 4.1 requires.
_DEFAULT_COVERAGE = 0.95


@dataclass(frozen=True)
class DesignerConfig:
    """Configuration of the contract designer.

    Attributes:
        n_intervals: number of effort intervals ``m`` (Section III-A).
        coverage: fraction of ``psi``'s increasing range the auto grid
            spans; ignored when ``delta`` is given explicitly.
        delta: optional explicit interval width; overrides ``coverage``.
        max_effort: optional absolute cap on the grid span.  The paper
            partitions "the effort region of workers" — the *observed*
            region; without a cap, a nearly linear fitted ``psi`` (vertex
            far beyond any plausible effort) would let the designer
            demand absurd effort levels.
        base_pay: compensation at zero effort (``x_0``).
        min_utility: candidates whose requester utility falls below this
            are discarded; if all do, the designer returns the null
            (flat zero) contract, i.e. the worker is not hired.
    """

    n_intervals: int = 20
    coverage: float = _DEFAULT_COVERAGE
    delta: Optional[float] = None
    max_effort: Optional[float] = None
    base_pay: float = 0.0
    min_utility: float = 0.0

    def __post_init__(self) -> None:
        if self.n_intervals < 1:
            raise DesignError(f"n_intervals must be >= 1, got {self.n_intervals!r}")
        if not 0.0 < self.coverage < 1.0:
            raise DesignError(
                f"coverage must lie strictly inside (0, 1), got {self.coverage!r}"
            )
        if self.delta is not None and self.delta <= 0.0:
            raise DesignError(f"delta must be positive, got {self.delta!r}")
        if self.max_effort is not None and self.max_effort <= 0.0:
            raise DesignError(f"max_effort must be positive, got {self.max_effort!r}")
        if self.base_pay < 0.0:
            raise DesignError(f"base_pay must be >= 0, got {self.base_pay!r}")

    def grid_for(
        self,
        effort_function: QuadraticEffort,
        max_effort: Optional[float] = None,
    ) -> DiscretizationGrid:
        """Build the effort grid this config implies for ``psi``.

        Args:
            effort_function: the worker's ``psi``.
            max_effort: per-subject cap on the grid span (e.g. the
                largest effort the subject was ever observed to exert);
                combined with the config-level cap by taking the minimum.
        """
        if self.delta is not None:
            grid = DiscretizationGrid(n_intervals=self.n_intervals, delta=self.delta)
            effort_function.require_increasing_on(grid.max_effort)
            return grid
        span = self.coverage * effort_function.max_increasing_effort
        for cap in (self.max_effort, max_effort):
            if cap is not None:
                span = min(span, cap)
        return DiscretizationGrid.for_max_effort(span, self.n_intervals)


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate contract together with its game-theoretic outcome.

    Attributes:
        candidate: the constructed candidate contract ``xi^(k)``.
        response: the worker's exact best response to it.
        requester_utility: ``w * q(y*) - mu * c(y*)`` under the candidate.
        on_target: whether the best response landed in the target piece —
            the construction guarantees this within the grid; it can fail
            only via the flat-tail caveat for large ``omega``.
    """

    candidate: CandidateContract
    response: BestResponse
    requester_utility: float
    on_target: bool

    def __post_init__(self) -> None:
        if not math.isfinite(self.requester_utility):
            raise DesignError(
                f"requester_utility must be finite, got {self.requester_utility!r}"
            )


@dataclass(frozen=True)
class DesignResult:
    """Everything the designer knows about the solved subproblem.

    Attributes:
        contract: the selected contract (the null contract when no
            candidate clears ``min_utility``).
        k_opt: the selected target piece, or ``None`` for the null
            contract.
        response: the worker's best response to the selected contract.
        requester_utility: the requester's utility at that response.
        bounds: the Theorem 4.1 certificate (``None`` for null contracts).
        evaluations: per-candidate outcomes, ordered by target piece.
        feedback_weight: the Eq. (5) weight the design used.
        params: the worker parameters the design used.
    """

    contract: Contract
    k_opt: Optional[int]
    response: BestResponse
    requester_utility: float
    bounds: Optional[UtilityBounds]
    evaluations: Tuple[CandidateEvaluation, ...]
    feedback_weight: float
    params: WorkerParameters

    def __post_init__(self) -> None:
        for name in ("requester_utility", "feedback_weight"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")

    @property
    def hired(self) -> bool:
        """Whether the requester actually offers incentive pay."""
        return self.k_opt is not None

    @property
    def compensation(self) -> float:
        """The pay the worker collects at its best response."""
        return self.response.compensation

    @property
    def effort(self) -> float:
        """The effort the worker exerts at its best response."""
        return self.response.effort


class ContractDesigner:
    """Solves one contract-design subproblem (Section IV-C).

    Args:
        mu: the requester's compensation weight.
        config: designer configuration (grid resolution, base pay...).
        design_cache: optional serving-layer contract cache
            (:class:`~repro.serving.cache.ContractCache`).  When set,
            finished designs are keyed by their
            :func:`~repro.serving.fingerprint.design_fingerprint` and
            reused across calls — and across designers sharing the
            cache; cache hits are re-verified against fresh solves under
            ``REPRO_CHECK_INVARIANTS=1``.  The default ``None`` keeps
            the original solve-every-call serial path.
        candidate_cache_size: bound on the designer's internal
            candidate-sweep LRU (one entry per unique
            ``(psi, params, grid, base_pay)`` combination); evictions
            are counted in the shared metrics registry under
            ``designer.candidate_cache.evictions``.
    """

    def __init__(
        self,
        mu: float = 1.0,
        config: Optional[DesignerConfig] = None,
        design_cache: Optional["ContractCache"] = None,
        candidate_cache_size: int = 256,
    ) -> None:
        if mu <= 0.0:
            raise DesignError(f"mu must be positive, got {mu!r}")
        self.mu = mu
        self.config = config if config is not None else DesignerConfig()
        self.design_cache = design_cache
        # Candidate contracts and best responses depend only on
        # (psi, params, grid, base_pay) — not on the feedback weight or
        # mu — so a population sharing class-level effort functions
        # (Section IV-B) reuses one candidate sweep across thousands of
        # subproblems.  The cache is the serving layer's bounded LRU so
        # long-lived designers facing heterogeneous populations cannot
        # grow without bound; imported lazily to keep core importable
        # without the serving layer loaded.
        from ..serving.cache import LRUCache

        self._candidate_cache = LRUCache(
            capacity=candidate_cache_size,
            eviction_counter=get_registry().counter(
                "designer.candidate_cache.evictions",
                help="candidate sweeps evicted from designer LRU caches",
            ),
        )

    def design(
        self,
        effort_function: QuadraticEffort,
        params: WorkerParameters,
        feedback_weight: float = 1.0,
        max_effort: Optional[float] = None,
    ) -> DesignResult:
        """Design the contract for one worker (or meta-worker).

        Args:
            effort_function: the worker's fitted effort function ``psi``.
            params: the worker's ``(beta, omega)`` parameters.
            feedback_weight: the Eq. (5) weight ``w_i`` of this worker's
                feedback.  Non-positive weights short-circuit to the null
                contract — the requester gains nothing from the worker.
            max_effort: per-subject cap on the effort grid span.

        Returns:
            The :class:`DesignResult` with the selected contract and the
            Theorem 4.1 certificate.
        """
        grid = self.config.grid_for(effort_function, max_effort=max_effort)
        tracer = get_tracer()
        if not tracer.enabled:
            result, _ = self._design_routed(
                effort_function, params, feedback_weight, grid
            )
            return result
        with tracer.span(
            "core.design",
            archetype=params.worker_type.value,
            K=grid.n_intervals,
            mu=self.mu,
        ) as span:
            result, cache_hit = self._design_routed(
                effort_function, params, feedback_weight, grid
            )
            span.set("k_opt", result.k_opt)
            span.set("hired", result.hired)
            if cache_hit is not None:
                span.set("cache_hit", cache_hit)
            if result.bounds is not None:
                # Theorem 4.1 certificate slack: how far the achieved
                # utility sits from the Lemma 4.2/4.3 bracket edges.
                span.set(
                    "slack_lower", result.requester_utility - result.bounds.lower
                )
                span.set(
                    "slack_upper", result.bounds.upper - result.requester_utility
                )
            return result

    def _design_routed(
        self,
        effort_function: QuadraticEffort,
        params: WorkerParameters,
        feedback_weight: float,
        grid: DiscretizationGrid,
    ) -> Tuple[DesignResult, Optional[bool]]:
        """Design on a resolved grid, via the cache when one is wired.

        Returns:
            ``(result, cache_hit)`` — ``cache_hit`` is ``None`` on the
            plain serial path (no cache attached).
        """
        if self.design_cache is None:
            return (
                self._design_on_grid(effort_function, params, feedback_weight, grid),
                None,
            )

        # Serving-layer route: identical design instances (same psi,
        # params, grid, weight, mu) share one solve through the cache.
        from ..serving.cache import maybe_verify_cached
        from ..serving.fingerprint import design_fingerprint

        fingerprint = design_fingerprint(
            effort_function,
            params,
            grid,
            base_pay=self.config.base_pay,
            min_utility=self.config.min_utility,
            mu=self.mu,
            feedback_weight=feedback_weight,
        )
        cached = self.design_cache.get_design(fingerprint)
        if cached is not None:
            maybe_verify_cached(
                fingerprint,
                cached,
                lambda: self._design_on_grid(
                    effort_function, params, feedback_weight, grid
                ),
                stats=self.design_cache.stats,
            )
            return cached, True
        result = self._design_on_grid(effort_function, params, feedback_weight, grid)
        self.design_cache.put_design(fingerprint, result)
        return result, False

    def _design_on_grid(
        self,
        effort_function: QuadraticEffort,
        params: WorkerParameters,
        feedback_weight: float,
        grid: DiscretizationGrid,
    ) -> DesignResult:
        """The Section IV-C solve itself, on an already-resolved grid."""
        if feedback_weight <= 0.0 or not math.isfinite(feedback_weight):
            return self._null_result(effort_function, grid, params, feedback_weight)

        tracer = get_tracer()
        if not tracer.enabled:
            sweep, _ = self._candidate_sweep(effort_function, grid, params)
        else:
            with tracer.span(
                "core.candidate_sweep", K=grid.n_intervals
            ) as sweep_span:
                sweep, sweep_stats = self._candidate_sweep(
                    effort_function, grid, params
                )
                sweep_span.set("n_candidates", len(sweep))
                sweep_span.set("fastpath", sweep_stats.fastpath)
                sweep_span.set("n_vectorized", sweep_stats.n_vectorized)
        evaluations = []
        for candidate, response in sweep:
            utility = per_worker_utility(
                feedback_weight, response.feedback, response.compensation, self.mu
            )
            evaluations.append(
                CandidateEvaluation(
                    candidate=candidate,
                    response=response,
                    requester_utility=utility,
                    on_target=response.piece == candidate.target_piece,
                )
            )

        if not tracer.enabled:
            best = max(evaluations, key=lambda entry: entry.requester_utility)
        else:
            with tracer.span("core.select", K=len(evaluations)) as select_span:
                best = max(evaluations, key=lambda entry: entry.requester_utility)
                select_span.set("k_star", best.candidate.target_piece)
                select_span.set("on_target", best.on_target)
                select_span.set("requester_utility", best.requester_utility)
        if best.requester_utility < self.config.min_utility:
            return self._null_result(
                effort_function, grid, params, feedback_weight, tuple(evaluations)
            )

        k_opt = best.candidate.target_piece
        bounds = UtilityBounds(
            lower=requester_utility_lower_bound(
                effort_function, grid, params.beta, self.mu, k_opt, feedback_weight
            ),
            achieved=best.requester_utility,
            upper=requester_utility_upper_bound(
                effort_function,
                grid,
                params.beta,
                self.mu,
                feedback_weight,
                omega=params.omega,
            ),
            certified=best.on_target and not best.candidate.clamped_pieces,
        )
        return DesignResult(
            contract=best.candidate.contract,
            k_opt=k_opt,
            response=best.response,
            requester_utility=best.requester_utility,
            bounds=bounds,
            evaluations=tuple(evaluations),
            feedback_weight=feedback_weight,
            params=params,
        )

    def _candidate_sweep(
        self,
        effort_function: QuadraticEffort,
        grid: DiscretizationGrid,
        params: WorkerParameters,
    ) -> Tuple[list, SweepStats]:
        """All candidate contracts with their best responses (cached).

        Routed through :mod:`repro.core.sweep`: the vectorized
        shared-prefix engine unless ``REPRO_FASTPATH=0``.
        """
        key = (
            effort_function.coefficients(),
            params.beta,
            params.omega,
            grid.n_intervals,
            grid.delta,
            self.config.base_pay,
        )
        cached = self._candidate_cache.get(key)
        if cached is not None:
            return cached
        sweep, stats = sweep_candidates_with_stats(
            effort_function, grid, params, base_pay=self.config.base_pay
        )
        self._candidate_cache.put(key, (sweep, stats))
        return sweep, stats

    def _null_result(
        self,
        effort_function: QuadraticEffort,
        grid: DiscretizationGrid,
        params: WorkerParameters,
        feedback_weight: float,
        evaluations: Tuple[CandidateEvaluation, ...] = (),
    ) -> DesignResult:
        """The 'do not hire' outcome: a flat zero contract."""
        contract = Contract.flat(grid, effort_function, pay=0.0)
        response = solve_best_response(contract, params)
        utility = per_worker_utility(
            feedback_weight if math.isfinite(feedback_weight) else 0.0,
            response.feedback,
            response.compensation,
            self.mu,
        )
        return DesignResult(
            contract=contract,
            k_opt=None,
            response=response,
            requester_utility=utility,
            bounds=None,
            evaluations=evaluations,
            feedback_weight=feedback_weight,
            params=params,
        )
