"""Monotone piecewise-linear functions.

Section III-A approximates every contract function by a piecewise-linear
function over a partition of the worker's feedback region.  This module
provides the generic representation used for both the feedback-space
contract ``f_i`` (Eq. 6) and the effort-space composition
``xi_i = f_i(psi_i(.))`` that the designer manipulates.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ..errors import ContractError

__all__ = ["PiecewiseLinear", "batch_locate"]


def batch_locate(
    knots: np.ndarray, points: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized piece lookup for the Eq. (6) piecewise-linear geometry.

    For each query point, returns the 0-based piece index and the
    interpolation fraction within that piece, replicating the
    ``bisect_right``-based branch of :meth:`PiecewiseLinear.__call__`
    elementwise.  Out-of-range points clamp to the first/last piece with
    fraction exactly ``0.0``/``1.0`` (callers wanting the *exact* flat
    extrapolation of Eq. (6) — no interpolation residue — should mask
    those points separately, as :meth:`PiecewiseLinear.batch` does).

    Args:
        knots: strictly increasing breakpoint abscissae (length >= 2).
        points: query abscissae, any shape.

    Returns:
        ``(indices, fractions)`` arrays shaped like ``points``.
    """
    knots = np.asarray(knots, dtype=float)
    points = np.asarray(points, dtype=float)
    if knots.ndim != 1 or len(knots) < 2:
        raise ContractError(
            f"batch_locate needs >= 2 one-dimensional knots, got shape "
            f"{knots.shape!r}"
        )
    indices = np.clip(
        np.searchsorted(knots, points, side="right") - 1, 0, len(knots) - 2
    )
    left = knots[indices]
    fractions = (points - left) / (knots[indices + 1] - left)
    fractions = np.where(points <= knots[0], 0.0, fractions)
    fractions = np.where(points >= knots[-1], 1.0, fractions)
    return indices, fractions


@dataclass(frozen=True)
class PiecewiseLinear:
    """A continuous piecewise-linear function defined by breakpoints.

    The function interpolates linearly between ``(knots[l], values[l])``
    pairs and extrapolates *flat* outside ``[knots[0], knots[-1]]`` — a
    worker producing feedback beyond the last breakpoint earns the last
    breakpoint's compensation, mirroring the paper's construction where
    the contract is only pinned down on the discretized region.

    Attributes:
        knots: strictly increasing breakpoint abscissae.
        values: ordinates at each breakpoint.
    """

    knots: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        knots = tuple(float(k) for k in self.knots)
        values = tuple(float(v) for v in self.values)
        object.__setattr__(self, "knots", knots)
        object.__setattr__(self, "values", values)
        if len(knots) < 2:
            raise ContractError(
                f"a piecewise-linear function needs >= 2 knots, got {len(knots)}"
            )
        if len(knots) != len(values):
            raise ContractError(
                f"knots ({len(knots)}) and values ({len(values)}) differ in length"
            )
        for sequence, name in ((knots, "knots"), (values, "values")):
            for entry in sequence:
                if not math.isfinite(entry):
                    raise ContractError(f"{name} must be finite, got {entry!r}")
        for left, right in zip(knots, knots[1:]):
            if right <= left:
                raise ContractError(
                    f"knots must be strictly increasing, got {left!r} -> {right!r}"
                )

    @property
    def n_pieces(self) -> int:
        """Number of linear pieces (one fewer than the knot count)."""
        return len(self.knots) - 1

    def __call__(self, x: float) -> float:
        """Evaluate the function with flat extrapolation outside the knots."""
        if x <= self.knots[0]:
            return self.values[0]
        if x >= self.knots[-1]:
            return self.values[-1]
        index = bisect.bisect_right(self.knots, x) - 1
        left, right = self.knots[index], self.knots[index + 1]
        fraction = (x - left) / (right - left)
        return self.values[index] + fraction * (self.values[index + 1] - self.values[index])

    def slope(self, piece: int) -> float:
        """Slope of the 1-based ``piece``-th linear piece."""
        if not 1 <= piece <= self.n_pieces:
            raise ContractError(
                f"piece must be in [1, {self.n_pieces}], got {piece!r}"
            )
        dx = self.knots[piece] - self.knots[piece - 1]
        dy = self.values[piece] - self.values[piece - 1]
        return dy / dx

    def slopes(self) -> Tuple[float, ...]:
        """Slopes of all pieces, in order (single pass over the knots)."""
        return tuple(
            (later - earlier) / (right - left)
            for left, right, earlier, later in zip(
                self.knots, self.knots[1:], self.values, self.values[1:]
            )
        )

    def increments(self) -> Tuple[float, ...]:
        """Value increments ``values[l] - values[l-1]`` for all pieces."""
        return tuple(
            later - earlier
            for earlier, later in zip(self.values, self.values[1:])
        )

    def batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over an array of abscissae.

        One :func:`batch_locate` pass plus one fused interpolation — the
        fast path the Section IV-C vectorized candidate sweep
        (:mod:`repro.core.sweep`) shares for evaluating the Eq. (6)
        contract at many feedbacks at once.  Flat extrapolation outside
        the knots is exact, matching the scalar call.
        """
        points = np.asarray(points, dtype=float)
        knots = np.asarray(self.knots)
        values = np.asarray(self.values)
        indices, fractions = batch_locate(knots, points)
        left = values[indices]
        interpolated = left + fractions * (values[indices + 1] - left)
        interpolated = np.where(points <= knots[0], values[0], interpolated)
        return np.where(points >= knots[-1], values[-1], interpolated)

    def is_monotone_nondecreasing(self, tolerance: float = 0.0) -> bool:
        """Whether the function never decreases (contract feasibility)."""
        return all(
            later >= earlier - tolerance
            for earlier, later in zip(self.values, self.values[1:])
        )

    def require_monotone(self, tolerance: float = 1e-12) -> None:
        """Raise :class:`ContractError` if any piece has negative slope."""
        if not self.is_monotone_nondecreasing(tolerance=tolerance):
            raise ContractError(
                f"piecewise-linear function is not monotone: values={self.values!r}"
            )

    def piece_containing(self, x: float) -> int:
        """1-based index of the piece whose half-open span contains ``x``.

        Points left of the first knot map to piece 1 and points at or
        beyond the last knot map to the final piece, mirroring the flat
        extrapolation of :meth:`__call__`.
        """
        if x <= self.knots[0]:
            return 1
        if x >= self.knots[-1]:
            return self.n_pieces
        return bisect.bisect_right(self.knots, x)

    def shifted(self, offset: float) -> "PiecewiseLinear":
        """A copy with every value shifted by ``offset``."""
        if not math.isfinite(offset):
            raise ContractError(f"offset must be finite, got {offset!r}")
        return PiecewiseLinear(
            knots=self.knots, values=tuple(v + offset for v in self.values)
        )

    def scaled(self, factor: float) -> "PiecewiseLinear":
        """A copy with every value scaled by a non-negative ``factor``."""
        if not math.isfinite(factor) or factor < 0.0:
            raise ContractError(f"factor must be finite and >= 0, got {factor!r}")
        return PiecewiseLinear(
            knots=self.knots, values=tuple(v * factor for v in self.values)
        )

    def pieces(self) -> Iterator[Tuple[float, float, float, float]]:
        """Iterate ``(x_left, x_right, y_left, y_right)`` per piece."""
        for index in range(self.n_pieces):
            yield (
                self.knots[index],
                self.knots[index + 1],
                self.values[index],
                self.values[index + 1],
            )

    @staticmethod
    def from_slopes(
        knots: Sequence[float], start_value: float, slopes: Sequence[float]
    ) -> "PiecewiseLinear":
        """Build from a start value and per-piece slopes.

        This is the natural constructor for the candidate contracts of
        Section IV-C, which are described by contract slopes
        ``alpha_{i,l}`` rather than absolute values.
        """
        knot_list = [float(k) for k in knots]
        if len(slopes) != len(knot_list) - 1:
            raise ContractError(
                f"expected {len(knot_list) - 1} slopes for {len(knot_list)} knots, "
                f"got {len(slopes)}"
            )
        values = [float(start_value)]
        for index, slope in enumerate(slopes):
            width = knot_list[index + 1] - knot_list[index]
            values.append(values[-1] + slope * width)
        return PiecewiseLinear(knots=tuple(knot_list), values=tuple(values))
