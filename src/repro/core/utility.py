"""Requester-side utility accounting (Eqs. 4, 5 and 7).

The requester's round utility is ``U = p - mu * sum(c_i)`` where the
benefit ``p = sum_i w_i * q_i`` aggregates feedback weighted by the
accuracy/malice/collusion-aware coefficients of Eq. (5).  This module
provides the per-worker decomposed view ``F^{1,1}_i = w_i * q_i - mu *
c_i`` that the subproblem solvers maximize, plus round-level aggregation
used by the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

from ..errors import ModelError
from ..types import FeedbackWeightParameters, RequesterParameters

__all__ = [
    "RequesterObjective",
    "per_worker_utility",
    "round_benefit",
    "round_utility",
]


def per_worker_utility(
    feedback_weight: float, feedback: float, compensation: float, mu: float
) -> float:
    """The decomposed requester utility ``w * q - mu * c`` (Section IV-B)."""
    if mu <= 0.0:
        raise ModelError(f"mu must be positive, got {mu!r}")
    return feedback_weight * feedback - mu * compensation


def round_benefit(
    feedback_weights: Sequence[float], feedbacks: Sequence[float]
) -> float:
    """The requester's round benefit ``p = sum_i w_i * q_i`` (Eq. 4)."""
    if len(feedback_weights) != len(feedbacks):
        raise ModelError(
            f"weights ({len(feedback_weights)}) and feedbacks ({len(feedbacks)}) "
            "differ in length"
        )
    return float(sum(w * q for w, q in zip(feedback_weights, feedbacks)))


def round_utility(
    feedback_weights: Sequence[float],
    feedbacks: Sequence[float],
    compensations: Iterable[float],
    mu: float,
) -> float:
    """The requester's round utility ``p - mu * sum(c_i)`` (Eq. 7)."""
    if mu <= 0.0:
        raise ModelError(f"mu must be positive, got {mu!r}")
    return round_benefit(feedback_weights, feedbacks) - mu * float(
        sum(compensations)
    )


@dataclass(frozen=True)
class RequesterObjective:
    """The requester's preferences, bundled for the designer.

    Attributes:
        params: the requester parameters (``mu`` plus Eq. 5 coefficients).
    """

    params: RequesterParameters = field(default_factory=RequesterParameters)

    @property
    def mu(self) -> float:
        """Weight of compensation in the requester's utility."""
        return self.params.mu

    @property
    def weight_params(self) -> FeedbackWeightParameters:
        """The Eq. (5) coefficients."""
        return self.params.weight_params

    def feedback_weight(
        self,
        review_score: float,
        expert_score: float,
        malice_probability: float = 0.0,
        n_partners: int = 0,
    ) -> float:
        """The Eq. (5) weight ``w_i`` for one worker."""
        return self.weight_params.weight(
            review_score=review_score,
            expert_score=expert_score,
            malice_probability=malice_probability,
            n_partners=n_partners,
        )

    def value_of(self, feedback_weight: float, feedback: float, compensation: float) -> float:
        """Per-worker utility ``w * q - mu * c`` under this objective."""
        return per_worker_utility(feedback_weight, feedback, compensation, self.mu)

    def round_value(
        self,
        weighted: Sequence[Tuple[float, float, float]],
    ) -> float:
        """Round utility from ``(weight, feedback, compensation)`` triples."""
        weights = [entry[0] for entry in weighted]
        feedbacks = [entry[1] for entry in weighted]
        compensations = [entry[2] for entry in weighted]
        return round_utility(weights, feedbacks, compensations, self.mu)
