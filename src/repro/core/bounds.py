"""Theoretical guarantees: Lemma 4.2, Lemma 4.3 and Theorem 4.1.

These bounds certify the near-optimality of the designed contract:

* **Lemma 4.2** — under the candidate contract ``xi^(k)`` the pay to the
  worker is bounded above; we implement the certified per-piece window
  sum (every slope is strictly below ``beta/psi'(l*delta) - omega``) and
  keep the paper's printed closed form for reference.
* **Lemma 4.3** — *any* contract that steers the worker's optimum into
  ``[(k-1)delta, k*delta)`` must pay at least ``beta*(k-1)*delta``
  (otherwise the worker would prefer zero effort).
* **Theorem 4.1** — combining the two, the requester's per-worker utility
  obtained by the algorithm is sandwiched between an upper bound
  ``max_l { w*psi(l*delta) - mu*beta*(l-1)*delta }`` (no contract can do
  better) and a lower bound evaluated at the selected ``k_opt``.

The paper's printed statements set the feedback weight ``w = 1`` and are
loose with the ``mu``/``beta`` placement; we implement the dimensionally
consistent form (DESIGN.md §2), which reduces to the printed formulas at
``w = 1``.  The optimal utility always lies in ``[achieved, UB]``, so a
shrinking ``UB - achieved`` gap (Fig. 6) certifies convergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DesignError
from ..numerics import is_zero
from ..types import DiscretizationGrid
from .effort import QuadraticEffort

__all__ = [
    "compensation_upper_bound",
    "compensation_upper_bound_paper",
    "compensation_lower_bound",
    "requester_utility_upper_bound",
    "requester_utility_lower_bound",
    "UtilityBounds",
]


def compensation_upper_bound(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    beta: float,
    target_piece: int,
    omega: float = 0.0,
) -> float:
    """Lemma 4.2: a certified ceiling on pay under ``xi^(k)``.

    Every constructed slope sits strictly below its Case II threshold
    ``beta / psi'(l*delta) - omega`` (Eq. 42), so the contract's maximum
    pay telescopes to

        c <= sum_{l=1..k} max(beta / psi'(l*delta) - omega, 0)
             * (d_l - d_{l-1}).

    This is the rigorous form of the paper's printed bound
    ``beta*k*delta - 2*beta*r2*k*delta^2 / psi'((k-1)*delta)``, which the
    two agree with up to O(delta^2) per piece; the printed formula can
    *under*-estimate the pay by up to ~10% for very coarse grids at
    ``k = 2`` (see :func:`compensation_upper_bound_paper` and
    DESIGN.md §2), so the certified sum is what the designer uses.
    """
    _validate(grid, beta, target_piece)
    if omega < 0.0:
        raise DesignError(f"omega must be >= 0, got {omega!r}")
    effort_function.require_increasing_on(grid.max_effort)
    breakpoints = effort_function.feedback_breakpoints(grid.edges())
    total = 0.0
    for piece in range(1, target_piece + 1):
        slope_right = effort_function.derivative(piece * grid.delta)
        window_top = max(beta / slope_right - omega, 0.0)
        total += window_top * (breakpoints[piece] - breakpoints[piece - 1])
    return total


def compensation_upper_bound_paper(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    beta: float,
    target_piece: int,
) -> float:
    """The ceiling exactly as printed in Lemma 4.2.

    ``c <= beta*k*delta - 2*beta*r2*k*delta^2 / (2*r2*(k-1)*delta + r1)``

    Kept for reference and for reproducing the paper's Fig. 6 curves;
    slightly anti-conservative at coarse grids (see
    :func:`compensation_upper_bound`).
    """
    _validate(grid, beta, target_piece)
    effort_function.require_increasing_on(grid.max_effort)
    k, delta = target_piece, grid.delta
    slope_left = effort_function.derivative((k - 1) * delta)
    correction = -2.0 * beta * effort_function.r2 * k * delta * delta / slope_left
    return beta * k * delta + correction


def compensation_lower_bound(
    grid: DiscretizationGrid,
    beta: float,
    target_piece: int,
    effort_function: QuadraticEffort = None,
    omega: float = 0.0,
) -> float:
    """Lemma 4.3: min pay needed to steer the optimum into piece ``k``.

    For honest workers (``omega == 0``) this is the paper's
    ``beta*(k-1)*delta``: below it the worker's utility at the induced
    effort would be negative, worse than zero effort.

    The printed proof silently drops the influence term ``omega*q`` from
    the malicious utility, so the stated floor only holds at
    ``omega == 0``.  The corrected participation argument gives

        c >= beta*(k-1)*delta - omega*(psi(k*delta) - psi(0)),

    clamped at zero — a malicious worker accepts lower pay because the
    influence of its review is itself a reward (DESIGN.md §2).

    Args:
        grid: effort discretization.
        beta: effort-cost weight.
        target_piece: the 1-based piece ``k`` containing the optimum.
        effort_function: required when ``omega > 0`` (the correction
            depends on ``psi``).
        omega: the worker's influence weight.
    """
    _validate(grid, beta, target_piece)
    if omega < 0.0:
        raise DesignError(f"omega must be >= 0, got {omega!r}")
    floor = beta * (target_piece - 1) * grid.delta
    if is_zero(omega):
        return floor
    if effort_function is None:
        raise DesignError("effort_function is required when omega > 0")
    influence_reward = omega * (
        effort_function(target_piece * grid.delta) - effort_function(0.0)
    )
    return max(floor - influence_reward, 0.0)


def requester_utility_upper_bound(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    beta: float,
    mu: float,
    feedback_weight: float = 1.0,
    omega: float = 0.0,
) -> float:
    """Theorem 4.1 upper bound on the per-worker requester utility.

    For honest workers (``omega == 0``) this is the paper's

    ``UB = max_l { w * psi(l*delta) - mu * beta * (l-1) * delta }``:

    feedback is at most ``psi(l*delta)`` inside piece ``l`` while pay is
    at least the Lemma 4.3 floor.  For ``omega > 0`` the floor is the
    corrected (lower) participation floor, and an extra term covers the
    flat-tail region beyond the grid where an influence-motivated worker
    supplies feedback up to ``psi(psi'^{-1}(beta/omega))`` at zero
    marginal pay.
    """
    if mu <= 0.0:
        raise DesignError(f"mu must be positive, got {mu!r}")
    effort_function.require_increasing_on(grid.max_effort)
    best = -float("inf")
    for piece in range(1, grid.n_intervals + 1):
        feedback = effort_function(piece * grid.delta)
        floor_pay = compensation_lower_bound(
            grid, beta, piece, effort_function=effort_function, omega=omega
        )
        best = max(best, feedback_weight * feedback - mu * floor_pay)
    if omega > 0.0:
        free_effort = effort_function.derivative_inverse(beta / omega)
        if free_effort > grid.max_effort:
            best = max(best, feedback_weight * effort_function(free_effort))
    return best


def requester_utility_lower_bound(
    effort_function: QuadraticEffort,
    grid: DiscretizationGrid,
    beta: float,
    mu: float,
    target_piece: int,
    feedback_weight: float = 1.0,
) -> float:
    """Theorem 4.1 lower bound given the selected piece ``k_opt``.

    ``LB = w * psi((k_opt-1)*delta) - mu * c_max(k_opt)``

    where ``c_max`` is the Lemma 4.2 pay ceiling: the worker exerts at
    least ``(k_opt-1)*delta`` effort (so produces at least that much
    feedback, since ``psi`` is increasing) while the contract never pays
    more than the ceiling.
    """
    if mu <= 0.0:
        raise DesignError(f"mu must be positive, got {mu!r}")
    feedback_floor = effort_function((target_piece - 1) * grid.delta)
    pay_ceiling = compensation_upper_bound(effort_function, grid, beta, target_piece)
    return feedback_weight * feedback_floor - mu * pay_ceiling


@dataclass(frozen=True)
class UtilityBounds:
    """Theorem 4.1 bounds bundled with the achieved utility.

    Attributes:
        lower: the Theorem 4.1 lower bound at the designer's ``k_opt``.
        achieved: the requester utility the designed contract attains.
        upper: the Theorem 4.1 upper bound over all pieces.
        certified: whether the preconditions of the bound proofs held at
            the solution (the best response landed in the target piece
            and no slope had to be clamped); uncertified bounds are
            diagnostic only.
    """

    lower: float
    achieved: float
    upper: float
    certified: bool = True

    def __post_init__(self) -> None:
        for name in ("lower", "achieved", "upper"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")

    @property
    def gap(self) -> float:
        """Optimality gap ``upper - achieved`` (the optimum lies within)."""
        return self.upper - self.achieved

    @property
    def is_consistent(self) -> bool:
        """Whether ``lower <= achieved <= upper`` (up to float slack)."""
        slack = 1e-9 * max(1.0, abs(self.upper), abs(self.achieved), abs(self.lower))
        return self.lower <= self.achieved + slack and self.achieved <= self.upper + slack


def _validate(grid: DiscretizationGrid, beta: float, target_piece: int) -> None:
    if beta <= 0.0:
        raise DesignError(f"beta must be positive, got {beta!r}")
    if not 1 <= target_piece <= grid.n_intervals:
        raise DesignError(
            f"target_piece must be in [1, {grid.n_intervals}], got {target_piece!r}"
        )
