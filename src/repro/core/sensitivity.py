"""Robustness of designed contracts to effort-function misfit.

The designer optimizes against a *fitted* effort function; the worker
best-responds with its *true* one.  Section IV-B justifies the quadratic
fit empirically, but never quantifies what a misfit costs.  This module
does: it designs on the fitted ``psi``, replays the worker's exact best
response under perturbed true curves, and reports the requester-utility
degradation across the perturbation grid.

The exact-best-response machinery (``solve_best_response`` with an
``effort_function`` override) makes this a pure evaluation sweep — no
re-design is involved, exactly matching the deployment situation where
the posted contract is already live when the misfit bites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import math

from ..errors import DesignError
from ..numerics import close
from ..types import WorkerParameters
from .best_response import solve_best_response
from .designer import ContractDesigner, DesignerConfig, DesignResult
from .effort import QuadraticEffort
from .utility import per_worker_utility

__all__ = [
    "MisfitPoint",
    "MisfitReport",
    "misfit_sweep",
    "perturbed_effort_function",
    "robust_design",
]


def perturbed_effort_function(
    psi: QuadraticEffort,
    curvature_factor: float = 1.0,
    slope_factor: float = 1.0,
) -> QuadraticEffort:
    """A multiplicatively perturbed copy of ``psi``.

    Models Section IV-B fitting error: the true Eq. (2) effort function
    deviates from the fitted quadratic by per-coefficient factors.

    Args:
        psi: the reference (fitted) effort function.
        curvature_factor: multiplies ``r2`` (values > 1 mean the true
            curve saturates faster than fitted).
        slope_factor: multiplies ``r1``.

    Raises:
        DesignError: on non-positive factors (the perturbed curve must
            stay a valid concave increasing quadratic).
    """
    if curvature_factor <= 0.0 or slope_factor <= 0.0:
        raise DesignError("perturbation factors must be positive")
    return QuadraticEffort(
        r2=psi.r2 * curvature_factor,
        r1=psi.r1 * slope_factor,
        r0=psi.r0,
    )


@dataclass(frozen=True)
class MisfitPoint:
    """Outcome of one perturbation of the true effort function.

    Attributes:
        curvature_factor: the ``r2`` multiplier applied.
        slope_factor: the ``r1`` multiplier applied.
        effort: the worker's best-response effort under the true curve.
        feedback: the realized feedback under the true curve.
        compensation: what the (fitted-curve) contract pays for it.
        requester_utility: ``w * q - mu * c`` realized.
    """

    curvature_factor: float
    slope_factor: float
    effort: float
    feedback: float
    compensation: float
    requester_utility: float

    def __post_init__(self) -> None:
        for name in (
            "curvature_factor",
            "slope_factor",
            "effort",
            "feedback",
            "compensation",
            "requester_utility",
        ):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")
        if self.curvature_factor <= 0.0 or self.slope_factor <= 0.0:
            raise DesignError("perturbation factors must be positive")
        if self.effort < 0.0 or self.compensation < 0.0:
            raise DesignError("effort and compensation must be >= 0")


@dataclass(frozen=True)
class MisfitReport:
    """The full sweep, anchored at the no-misfit design point.

    Attributes:
        design: the fitted-curve design result.
        nominal_utility: requester utility with a perfectly fitted curve.
        points: per-perturbation outcomes.
    """

    design: DesignResult
    nominal_utility: float
    points: Tuple[MisfitPoint, ...]

    def __post_init__(self) -> None:
        if not math.isfinite(self.nominal_utility):
            raise DesignError(
                f"nominal_utility must be finite, got {self.nominal_utility!r}"
            )

    def worst_case(self) -> MisfitPoint:
        """The perturbation with the lowest realized utility."""
        return min(self.points, key=lambda point: point.requester_utility)

    def max_degradation(self) -> float:
        """Largest relative utility loss over the sweep.

        Relative to ``|nominal_utility|``; 0.0 when nothing degrades.
        """
        scale = max(abs(self.nominal_utility), 1e-12)
        worst = self.worst_case().requester_utility
        return max((self.nominal_utility - worst) / scale, 0.0)

    def degradation_at(
        self, curvature_factor: float, slope_factor: float
    ) -> float:
        """Relative utility loss at one grid point."""
        for point in self.points:
            if close(point.curvature_factor, curvature_factor) and close(
                point.slope_factor, slope_factor
            ):
                scale = max(abs(self.nominal_utility), 1e-12)
                return max(
                    (self.nominal_utility - point.requester_utility) / scale, 0.0
                )
        raise DesignError(
            f"no sweep point at ({curvature_factor!r}, {slope_factor!r})"
        )


def misfit_sweep(
    fitted: QuadraticEffort,
    params: WorkerParameters,
    mu: float = 1.0,
    feedback_weight: float = 1.0,
    curvature_factors: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
    slope_factors: Sequence[float] = (0.9, 1.0, 1.1),
    config: Optional[DesignerConfig] = None,
    max_effort: Optional[float] = None,
) -> MisfitReport:
    """Design once on ``fitted``, replay under every perturbation.

    Args:
        fitted: the effort function the requester believes in.
        params: the worker's utility parameters.
        mu: requester compensation weight.
        feedback_weight: the Eq. (5) weight.
        curvature_factors: ``r2`` multipliers for the true curve.
        slope_factors: ``r1`` multipliers for the true curve.
        config: designer configuration.
        max_effort: optional cap on the design grid.

    Returns:
        The :class:`MisfitReport`.
    """
    if not curvature_factors or not slope_factors:
        raise DesignError("perturbation grids must be non-empty")
    designer = ContractDesigner(mu=mu, config=config)
    design = designer.design(
        fitted, params, feedback_weight=feedback_weight, max_effort=max_effort
    )
    points: List[MisfitPoint] = []
    for curvature_factor in curvature_factors:
        for slope_factor in slope_factors:
            true_psi = perturbed_effort_function(
                fitted, curvature_factor, slope_factor
            )
            response = solve_best_response(
                design.contract, params, effort_function=true_psi
            )
            utility = per_worker_utility(
                feedback_weight, response.feedback, response.compensation, mu
            )
            points.append(
                MisfitPoint(
                    curvature_factor=float(curvature_factor),
                    slope_factor=float(slope_factor),
                    effort=response.effort,
                    feedback=response.feedback,
                    compensation=response.compensation,
                    requester_utility=utility,
                )
            )
    return MisfitReport(
        design=design,
        nominal_utility=design.requester_utility,
        points=tuple(points),
    )


def robust_design(
    fitted: QuadraticEffort,
    params: WorkerParameters,
    mu: float = 1.0,
    feedback_weight: float = 1.0,
    curvature_factors: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
    slope_factors: Sequence[float] = (0.9, 1.0, 1.1),
    config: Optional[DesignerConfig] = None,
    max_effort: Optional[float] = None,
) -> Tuple[DesignResult, float]:
    """Design on the pessimistic curve of the misfit uncertainty set.

    The Eq. (39) minimal-slope construction is knife-edge: it gives the
    worker *barely* enough marginal incentive under the fitted curve, so
    any true curve with a slightly lower marginal feedback rate kills
    participation — at every target piece, which is why selecting a
    different candidate cannot rescue the nominal design.

    The principled fix designs against the *pessimistic* member of the
    uncertainty set (highest curvature factor, lowest slope factor):
    every other curve in the set has pointwise stronger marginal
    feedback, so the pessimistically-designed contract's incentives only
    get stronger and participation survives the whole set.  The price is
    the usual robustness premium: lower nominal utility when the fit was
    exact.

    Returns:
        ``(result, worst_case_utility)`` — the design on the pessimistic
        curve, and its worst-case utility when replayed over the full
        perturbation grid.
    """
    if not curvature_factors or not slope_factors:
        raise DesignError("perturbation grids must be non-empty")
    pessimistic = perturbed_effort_function(
        fitted, max(curvature_factors), min(slope_factors)
    )
    designer = ContractDesigner(mu=mu, config=config)
    cap = max_effort
    result = designer.design(
        pessimistic, params, feedback_weight=feedback_weight, max_effort=cap
    )
    worst = float("inf")
    for curvature_factor in curvature_factors:
        for slope_factor in slope_factors:
            true_psi = perturbed_effort_function(
                fitted, curvature_factor, slope_factor
            )
            response = solve_best_response(
                result.contract, params, effort_function=true_psi
            )
            utility = per_worker_utility(
                feedback_weight, response.feedback, response.compensation, mu
            )
            worst = min(worst, utility)
    return result, worst
