"""Contract functions in feedback space and effort space.

The paper works with two equivalent views of a contract:

* the *contract function* ``f_i`` (Eq. 1/6) maps the worker's observed
  feedback ``q`` to compensation — this is what the requester can
  actually post, since effort is unobservable;
* the composition ``xi_i(y) = f_i(psi_i(y))`` (Section IV-C) maps effort
  to compensation — this is what the designer reasons about, because the
  worker's best response is an effort choice.

Both are piecewise linear over the Section III-A discretization: effort
edges ``l * delta`` map to feedback breakpoints ``d_l = psi(l * delta)``.
This module ties the two views together around a shared
:class:`~repro.types.DiscretizationGrid` and effort function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ContractError
from ..types import DiscretizationGrid
from .effort import QuadraticEffort
from .piecewise import PiecewiseLinear

__all__ = ["Contract"]


@dataclass(frozen=True)
class Contract:
    """A posted contract: piecewise-linear pay in feedback space.

    Attributes:
        grid: the effort discretization the contract was built on.
        effort_function: the worker's (fitted) effort function ``psi``.
        compensations: the discrete compensations
            ``x = [x_0, x_1, ..., x_m]`` at the feedback breakpoints
            ``d_l = psi(l * delta)``.  ``x_0`` is the pay at zero effort.
    """

    grid: DiscretizationGrid
    effort_function: QuadraticEffort
    compensations: Tuple[float, ...]

    def __post_init__(self) -> None:
        compensations = tuple(float(x) for x in self.compensations)
        object.__setattr__(self, "compensations", compensations)
        expected = self.grid.n_intervals + 1
        if len(compensations) != expected:
            raise ContractError(
                f"expected {expected} compensations (one per breakpoint), "
                f"got {len(compensations)}"
            )
        if any(x < 0.0 for x in compensations):
            raise ContractError(
                f"compensations must be non-negative, got {compensations!r}"
            )
        for earlier, later in zip(compensations, compensations[1:]):
            if later < earlier - 1e-12:
                raise ContractError(
                    "contract must be monotone non-decreasing in feedback "
                    f"(constraint x_(l-1) <= x_l of Eq. 9), got {compensations!r}"
                )
        # The feedback breakpoints must be strictly increasing, which the
        # effort function enforces by requiring psi to increase over the grid.
        self.effort_function.require_increasing_on(self.grid.max_effort)

    @property
    def feedback_breakpoints(self) -> Tuple[float, ...]:
        """Breakpoints ``d_l = psi(l * delta)`` in feedback space."""
        return self.effort_function.feedback_breakpoints(self.grid.edges())

    def content_key(self) -> Tuple[float, ...]:
        """A value fingerprint of the posted schedule.

        Two contracts with equal keys award the identical pay for every
        feedback value: the key pins the discretization, the fitted psi
        (which fixes the feedback breakpoints), and the compensations at
        those breakpoints.  Delta-redesign paths rebuild value-equal
        contract objects for unchanged subjects; caches keyed on this
        fingerprint keep hitting where ``is`` identity would miss.
        """
        cached = getattr(self, "_content_key", None)
        if cached is None:
            psi = self.effort_function
            cached = (
                float(self.grid.n_intervals),
                self.grid.max_effort,
                psi.r2,
                psi.r1,
                psi.r0,
                *self.compensations,
            )
            object.__setattr__(self, "_content_key", cached)
        return cached  # type: ignore[no-any-return]

    def as_feedback_function(self) -> PiecewiseLinear:
        """The posted contract ``f_i``: feedback -> compensation (Eq. 6)."""
        return PiecewiseLinear(
            knots=self.feedback_breakpoints, values=self.compensations
        )

    def effort_knot_values(self) -> PiecewiseLinear:
        """Linear interpolation of the pay at the effort-grid knots.

        This is *not* the true pay-for-effort curve: the real composition
        ``xi(y) = f(psi(y))`` is concave inside each piece because ``psi``
        is concave.  The knot interpolation is only useful for plotting
        and for bounds that touch the knots; use :meth:`pay_for_effort`
        for the actual pay.
        """
        return PiecewiseLinear(knots=self.grid.edges(), values=self.compensations)

    def pay_for_feedback(self, feedback: float) -> float:
        """Compensation for an observed feedback value (flat beyond ends)."""
        if feedback < 0.0:
            raise ContractError(f"feedback must be >= 0, got {feedback!r}")
        return self.as_feedback_function()(feedback)

    def pay_for_effort(self, effort: float) -> float:
        """Compensation if the worker exerts ``effort``: ``f(psi(effort))``.

        This is the composition ``xi_i`` of Section IV-C.  Efforts beyond
        the vertex of ``psi`` produce *decreasing* feedback and are paid
        accordingly; feedback below zero is clamped to zero.
        """
        if effort < 0.0:
            raise ContractError(f"effort must be >= 0, got {effort!r}")
        feedback = max(float(self.effort_function(effort)), 0.0)
        return self.pay_for_feedback(feedback)

    def contract_slopes(self) -> Tuple[float, ...]:
        """Feedback-space slopes ``alpha_{i,l} = Delta x_l / Delta d_l``."""
        return self.as_feedback_function().slopes()

    def contract_increments(self) -> Tuple[float, ...]:
        """Contract increments ``Delta x_{i,l} = x_l - x_{l-1}``."""
        return self.as_feedback_function().increments()

    @property
    def max_compensation(self) -> float:
        """The largest pay the contract can award (its last breakpoint)."""
        return self.compensations[-1]

    @staticmethod
    def flat(
        grid: DiscretizationGrid,
        effort_function: QuadraticEffort,
        pay: float,
    ) -> "Contract":
        """A constant contract paying ``pay`` regardless of feedback.

        Used by the fixed-payment baseline and as the degenerate contract
        offered to workers the requester has effectively excluded.
        """
        if pay < 0.0:
            raise ContractError(f"pay must be >= 0, got {pay!r}")
        return Contract(
            grid=grid,
            effort_function=effort_function,
            compensations=tuple([pay] * (grid.n_intervals + 1)),
        )

    @staticmethod
    def from_feedback_slopes(
        grid: DiscretizationGrid,
        effort_function: QuadraticEffort,
        slopes: Sequence[float],
        base_pay: float = 0.0,
    ) -> "Contract":
        """Build a contract from feedback-space slopes ``alpha_{i,l}``.

        Args:
            grid: effort discretization.
            effort_function: the worker's effort function ``psi``.
            slopes: per-piece slopes in feedback space, length ``m``.
            base_pay: compensation ``x_0`` at the zero-effort breakpoint.
        """
        if len(slopes) != grid.n_intervals:
            raise ContractError(
                f"expected {grid.n_intervals} slopes, got {len(slopes)}"
            )
        breakpoints = effort_function.feedback_breakpoints(grid.edges())
        values = [float(base_pay)]
        for index, slope in enumerate(slopes):
            width = breakpoints[index + 1] - breakpoints[index]
            values.append(values[-1] + slope * width)
        return Contract(
            grid=grid, effort_function=effort_function, compensations=tuple(values)
        )
