"""One Stackelberg round: design, best-respond, settle (Section III).

The requester (leader) posts one contract per subject; every subject
(follower) best-responds with an effort level; feedback is produced and
payments settle.  This module plays a single such round given a set of
decomposed subproblems and reports the requester's realized utility —
the quantity the evaluation section aggregates.

The multi-round marketplace (re-estimation between rounds, noisy
feedback, policy comparison) lives in :mod:`repro.simulation`; this
module is the noise-free game-theoretic kernel both it and the
experiments share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import DesignError
from .decomposition import Subproblem, SubproblemSolution, solve_subproblems
from .designer import DesignerConfig

__all__ = ["SubjectOutcome", "RoundOutcome", "play_round"]


@dataclass(frozen=True)
class SubjectOutcome:
    """Realized outcome for one subject in one round.

    Attributes:
        subject_id: the worker or community identifier.
        effort: the subject's chosen (total) effort.
        feedback: the feedback the effort produced.
        compensation: the pay the contract awarded.
        worker_utility: the subject's own utility.
        requester_utility: the requester's decomposed utility from the
            subject, ``w * q - mu * c``.
        hired: whether the requester offered incentive pay at all.
    """

    subject_id: str
    effort: float
    feedback: float
    compensation: float
    worker_utility: float
    requester_utility: float
    hired: bool

    def __post_init__(self) -> None:
        for name in (
            "effort",
            "feedback",
            "compensation",
            "worker_utility",
            "requester_utility",
        ):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")
        if self.effort < 0.0 or self.compensation < 0.0:
            raise DesignError("effort and compensation must be >= 0")


@dataclass(frozen=True)
class RoundOutcome:
    """Aggregate outcome of one Stackelberg round.

    Attributes:
        subjects: per-subject outcomes keyed by subject id.
        total_utility: the requester's round utility (Eq. 7).
        total_benefit: the weighted feedback sum (Eq. 4).
        total_compensation: the total pay across subjects.
    """

    subjects: Dict[str, SubjectOutcome]
    total_utility: float
    total_benefit: float
    total_compensation: float

    def __post_init__(self) -> None:
        for name in ("total_utility", "total_benefit", "total_compensation"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise DesignError(f"{name} must be finite, got {value!r}")

    @property
    def n_hired(self) -> int:
        """Number of subjects that received incentive contracts."""
        return sum(1 for outcome in self.subjects.values() if outcome.hired)


def play_round(
    subproblems: Sequence[Subproblem],
    mu: float = 1.0,
    config: Optional[DesignerConfig] = None,
    max_workers: int = 1,
    parallel: int = 0,
) -> Tuple[RoundOutcome, Dict[str, SubproblemSolution]]:
    """Play one full Stackelberg round over all subproblems.

    One leader/follower exchange of the Section III game: the requester
    solves the Eqs. (8)-(10) outer problem per subject (via the
    Section IV-B decomposition), workers best-respond per Eq. (11)/(14),
    and the Eq. (7) round utility is aggregated.

    Args:
        subproblems: the decomposed per-subject problems.
        mu: requester compensation weight.
        config: designer configuration.
        max_workers: thread parallelism for the independent subproblems.
        parallel: serving-layer process fan-out (0 = in-process; see
            :func:`~repro.core.decomposition.solve_subproblems`).

    Returns:
        The round outcome and the underlying per-subject solutions (so
        callers can reuse contracts across rounds).
    """
    if mu <= 0.0:
        raise DesignError(f"mu must be positive, got {mu!r}")
    solutions = solve_subproblems(
        subproblems, mu=mu, config=config, max_workers=max_workers, parallel=parallel
    )
    subjects: Dict[str, SubjectOutcome] = {}
    total_benefit = 0.0
    total_compensation = 0.0
    for subject_id, solution in solutions.items():
        result = solution.result
        response = result.response
        subjects[subject_id] = SubjectOutcome(
            subject_id=subject_id,
            effort=response.effort,
            feedback=response.feedback,
            compensation=response.compensation,
            worker_utility=response.utility,
            requester_utility=result.requester_utility,
            hired=result.hired,
        )
        total_benefit += result.feedback_weight * response.feedback
        total_compensation += response.compensation
    outcome = RoundOutcome(
        subjects=subjects,
        total_utility=total_benefit - mu * total_compensation,
        total_benefit=total_benefit,
        total_compensation=total_compensation,
    )
    return outcome, solutions
