"""Markdown report generation for experiment runs.

``python -m repro report --out results.md`` runs the selected
experiments and writes a self-contained markdown report: one section per
experiment with its paper-vs-measured tables (as fenced monospace
blocks) and its shape-check verdicts.  EXPERIMENTS.md in this repository
was seeded from exactly this output.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..errors import ExperimentError
from .common import ExperimentResult, build_context
from .config import ExperimentConfig
from .runner import EXPERIMENTS, EXTENSIONS

__all__ = ["render_markdown", "write_report"]


def render_markdown(results: Sequence[ExperimentResult], title: str) -> str:
    """Render results (Figs. 6-8, Tables II-III checks) as markdown."""
    if not results:
        raise ExperimentError("no results to render")
    lines: List[str] = [f"# {title}", ""]
    n_pass = sum(1 for r in results for ok in r.checks.values() if ok)
    n_total = sum(len(r.checks) for r in results)
    lines.append(
        f"**{len(results)} experiments, {n_pass}/{n_total} shape checks "
        f"passing.**"
    )
    lines.append("")
    for result in results:
        lines.append(f"## {result.experiment_id}")
        lines.append("")
        for table in result.tables:
            lines.append("```")
            lines.append(table)
            lines.append("```")
            lines.append("")
        lines.append("Shape checks:")
        lines.append("")
        for name, passed in sorted(result.checks.items()):
            mark = "x" if passed else " "
            lines.append(f"- [{mark}] {name}")
        lines.append("")
    return "\n".join(lines)


def write_report(
    out_path: Union[str, Path],
    config: Optional[ExperimentConfig] = None,
    experiment_ids: Optional[Sequence[str]] = None,
    include_extensions: bool = True,
) -> Path:
    """Run experiments and write the markdown report.

    Drives the same registry as the CLI (the Fig. 6-8 and Table II-III
    artifacts) and renders one section per result.

    Args:
        out_path: destination file.
        config: experiment configuration (paper scale by default).
        experiment_ids: explicit subset; ``None`` runs everything (paper
            artifacts, plus extensions when ``include_extensions``).
        include_extensions: include the ``ext_*`` drivers in a full run.

    Returns:
        The path written.
    """
    config = config if config is not None else ExperimentConfig()
    registry = {**EXPERIMENTS, **EXTENSIONS}
    if experiment_ids is None:
        experiment_ids = list(EXPERIMENTS)
        if include_extensions:
            experiment_ids += list(EXTENSIONS)
    unknown = [eid for eid in experiment_ids if eid not in registry]
    if unknown:
        raise ExperimentError(f"unknown experiment ids: {unknown!r}")

    context = build_context(config)
    results = [registry[eid](context) for eid in experiment_ids]
    title = (
        f"Reproduction report — scale={config.scale}, seed={config.seed}"
    )
    out_path = Path(out_path)
    out_path.write_text(render_markdown(results, title), encoding="utf-8")
    return out_path
