"""Fig. 6: requester utility vs interval count, with Theorem 4.1 bounds.

The paper's numeric study designs contracts for a single honest worker
at increasing grid resolutions (``mu = 10``, ``beta = 1``) and shows the
achieved utility approaching the upper bound — since the true optimum
lies between them, a shrinking gap certifies convergence to optimal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.designer import ContractDesigner, DesignerConfig
from ..core.effort import QuadraticEffort
from ..metrics.comparison import ComparisonTable
from ..types import WorkerParameters
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run", "FIG6_EFFORT_FUNCTION"]

#: The single honest worker of the numeric study.  With ``mu = 10`` the
#: requester only profits while ``w * psi' > mu * beta``, so the
#: marginal feedback rate must start above 10.
FIG6_EFFORT_FUNCTION = QuadraticEffort(r2=-1.0, r1=30.0, r0=5.0)


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Fig. 6's convergence curves."""
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    psi = FIG6_EFFORT_FUNCTION
    params = WorkerParameters.honest(beta=1.0)
    mu = config.fig6_mu

    interval_counts: List[int] = list(config.fig6_interval_counts)
    achieved: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    for n_intervals in interval_counts:
        designer = ContractDesigner(
            mu=mu, config=DesignerConfig(n_intervals=n_intervals)
        )
        result = designer.design(psi, params, feedback_weight=1.0)
        achieved.append(result.requester_utility)
        lower.append(result.bounds.lower)
        upper.append(result.bounds.upper)

    achieved_arr = np.array(achieved)
    lower_arr = np.array(lower)
    upper_arr = np.array(upper)
    gaps = upper_arr - achieved_arr

    table = ComparisonTable(
        title=f"Fig. 6: utility vs m (single honest worker, mu={mu})", rows=[]
    )
    for m, a, lo, up in zip(interval_counts, achieved, lower, upper):
        table.add(
            label=f"m={m}",
            measured=a,
            note=f"LB={lo:.3f} UB={up:.3f} gap={up - a:.4f}",
        )

    slack = 1e-9 * np.maximum(1.0, np.abs(upper_arr))
    checks = {
        "achieved_within_bounds": bool(
            np.all(achieved_arr <= upper_arr + slack)
            and np.all(achieved_arr >= lower_arr - slack)
        ),
        "gap_shrinks_with_resolution": bool(gaps[-1] < gaps[0] * 0.25),
        "utility_approaches_upper_bound": bool(
            gaps[-1] <= 0.05 * max(abs(upper_arr[-1]), 1.0)
        ),
        "achieved_utility_nondecreasing_trend": bool(
            achieved_arr[-1] >= achieved_arr[0]
        ),
    }
    data: Dict[str, object] = {
        "interval_counts": interval_counts,
        "achieved": achieved,
        "lower": lower,
        "upper": upper,
        "gaps": gaps.tolist(),
    }
    return ExperimentResult(
        experiment_id="fig6", tables=[table.format()], data=data, checks=checks
    )
