"""Fig. 8b: compensation by worker class across the ``mu`` sweep.

For each ``mu in {1.0, 0.9, 0.8}`` the decomposed subproblems are solved
and the per-member compensation distribution of each class summarized by
mean / 5th / 95th percentile.  The paper's two observations, verified as
shape checks:

1. compensation rises as ``mu`` falls (a lower compensation weight means
   a more generous requester), and
2. compensation orders honest > non-collusive malicious > collusive
   malicious, driven by the Eq. (5) penalties.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.decomposition import solve_subproblems
from ..metrics.comparison import ComparisonTable
from ..metrics.percentiles import summarize
from ..types import WorkerType
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

#: Honest workers included per mu at paper scale (18k subproblems per mu
#: would be pure repetition — candidates are shared — but per-worker
#: reporting still costs time; the paper's own Fig. 8 samples workers).
_HONEST_SAMPLE = 2000


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Fig. 8b's compensation summaries."""
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config

    population = context.population(honest_sample=_HONEST_SAMPLE)
    table = ComparisonTable(
        title="Fig. 8b: per-member compensation (mean [p5, p95])", rows=[]
    )
    summaries: Dict[float, Dict[str, object]] = {}
    means: Dict[float, Dict[WorkerType, float]] = {}
    for mu in config.mu_sweep:
        solutions = solve_subproblems(
            population.subproblems, mu=mu, parallel=config.parallel
        )
        summaries[mu] = {}
        means[mu] = {}
        for worker_type in WorkerType:
            subject_ids = population.subjects_of_type(worker_type)
            pays = [
                solutions[subject_id].per_member_compensation
                for subject_id in subject_ids
            ]
            summary = summarize(pays)
            summaries[mu][worker_type.value] = summary
            means[mu][worker_type] = summary.mean
            table.add(
                label=f"mu={mu} {worker_type.short_label}",
                measured=summary.mean,
                note=f"[{summary.p5:.4f}, {summary.p95:.4f}] n={summary.n}",
            )

    mus = list(config.mu_sweep)
    decreasing_mu_increases_pay = all(
        means[later][wt] >= means[earlier][wt] * 0.999
        for earlier, later in zip(mus, mus[1:])
        for wt in WorkerType
    )
    ordering_holds = all(
        means[mu][WorkerType.HONEST]
        > means[mu][WorkerType.NONCOLLUSIVE_MALICIOUS]
        > means[mu][WorkerType.COLLUSIVE_MALICIOUS]
        for mu in mus
    )
    checks = {
        "compensation_rises_as_mu_falls": decreasing_mu_increases_pay,
        "ordering_honest_gt_ncm_gt_cm": ordering_holds,
    }
    return ExperimentResult(
        experiment_id="fig8b",
        tables=[table.format()],
        data={
            "summaries": summaries,
            "means": {
                mu: {wt.value: means[mu][wt] for wt in WorkerType} for mu in mus
            },
        },
        checks=checks,
    )
