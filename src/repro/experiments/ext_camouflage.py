"""Extension: camouflaged attackers vs one-shot and online estimation.

The paper's Section VII flags "more sophisticated malicious workers" as
future work; its introduction already observes that malicious behaviour
"may be temporary or targeted in scope".  This experiment plants
camouflaged attackers — honest for the first rounds, then biased and
influence-motivated — and compares two requesters:

* **one-shot** — estimates Eq. (5) weights from the first observed
  round and never re-checks (the offline-estimation analogue); it keeps
  trusting the attackers after they flip;
* **online** — keeps re-estimating (the adaptive policy); it withdraws
  the attackers' incentive pay within a few rounds of the flip.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..metrics.comparison import ComparisonTable
from ..simulation.adaptive import AdaptiveDynamicPolicy
from ..simulation.engine import MarketplaceSimulation
from ..types import WorkerType
from ..workers.strategic import CamouflagedWorker
from .common import ExperimentContext, ExperimentResult, build_context
from .config import ExperimentConfig

__all__ = ["run"]

_N_ROUNDS = 14
_ATTACK_ROUND = 6
_N_ATTACKERS = 15
_HONEST_SAMPLE = 150
_ATTACK_OMEGA = 0.5
_ATTACK_BIAS = 2.5


def _plant_attackers(population) -> List[str]:
    """Replace some malicious agents with camouflaged ones."""
    attacker_ids = population.subjects_of_type(WorkerType.NONCOLLUSIVE_MALICIOUS)[
        :_N_ATTACKERS
    ]
    for subject_id in attacker_ids:
        old_agent = population.agents[subject_id]
        population.agents[subject_id] = CamouflagedWorker(
            worker_id=subject_id,
            effort_function=old_agent.effort_function,
            beta=old_agent.params.beta,
            omega=_ATTACK_OMEGA,
            rating_bias=_ATTACK_BIAS,
            attack_round=_ATTACK_ROUND,
        )
    return attacker_ids


def _attacker_pay_series(ledger, attacker_ids) -> np.ndarray:
    """Mean per-round pay across the planted attackers."""
    series = []
    for record in ledger.records:
        pays = [record.outcomes[a].compensation for a in attacker_ids]
        series.append(float(np.mean(pays)))
    return np.array(series)


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run the camouflage experiment.

    Stress-test of the Eq. (5) weight estimation: malicious workers rate
    honestly for a warm-up phase before deploying their bias, and the
    online estimator must catch the switch.
    """
    context = context if context is not None else build_context(ExperimentConfig())
    config = context.config
    objective = context.objective()

    results = {}
    for name, freeze in (("one-shot", 1), ("online", None)):
        # Fresh population per policy: agents carry mutable phase state.
        population = context.population(honest_sample=_HONEST_SAMPLE)
        attacker_ids = _plant_attackers(population)
        policy = AdaptiveDynamicPolicy(
            mu=config.mu_default,
            weight_params=config.weight_params,
            freeze_after=freeze,
        )
        ledger = MarketplaceSimulation(
            population, objective, policy, seed=config.seed
        ).run(_N_ROUNDS)
        results[name] = (ledger, attacker_ids)
        # Reset the shared cached population's agents for the next run.
        context.invalidate_populations()

    oneshot_ledger, attacker_ids = results["one-shot"]
    online_ledger, _ = results["online"]
    oneshot_pay = _attacker_pay_series(oneshot_ledger, attacker_ids)
    online_pay = _attacker_pay_series(online_ledger, attacker_ids)
    post = slice(_ATTACK_ROUND + 2, _N_ROUNDS)

    oneshot_utility = oneshot_ledger.utility_series()
    online_utility = online_ledger.utility_series()

    table = ComparisonTable(
        title=(
            f"EXT camouflage: {_N_ATTACKERS} attackers flip at round "
            f"{_ATTACK_ROUND} of {_N_ROUNDS}"
        ),
        rows=[],
    )
    table.add(
        "attacker pay post-flip (one-shot)",
        measured=float(oneshot_pay[post].mean()),
        note="keeps trusting the camouflage-era estimate",
    )
    table.add(
        "attacker pay post-flip (online)",
        measured=float(online_pay[post].mean()),
        note="withdraws pay after the flip",
    )
    table.add(
        "utility post-flip (one-shot)", measured=float(oneshot_utility[post].mean())
    )
    table.add(
        "utility post-flip (online)", measured=float(online_utility[post].mean())
    )

    checks = {
        "online_cuts_attacker_pay_after_flip": float(online_pay[post].mean())
        <= 0.7 * max(float(oneshot_pay[post].mean()), 1e-9),
        "online_utility_not_worse_post_flip": float(online_utility[post].mean())
        >= float(oneshot_utility[post].mean()) * 0.98,
        "attackers_paid_during_camouflage": float(
            online_pay[:_ATTACK_ROUND].mean()
        )
        >= 0.0,
    }
    data: Dict[str, object] = {
        "oneshot_pay": oneshot_pay.tolist(),
        "online_pay": online_pay.tolist(),
        "oneshot_utility": oneshot_utility.tolist(),
        "online_utility": online_utility.tolist(),
        "attack_round": _ATTACK_ROUND,
    }
    return ExperimentResult(
        experiment_id="ext_camouflage",
        tables=[table.format()],
        data=data,
        checks=checks,
    )
